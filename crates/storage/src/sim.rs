//! [`SimDevice`]: the thing indexes charge page accesses to.
//!
//! A `SimDevice` couples a [`DeviceProfile`] (latency model) with
//! [`IoStats`] (sharded counters + simulated clock) and an optional
//! [`BufferPool`]. The five storage configurations of the paper's
//! evaluation are simply pairs of `SimDevice`s: one for the index, one
//! for the main data.
//!
//! # Concurrency
//!
//! A `SimDevice` (and its clones, which share state) may be charged
//! from many threads at once. On the default **cold** path the device
//! is lock-free: every access lands in the calling thread's counter
//! shard (see [`IoStats`]) and totals are exact under any
//! interleaving. The per-device warm mode ([`CacheMode::Lru`]) takes a
//! device-wide mutex around its LRU pool — the warm experiments of
//! §6.2 are single-threaded sweeps, so the lock is never contended
//! there. The shared-budget mode ([`SimDevice::with_shared_cache`])
//! delegates to a sharded [`BufferManager`], whose per-shard locks
//! keep parallel probes from serializing on cache bookkeeping.

use std::sync::{Arc, Mutex};

use bftree_bufferpool::{Access, BufferManager, PoolId};

use crate::buffer::BufferPool;
use crate::device::{DeviceKind, DeviceProfile};
use crate::fault::Quarantine;
use crate::io::{IoSnapshot, IoStats};
use crate::page::{PageId, PAGE_SIZE};

/// Caching discipline of a device (paper §6.2/§6.3 "warm caches").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Every access reaches the device (the paper's O_DIRECT runs).
    Cold,
    /// A private per-device LRU pool of the given page capacity
    /// ([`PAGE_SIZE`] each) absorbs re-reads — the compatibility mode
    /// behind the warm-cache sweeps. For a budget *shared across
    /// devices*, use [`SimDevice::with_shared_cache`].
    Lru(usize),
}

/// Where a device's warm path looks up pages.
#[derive(Debug, Clone)]
enum CacheBackend {
    /// Every access reaches the device.
    None,
    /// Private per-device LRU (the old warm-cache mode).
    Private(Arc<Mutex<BufferPool>>),
    /// One pool of a [`BufferManager`] shared across devices: this
    /// device's pages compete with every other pool for the manager's
    /// byte budget.
    Shared {
        manager: Arc<BufferManager>,
        pool: PoolId,
    },
}

/// A simulated storage device: latency profile + stats + optional pool.
///
/// Cloning is cheap and shares the stats and pool.
#[derive(Debug, Clone)]
pub struct SimDevice {
    profile: DeviceProfile,
    stats: Arc<IoStats>,
    cache: CacheBackend,
    /// Pages in quarantine (shared with the file store's fault plane)
    /// are barred from cache admission: serving a known-corrupt page
    /// from memory would mask the corruption from its repair path.
    /// `None` (the default) skips the check entirely.
    quarantine: Option<Arc<Quarantine>>,
}

impl SimDevice {
    /// A cold device of the given kind.
    pub fn cold(kind: DeviceKind) -> Self {
        Self::new(DeviceProfile::of(kind), CacheMode::Cold)
    }

    /// A device with an explicit profile and cache mode.
    pub fn new(profile: DeviceProfile, cache: CacheMode) -> Self {
        let cache = match cache {
            CacheMode::Cold => CacheBackend::None,
            CacheMode::Lru(pages) => CacheBackend::Private(Arc::new(Mutex::new(
                BufferPool::with_page_capacity(pages, PAGE_SIZE),
            ))),
        };
        Self {
            profile,
            stats: Arc::new(IoStats::new()),
            cache,
            quarantine: None,
        }
    }

    /// A device whose re-reads are absorbed by `pool` of the shared
    /// `manager`: its pages compete with every other registered pool
    /// for the manager's single byte budget (the paper's index-vs-data
    /// memory trade-off). Pages are charged at [`PAGE_SIZE`] bytes.
    pub fn with_shared_cache(
        profile: DeviceProfile,
        manager: Arc<BufferManager>,
        pool: PoolId,
    ) -> Self {
        Self {
            profile,
            stats: Arc::new(IoStats::new()),
            cache: CacheBackend::Shared { manager, pool },
            quarantine: None,
        }
    }

    /// Bar `quarantine`'s pages from cache admission (and cache hits)
    /// on this device and its clones made *after* this call. The file
    /// backend wires its store's quarantine in here so a corrupt page
    /// is always re-verified against the device until repaired.
    pub fn set_quarantine(&mut self, quarantine: Arc<Quarantine>) {
        self.quarantine = Some(quarantine);
    }

    fn quarantined(&self, page: PageId) -> bool {
        self.quarantine
            .as_ref()
            .map(|q| q.contains(page))
            .unwrap_or(false)
    }

    /// Drop `page` from this device's cache if resident (no-op on a
    /// cold device). Returns whether a cached copy was dropped. Used
    /// when a page enters quarantine: the in-memory copy may predate
    /// the corruption, but serving it would mask the fault from the
    /// repair path.
    pub fn invalidate(&self, page: PageId) -> bool {
        match &self.cache {
            CacheBackend::None => false,
            CacheBackend::Private(pool) => pool
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .invalidate(page),
            CacheBackend::Shared { manager, pool } => manager.invalidate(*pool, page),
        }
    }

    /// The device's latency profile.
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// The device medium.
    pub fn kind(&self) -> DeviceKind {
        self.profile.kind
    }

    /// Charge a randomly-located read of `page`. Returns whether the
    /// access reached the device (`false` = absorbed by a cache) — the
    /// signal a file backend uses to mirror exactly the device-reaching
    /// accesses with real I/O.
    #[inline]
    pub fn read_random(&self, page: PageId) -> bool {
        if self.cache_absorbs(page) {
            return false;
        }
        self.stats
            .record_random_read(self.profile.random_read_ns, PAGE_SIZE as u64);
        true
    }

    /// Charge a set of randomly-located reads at once. On a cold
    /// device (nothing to look up per page) the whole set lands in one
    /// counter operation; devices with a cache fall back to per-page
    /// charging so hit accounting stays exact. Totals always equal
    /// charging each page with [`SimDevice::read_random`].
    pub fn read_random_many(&self, pages: impl ExactSizeIterator<Item = PageId>) {
        if matches!(self.cache, CacheBackend::None) {
            self.stats.record_random_reads(
                pages.len() as u64,
                self.profile.random_read_ns,
                PAGE_SIZE as u64,
            );
        } else {
            for page in pages {
                self.read_random(page);
            }
        }
    }

    /// Charge the next page of a sequential run. Returns whether the
    /// access reached the device (see [`SimDevice::read_random`]).
    #[inline]
    pub fn read_seq(&self, page: PageId) -> bool {
        if self.cache_absorbs(page) {
            return false;
        }
        self.stats
            .record_seq_read(self.profile.seq_read_ns, PAGE_SIZE as u64);
        true
    }

    /// Charge a batch of page reads given as a sorted list: the first
    /// page is random, each subsequent page is sequential if adjacent
    /// to its predecessor, random otherwise. This models the paper's
    /// "list of sorted disk accesses" handed to the controller
    /// (Equation 13's seqDtIO term for false-positive pages).
    pub fn read_sorted_batch(&self, pages: &[PageId]) {
        let mut prev: Option<PageId> = None;
        for &p in pages {
            match prev {
                Some(q) if p == q + 1 => {
                    self.read_seq(p);
                }
                Some(q) if p == q => {} // duplicate, already fetched
                _ => {
                    self.read_random(p);
                }
            }
            prev = Some(p);
        }
    }

    /// Charge a page write. The device write is always charged
    /// (write-through); on warm and shared-pool devices the written
    /// page is installed into (or refreshed in) the pool, so a
    /// read-after-write is a hit — the accounting the buffer manager
    /// expects. Installation never books a cache hit (nothing was
    /// served from memory), but admissions that displace pages record
    /// their evictions.
    #[inline]
    pub fn write(&self, page: PageId) {
        self.stats
            .record_write(self.profile.write_ns, PAGE_SIZE as u64);
        if self.quarantined(page) {
            return; // charged, but never installed while quarantined
        }
        match &self.cache {
            CacheBackend::None => {}
            CacheBackend::Private(pool) => {
                let access = pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .touch(page, PAGE_SIZE as u64);
                if !access.hit {
                    self.stats.record_cache_evictions(access.evicted);
                }
            }
            CacheBackend::Shared { manager, pool } => {
                if let Access::Miss { evicted } = manager.touch(*pool, page, PAGE_SIZE as u64) {
                    self.stats.record_cache_evictions(evicted.len() as u64);
                }
            }
        }
    }

    /// Charge a durability barrier: the device drains its volatile
    /// write cache and acknowledges that every preceding
    /// [`SimDevice::write`] is persistent. What a write-ahead log pays
    /// per commit — see `DeviceProfile::fsync_ns` for the per-medium
    /// cost and why group commit exists.
    #[inline]
    pub fn fsync(&self) {
        self.stats.record_fsync(self.profile.fsync_ns);
    }

    /// Pre-load `pages` into the pool (warm-up) without charging.
    pub fn prewarm<I: IntoIterator<Item = PageId>>(&self, pages: I) {
        match &self.cache {
            CacheBackend::None => {}
            CacheBackend::Private(pool) => {
                let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
                for p in pages {
                    pool.touch(p, PAGE_SIZE as u64);
                }
            }
            CacheBackend::Shared { manager, pool } => {
                manager.prewarm(*pool, pages, PAGE_SIZE as u64);
            }
        }
    }

    /// Snapshot of the accumulated statistics (all shards merged).
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Reset statistics (keeps cache contents).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Drop all cached pages of this device (shared managers only
    /// evict this device's pool; other pools keep their residency).
    pub fn drop_caches(&self) {
        match &self.cache {
            CacheBackend::None => {}
            CacheBackend::Private(pool) => {
                pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
            }
            CacheBackend::Shared { manager, pool } => manager.evict_pool(*pool),
        }
    }

    /// Whether charging this device takes no lock (true for
    /// [`CacheMode::Cold`], the default of every paper experiment).
    pub fn is_lock_free(&self) -> bool {
        matches!(self.cache, CacheBackend::None)
    }

    /// The shared buffer manager this device charges, if any.
    pub fn shared_cache(&self) -> Option<(&Arc<BufferManager>, PoolId)> {
        match &self.cache {
            CacheBackend::Shared { manager, pool } => Some((manager, *pool)),
            _ => None,
        }
    }

    #[inline]
    fn cache_absorbs(&self, page: PageId) -> bool {
        if self.quarantined(page) {
            // Never serve (or admit) a quarantined page from memory:
            // the access must reach the device so the corruption is
            // re-detected until repaired.
            return false;
        }
        match &self.cache {
            CacheBackend::None => false,
            CacheBackend::Private(pool) => {
                let access = pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .touch(page, PAGE_SIZE as u64);
                self.record_cache_access(access.hit, access.evicted)
            }
            CacheBackend::Shared { manager, pool } => {
                match manager.touch(*pool, page, PAGE_SIZE as u64) {
                    Access::Hit => self.record_cache_access(true, 0),
                    Access::Miss { evicted } => {
                        self.record_cache_access(false, evicted.len() as u64)
                    }
                }
            }
        }
    }

    /// Book a pool lookup's outcome; returns whether the read was
    /// absorbed.
    #[inline]
    fn record_cache_access(&self, hit: bool, evicted: u64) -> bool {
        if hit {
            // Serving from the pool costs a memory access.
            self.stats
                .record_cache_hit(DeviceProfile::memory().random_read_ns);
            true
        } else {
            self.stats.record_cache_evictions(evicted);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_device_charges_every_read() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.read_random(1);
        dev.read_random(1);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.bytes_read, 2 * PAGE_SIZE as u64);
        assert_eq!(s.sim_ns, 2 * DeviceProfile::ssd().random_read_ns);
    }

    #[test]
    fn lru_device_absorbs_rereads() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(16));
        dev.read_random(1);
        dev.read_random(1);
        dev.read_random(2);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.bytes_read, 2 * PAGE_SIZE as u64, "hits move no bytes");
    }

    #[test]
    fn sorted_batch_charges_sequential_for_adjacent() {
        let dev = SimDevice::cold(DeviceKind::Hdd);
        dev.read_sorted_batch(&[10, 11, 12, 40, 41]);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2, "pages 10 and 40");
        assert_eq!(s.seq_reads, 3, "pages 11, 12, 41");
    }

    #[test]
    fn sorted_batch_skips_duplicates() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.read_sorted_batch(&[5, 5, 5]);
        assert_eq!(dev.snapshot().device_reads(), 1);
    }

    #[test]
    fn prewarm_makes_reads_hits() {
        let dev = SimDevice::new(DeviceProfile::hdd(), CacheMode::Lru(100));
        dev.prewarm(0..50u64);
        dev.read_random(25);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 0);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn clones_share_stats() {
        let dev = SimDevice::cold(DeviceKind::Memory);
        let dev2 = dev.clone();
        dev.read_random(1);
        dev2.read_random(2);
        assert_eq!(dev.snapshot().random_reads, 2);
    }

    #[test]
    fn writes_are_charged() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.write(3);
        let s = dev.snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, PAGE_SIZE as u64);
        assert_eq!(s.sim_ns, DeviceProfile::ssd().write_ns);
    }

    #[test]
    fn write_installs_page_in_private_pool() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8));
        dev.write(3);
        dev.read_random(3);
        let s = dev.snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.cache_hits, 1, "read-after-write is a hit");
        assert_eq!(s.random_reads, 0, "the re-read never reached the device");
    }

    #[test]
    fn write_installation_records_evictions_but_never_hits() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(2));
        dev.read_random(1);
        dev.read_random(2);
        dev.write(3); // admitting 3 evicts 1
        let s = dev.snapshot();
        assert_eq!(s.cache_evictions, 1);
        assert_eq!(s.cache_hits, 0, "installation is not a served read");
        dev.write(3); // already resident: refresh, no eviction
        assert_eq!(dev.snapshot().cache_evictions, 1);
    }

    #[test]
    fn write_installs_page_in_shared_pool() {
        use bftree_bufferpool::{BufferManager, PolicyKind};

        let mgr = Arc::new(BufferManager::with_shards(
            4 * PAGE_SIZE as u64,
            PolicyKind::Lru,
            1,
        ));
        let dev = SimDevice::with_shared_cache(
            DeviceProfile::ssd(),
            Arc::clone(&mgr),
            mgr.register_pool("data"),
        );
        dev.write(9);
        dev.read_random(9);
        let s = dev.snapshot();
        assert_eq!(s.cache_hits, 1, "shared pool serves the re-read");
        assert_eq!(s.random_reads, 0);
    }

    #[test]
    fn cold_write_stays_cacheless() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.write(3);
        dev.read_random(3);
        let s = dev.snapshot();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.random_reads, 1, "cold devices never absorb");
    }

    #[test]
    fn reads_report_whether_they_reached_the_device() {
        let warm = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8));
        assert!(warm.read_random(1), "first access misses");
        assert!(!warm.read_random(1), "second access absorbed");
        assert!(warm.read_seq(2));
        assert!(!warm.read_seq(2));
        let cold = SimDevice::cold(DeviceKind::Ssd);
        assert!(cold.read_random(1) && cold.read_random(1));
    }

    #[test]
    fn drop_caches_returns_to_cold_behaviour() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8));
        dev.read_random(1);
        dev.drop_caches();
        dev.read_random(1);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2);
    }

    #[test]
    fn cold_is_lock_free_warm_is_not() {
        assert!(SimDevice::cold(DeviceKind::Ssd).is_lock_free());
        assert!(!SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8)).is_lock_free());
    }

    #[test]
    fn lru_device_counts_evictions() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(2));
        dev.read_random(1);
        dev.read_random(2);
        dev.read_random(3); // evicts 1
        dev.read_random(1); // evicts 2
        let s = dev.snapshot();
        assert_eq!(s.cache_evictions, 2);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn shared_cache_devices_compete_for_one_budget() {
        use bftree_bufferpool::{BufferManager, PolicyKind};

        let mgr = Arc::new(BufferManager::with_shards(
            2 * PAGE_SIZE as u64,
            PolicyKind::Lru,
            1,
        ));
        let index = SimDevice::with_shared_cache(
            DeviceProfile::ssd(),
            Arc::clone(&mgr),
            mgr.register_pool("index"),
        );
        let data = SimDevice::with_shared_cache(
            DeviceProfile::hdd(),
            Arc::clone(&mgr),
            mgr.register_pool("data"),
        );
        index.read_random(7);
        data.read_random(7); // same page id, different pool: both resident
        assert!(index.shared_cache().is_some());
        index.read_random(7);
        data.read_random(7);
        assert_eq!(index.snapshot().cache_hits, 1);
        assert_eq!(data.snapshot().cache_hits, 1);
        // A third distinct page overflows the shared 2-page budget.
        data.read_random(8);
        assert_eq!(data.snapshot().cache_evictions, 1);
        // Dropping one device's caches leaves the other pool resident.
        index.drop_caches();
        data.read_random(7);
        assert_eq!(data.snapshot().cache_hits, 2, "data pool survived");
    }

    #[test]
    fn quarantined_pages_bypass_the_cache_until_released() {
        let mut dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8));
        let q = Arc::new(crate::fault::Quarantine::new());
        dev.set_quarantine(Arc::clone(&q));
        dev.read_random(1);
        assert!(!dev.read_random(1), "cached while healthy");
        q.quarantine(1);
        assert!(dev.invalidate(1), "cached copy dropped on quarantine");
        assert!(dev.read_random(1), "quarantined reads reach the device");
        dev.write(1); // install attempt must be refused
        assert!(dev.read_random(1), "still uncached while quarantined");
        q.release(1);
        dev.read_random(1); // re-admitted ...
        assert!(!dev.read_random(1), "... and cached again after release");
    }

    #[test]
    fn invalidate_drops_shared_pool_residency() {
        use bftree_bufferpool::{BufferManager, PolicyKind};

        let mgr = Arc::new(BufferManager::with_shards(
            4 * PAGE_SIZE as u64,
            PolicyKind::Lru,
            1,
        ));
        let dev = SimDevice::with_shared_cache(
            DeviceProfile::ssd(),
            Arc::clone(&mgr),
            mgr.register_pool("data"),
        );
        dev.read_random(5);
        assert!(dev.invalidate(5));
        assert!(!dev.invalidate(5));
        assert!(dev.read_random(5), "read reaches the device again");
    }

    #[test]
    fn concurrent_charges_sum_exactly() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        std::thread::scope(|s| {
            for t in 0..4 {
                let dev = dev.clone();
                s.spawn(move || {
                    for p in 0..5_000u64 {
                        dev.read_random(t * 10_000 + p);
                    }
                });
            }
        });
        assert_eq!(dev.snapshot().random_reads, 20_000, "no lost updates");
    }
}
