//! [`SimDevice`]: the thing indexes charge page accesses to.
//!
//! A `SimDevice` couples a [`DeviceProfile`] (latency model) with
//! [`IoStats`] (sharded counters + simulated clock) and an optional
//! [`BufferPool`]. The five storage configurations of the paper's
//! evaluation are simply pairs of `SimDevice`s: one for the index, one
//! for the main data.
//!
//! # Concurrency
//!
//! A `SimDevice` (and its clones, which share state) may be charged
//! from many threads at once. On the default **cold** path the device
//! is lock-free: every access lands in the calling thread's counter
//! shard (see [`IoStats`]) and totals are exact under any
//! interleaving. Only the warm-cache mode ([`CacheMode::Lru`]) takes a
//! mutex around its LRU pool — the warm experiments of §6.2 are
//! single-threaded sweeps, so the lock is never contended there.

use std::sync::{Arc, Mutex};

use crate::buffer::BufferPool;
use crate::device::{DeviceKind, DeviceProfile};
use crate::io::{IoSnapshot, IoStats};
use crate::page::{PageId, PAGE_SIZE};

/// Caching discipline of a device (paper §6.2/§6.3 "warm caches").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Every access reaches the device (the paper's O_DIRECT runs).
    Cold,
    /// An LRU pool of the given page capacity absorbs re-reads.
    Lru(usize),
}

/// A simulated storage device: latency profile + stats + optional pool.
///
/// Cloning is cheap and shares the stats and pool.
#[derive(Debug, Clone)]
pub struct SimDevice {
    profile: DeviceProfile,
    stats: Arc<IoStats>,
    pool: Option<Arc<Mutex<BufferPool>>>,
}

impl SimDevice {
    /// A cold device of the given kind.
    pub fn cold(kind: DeviceKind) -> Self {
        Self::new(DeviceProfile::of(kind), CacheMode::Cold)
    }

    /// A device with an explicit profile and cache mode.
    pub fn new(profile: DeviceProfile, cache: CacheMode) -> Self {
        let pool = match cache {
            CacheMode::Cold => None,
            CacheMode::Lru(pages) => Some(Arc::new(Mutex::new(BufferPool::new(pages)))),
        };
        Self {
            profile,
            stats: Arc::new(IoStats::new()),
            pool,
        }
    }

    /// The device's latency profile.
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// The device medium.
    pub fn kind(&self) -> DeviceKind {
        self.profile.kind
    }

    /// Charge a randomly-located read of `page`.
    #[inline]
    pub fn read_random(&self, page: PageId) {
        if self.cache_absorbs(page) {
            return;
        }
        self.stats
            .record_random_read(self.profile.random_read_ns, PAGE_SIZE as u64);
    }

    /// Charge the next page of a sequential run.
    #[inline]
    pub fn read_seq(&self, page: PageId) {
        if self.cache_absorbs(page) {
            return;
        }
        self.stats
            .record_seq_read(self.profile.seq_read_ns, PAGE_SIZE as u64);
    }

    /// Charge a batch of page reads given as a sorted list: the first
    /// page is random, each subsequent page is sequential if adjacent
    /// to its predecessor, random otherwise. This models the paper's
    /// "list of sorted disk accesses" handed to the controller
    /// (Equation 13's seqDtIO term for false-positive pages).
    pub fn read_sorted_batch(&self, pages: &[PageId]) {
        let mut prev: Option<PageId> = None;
        for &p in pages {
            match prev {
                Some(q) if p == q + 1 => self.read_seq(p),
                Some(q) if p == q => {} // duplicate, already fetched
                _ => self.read_random(p),
            }
            prev = Some(p);
        }
    }

    /// Charge a page write.
    #[inline]
    pub fn write(&self, _page: PageId) {
        self.stats
            .record_write(self.profile.write_ns, PAGE_SIZE as u64);
    }

    /// Pre-load `pages` into the pool (warm-up) without charging.
    pub fn prewarm<I: IntoIterator<Item = PageId>>(&self, pages: I) {
        if let Some(pool) = &self.pool {
            let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
            for p in pages {
                pool.touch(p);
            }
        }
    }

    /// Snapshot of the accumulated statistics (all shards merged).
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Reset statistics (keeps cache contents).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Drop all cached pages.
    pub fn drop_caches(&self) {
        if let Some(pool) = &self.pool {
            pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Whether charging this device takes no lock (true for
    /// [`CacheMode::Cold`], the default of every paper experiment).
    pub fn is_lock_free(&self) -> bool {
        self.pool.is_none()
    }

    #[inline]
    fn cache_absorbs(&self, page: PageId) -> bool {
        if let Some(pool) = &self.pool {
            if pool.lock().unwrap_or_else(|e| e.into_inner()).touch(page) {
                // Serving from the pool costs a memory access.
                self.stats
                    .record_cache_hit(DeviceProfile::memory().random_read_ns);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_device_charges_every_read() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.read_random(1);
        dev.read_random(1);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.bytes_read, 2 * PAGE_SIZE as u64);
        assert_eq!(s.sim_ns, 2 * DeviceProfile::ssd().random_read_ns);
    }

    #[test]
    fn lru_device_absorbs_rereads() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(16));
        dev.read_random(1);
        dev.read_random(1);
        dev.read_random(2);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.bytes_read, 2 * PAGE_SIZE as u64, "hits move no bytes");
    }

    #[test]
    fn sorted_batch_charges_sequential_for_adjacent() {
        let dev = SimDevice::cold(DeviceKind::Hdd);
        dev.read_sorted_batch(&[10, 11, 12, 40, 41]);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2, "pages 10 and 40");
        assert_eq!(s.seq_reads, 3, "pages 11, 12, 41");
    }

    #[test]
    fn sorted_batch_skips_duplicates() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.read_sorted_batch(&[5, 5, 5]);
        assert_eq!(dev.snapshot().device_reads(), 1);
    }

    #[test]
    fn prewarm_makes_reads_hits() {
        let dev = SimDevice::new(DeviceProfile::hdd(), CacheMode::Lru(100));
        dev.prewarm(0..50u64);
        dev.read_random(25);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 0);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn clones_share_stats() {
        let dev = SimDevice::cold(DeviceKind::Memory);
        let dev2 = dev.clone();
        dev.read_random(1);
        dev2.read_random(2);
        assert_eq!(dev.snapshot().random_reads, 2);
    }

    #[test]
    fn writes_are_charged() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        dev.write(3);
        let s = dev.snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, PAGE_SIZE as u64);
        assert_eq!(s.sim_ns, DeviceProfile::ssd().write_ns);
    }

    #[test]
    fn drop_caches_returns_to_cold_behaviour() {
        let dev = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8));
        dev.read_random(1);
        dev.drop_caches();
        dev.read_random(1);
        let s = dev.snapshot();
        assert_eq!(s.random_reads, 2);
    }

    #[test]
    fn cold_is_lock_free_warm_is_not() {
        assert!(SimDevice::cold(DeviceKind::Ssd).is_lock_free());
        assert!(!SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(8)).is_lock_free());
    }

    #[test]
    fn concurrent_charges_sum_exactly() {
        let dev = SimDevice::cold(DeviceKind::Ssd);
        std::thread::scope(|s| {
            for t in 0..4 {
                let dev = dev.clone();
                s.spawn(move || {
                    for p in 0..5_000u64 {
                        dev.read_random(t * 10_000 + p);
                    }
                });
            }
        });
        assert_eq!(dev.snapshot().random_reads, 20_000, "no lost updates");
    }
}
