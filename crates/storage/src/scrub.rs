//! Background scrubbing: sweep live pages verifying checksums so
//! silent bit rot is found (and quarantined) *before* a query trips
//! over it.
//!
//! The scrubber is deliberately dumb: one pass walks every live page
//! of a [`FileStore`] through the same verified read path queries use
//! — retries included — and hands checksum failures to the store's
//! quarantine. Repair is someone else's job (`DurableIndex` replays
//! the page from its WAL image); detection and containment is the
//! whole contract here, reported through the store's
//! [`FaultStats`](crate::fault::FaultStats) as the
//! `bftree_fault_scrub_*` counters and a `scrub` span per pass.
//!
//! [`Scrubber::spawn`] runs passes on a background thread at a fixed
//! interval; [`BackgroundScrubber::stop`] joins it and returns the
//! accumulated totals. Experiments that want deterministic timing
//! call [`Scrubber::scrub_pass`] synchronously instead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::file::FileStore;

/// What one scrub pass saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Live pages whose checksum was verified this pass.
    pub pages_scanned: u64,
    /// Pages that failed verification and were quarantined by this
    /// pass.
    pub corrupt_found: u64,
    /// Pages skipped because they were already in quarantine (awaiting
    /// repair; rereading them teaches nothing).
    pub already_quarantined: u64,
    /// Pages whose read kept failing transiently even after retries —
    /// not corrupt, just unreachable this pass.
    pub unavailable: u64,
}

impl ScrubReport {
    /// True when the pass found every scanned page healthy.
    pub fn clean(&self) -> bool {
        self.corrupt_found == 0 && self.unavailable == 0
    }

    /// Accumulate another pass into this report.
    pub fn absorb(&mut self, other: &ScrubReport) {
        self.pages_scanned += other.pages_scanned;
        self.corrupt_found += other.corrupt_found;
        self.already_quarantined += other.already_quarantined;
        self.unavailable += other.unavailable;
    }
}

/// Sweeps a [`FileStore`]'s live pages verifying checksums (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct Scrubber {
    store: Arc<FileStore>,
}

impl Scrubber {
    /// A scrubber over `store`.
    pub fn new(store: Arc<FileStore>) -> Self {
        Self { store }
    }

    /// One synchronous pass over every live page: verified read (the
    /// store's retry policy applies), quarantine on checksum failure.
    /// Pages already quarantined are skipped — they are known-bad and
    /// waiting on repair.
    pub fn scrub_pass(&self) -> ScrubReport {
        let mut span = bftree_obs::span(bftree_obs::SpanKind::Scrub);
        let mut report = ScrubReport::default();
        for page in self.store.live_page_ids() {
            if self.store.quarantine().contains(page) {
                report.already_quarantined += 1;
                continue;
            }
            report.pages_scanned += 1;
            match self.store.read_page_verified(page) {
                Ok(_) => {}
                Err(e) if e.is_transient() => report.unavailable += 1,
                Err(_) => {
                    self.store.quarantine_page(page);
                    report.corrupt_found += 1;
                }
            }
        }
        self.store
            .fault_stats()
            .note_scrub_pass(report.pages_scanned, report.corrupt_found);
        span.set_detail(report.pages_scanned);
        report
    }

    /// Run [`Scrubber::scrub_pass`] every `interval` on a background
    /// thread until [`BackgroundScrubber::stop`] is called. The first
    /// pass runs immediately.
    pub fn spawn(self, interval: Duration) -> BackgroundScrubber {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut totals = ScrubReport::default();
            let mut passes = 0u64;
            loop {
                totals.absorb(&self.scrub_pass());
                passes += 1;
                if stop_flag.load(Ordering::Relaxed) {
                    return (totals, passes);
                }
                // Sleep in small slices so stop() is prompt even with
                // long intervals.
                let mut left = interval;
                let slice = Duration::from_millis(10);
                while left > Duration::ZERO {
                    if stop_flag.load(Ordering::Relaxed) {
                        return (totals, passes);
                    }
                    let step = left.min(slice);
                    std::thread::sleep(step);
                    left -= step;
                }
            }
        });
        BackgroundScrubber {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to a running background scrubber (see [`Scrubber::spawn`]).
#[derive(Debug)]
pub struct BackgroundScrubber {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<(ScrubReport, u64)>>,
}

impl BackgroundScrubber {
    /// Signal the thread to stop, join it, and return the accumulated
    /// totals plus the number of passes completed.
    pub fn stop(mut self) -> (ScrubReport, u64) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("stop is the only taker")
            .join()
            .expect("scrubber thread never panics")
    }
}

impl Drop for BackgroundScrubber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{ScratchDir, SyncPolicy};

    fn store(name: &str) -> (ScratchDir, Arc<FileStore>) {
        let dir = ScratchDir::new(name).unwrap();
        let store = FileStore::create(dir.path().join("s.bfs"), SyncPolicy::Deferred).unwrap();
        (dir, Arc::new(store))
    }

    #[test]
    fn clean_store_scrubs_clean() {
        let (_dir, store) = store("scrub-clean");
        for page in 0..8 {
            store.write_page(page, b"healthy").unwrap();
        }
        let report = Scrubber::new(Arc::clone(&store)).scrub_pass();
        assert!(report.clean());
        assert_eq!(report.pages_scanned, 8);
        assert!(store.quarantine().is_empty());
        let snap = store.fault_stats().snapshot();
        assert_eq!(snap.scrub_passes, 1);
        assert_eq!(snap.scrub_pages, 8);
    }

    #[test]
    fn scrub_finds_planted_rot_and_quarantines_it() {
        let (_dir, store) = store("scrub-rot");
        for page in 0..6 {
            store.write_page(page, b"payload").unwrap();
        }
        store.corrupt_page(2).unwrap();
        store.corrupt_page(5).unwrap();
        let scrubber = Scrubber::new(Arc::clone(&store));
        let report = scrubber.scrub_pass();
        assert_eq!(report.corrupt_found, 2);
        assert!(store.quarantine().contains(2) && store.quarantine().contains(5));
        // A second pass skips the quarantined pages instead of
        // rediscovering them.
        let again = scrubber.scrub_pass();
        assert_eq!(again.corrupt_found, 0);
        assert_eq!(again.already_quarantined, 2);
        assert_eq!(again.pages_scanned, 4);
        // Repair heals; the next pass is clean and full-coverage.
        store.repair_page(2, Some(b"payload")).unwrap();
        store.repair_page(5, Some(b"payload")).unwrap();
        let healed = scrubber.scrub_pass();
        assert!(healed.clean());
        assert_eq!(healed.pages_scanned, 6);
    }

    #[test]
    fn background_scrubber_runs_and_stops() {
        let (_dir, store) = store("scrub-bg");
        for page in 0..4 {
            store.write_page(page, b"x").unwrap();
        }
        store.corrupt_page(1).unwrap();
        let bg = Scrubber::new(Arc::clone(&store)).spawn(Duration::from_millis(1));
        // The first pass runs before any sleep, so corruption is
        // already contained by the time stop() returns.
        let (totals, passes) = bg.stop();
        assert!(passes >= 1);
        assert_eq!(totals.corrupt_found, 1);
        assert!(store.quarantine().contains(1));
    }
}
