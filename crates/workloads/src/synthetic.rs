//! The paper's synthetic relation R (§6.1): 256-byte tuples carrying
//! an 8-byte unique primary key (PK) and an 8-byte second attribute
//! (ATT1) whose values repeat 11 times on average. Both attributes are
//! "ordered because they are correlated with the creation time".

use bftree_storage::tuple::ATT1_OFFSET;
use bftree_storage::{HeapFile, TupleLayout};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Re-exported attribute offsets of relation R, so harness code can
/// name the indexed column without importing the storage crate.
pub use bftree_storage::tuple::{ATT1_OFFSET as ATT1, PK_OFFSET as PK};

/// Generator parameters for relation R.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Relation size in tuples. The paper's 1 GB relation is
    /// 4 194 304 tuples of 256 B; scaled-down runs keep every ratio.
    pub n_tuples: u64,
    /// Tuple size in bytes.
    pub tuple_size: usize,
    /// Mean repetitions of each ATT1 value ("each value repeated 11
    /// times on average").
    pub att1_avg_card: u64,
    /// Mean gap between consecutive distinct ATT1 values. ATT1 "is a
    /// timestamp attribute" (§6.3): not every instant has an event, so
    /// the domain has holes — which is what lets the experiment's
    /// random probes miss ~86 % of the time while staying in range.
    pub att1_avg_gap: u64,
    /// Deterministic seed for the run-length noise on ATT1.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's exact §6.1 parameters (1 GB).
    pub fn paper_1gb() -> Self {
        Self {
            n_tuples: (1 << 30) / 256,
            tuple_size: 256,
            att1_avg_card: 11,
            att1_avg_gap: 7,
            seed: 0xB16_DA7A,
        }
    }

    /// A laptop-friendly scale: `mb` megabytes of 256 B tuples.
    pub fn scaled_mb(mb: u64) -> Self {
        Self {
            n_tuples: mb * (1 << 20) / 256,
            ..Self::paper_1gb()
        }
    }
}

/// Build relation R as a heap file *ordered on the creation time*
/// (equivalently: on PK, and therefore partitioned on ATT1 too).
///
/// PK is the dense sequence `0..n_tuples`. ATT1 values are assigned in
/// non-decreasing runs whose lengths are uniform in
/// `[1, 2·avg_card - 1]` (mean `avg_card`), so the attribute has the
/// paper's average cardinality with realistic per-value variation.
pub fn build_relation_r(config: &SyntheticConfig) -> HeapFile {
    let mut heap = HeapFile::new(TupleLayout::new(config.tuple_size));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut att1 = 0u64;
    let mut remaining_run = run_length(&mut rng, config.att1_avg_card);
    for pk in 0..config.n_tuples {
        if remaining_run == 0 {
            att1 += run_length(&mut rng, config.att1_avg_gap);
            remaining_run = run_length(&mut rng, config.att1_avg_card);
        }
        remaining_run -= 1;
        heap.append_record(pk, att1);
    }
    heap
}

/// Uniform in `[1, 2·avg - 1]`, mean `avg`.
fn run_length(rng: &mut StdRng, avg: u64) -> u64 {
    if avg <= 1 {
        1
    } else {
        rng.random_range(1..=2 * avg - 1)
    }
}

/// All distinct ATT1 values present in `heap`, in order (the probe
/// universe for the §6.3 experiment).
pub fn att1_domain(heap: &HeapFile) -> Vec<u64> {
    let mut values: Vec<u64> = heap.iter_attr(ATT1_OFFSET).map(|(_, _, v)| v).collect();
    values.dedup();
    values
}

/// Empirical average cardinality of ATT1 (tuples per distinct value).
pub fn att1_avg_cardinality(heap: &HeapFile) -> f64 {
    let distinct = att1_domain(heap).len();
    if distinct == 0 {
        return 0.0;
    }
    heap.tuple_count() as f64 / distinct as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            n_tuples: 50_000,
            ..SyntheticConfig::scaled_mb(16)
        }
    }

    #[test]
    fn pk_is_dense_and_ordered() {
        let heap = build_relation_r(&small());
        assert_eq!(heap.tuple_count(), 50_000);
        for (expect, (_, _, pk)) in heap.iter_attr(PK).enumerate() {
            assert_eq!(pk, expect as u64);
        }
    }

    #[test]
    fn att1_is_nondecreasing_with_mean_cardinality_11() {
        let heap = build_relation_r(&small());
        let mut prev = 0u64;
        for (_, _, v) in heap.iter_attr(ATT1_OFFSET) {
            assert!(v >= prev, "ATT1 must be non-decreasing");
            prev = v;
        }
        let avg = att1_avg_cardinality(&heap);
        assert!((9.0..=13.0).contains(&avg), "avg cardinality = {avg}");
    }

    #[test]
    fn att1_domain_has_gaps_for_in_range_misses() {
        let heap = build_relation_r(&small());
        let dom = att1_domain(&heap);
        let gaps = dom.windows(2).filter(|w| w[1] > w[0] + 1).count();
        // mean gap 7 -> the vast majority of adjacent pairs have holes.
        assert!(
            gaps * 2 > dom.len(),
            "only {gaps} gaps over {} values",
            dom.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_relation_r(&small());
        let b = build_relation_r(&small());
        assert_eq!(a.tuple_count(), b.tuple_count());
        for pid in 0..a.page_count() {
            for slot in 0..a.tuples_in_page(pid) {
                assert_eq!(
                    a.attr(pid, slot, ATT1_OFFSET),
                    b.attr(pid, slot, ATT1_OFFSET)
                );
            }
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = build_relation_r(&small());
        let b = build_relation_r(&SyntheticConfig { seed: 7, ..small() });
        let same = a
            .iter_attr(ATT1_OFFSET)
            .zip(b.iter_attr(ATT1_OFFSET))
            .all(|(x, y)| x.2 == y.2);
        assert!(!same);
    }

    #[test]
    fn paper_scale_arithmetic() {
        let c = SyntheticConfig::paper_1gb();
        assert_eq!(c.n_tuples, 4_194_304);
        assert_eq!(SyntheticConfig::scaled_mb(64).n_tuples, 262_144);
    }

    #[test]
    fn tuples_per_page_is_16() {
        let heap = build_relation_r(&SyntheticConfig {
            n_tuples: 100,
            ..small()
        });
        assert_eq!(heap.tuples_per_page(), 16); // 4096 / 256
        assert_eq!(heap.page_count(), 7); // ceil(100/16)
    }
}
