//! Mixed read/insert operation streams (YCSB-style A/B/C mixes).
//!
//! An [`OpMix`] fixes the read fraction; [`mixed_stream`] interleaves
//! probe and insert operations exactly at that fraction (Bresenham
//! spreading, the same device used by
//! [`crate::probes_with_hit_rate`]), drawing probe keys under a
//! [`KeyPopularity`] and insert keys in order from a caller-provided
//! list. [`mixed_streams`] splits the work across worker threads with
//! decorrelated per-thread seeds and disjoint insert-key slices, so a
//! multi-threaded run touches each insert key exactly once.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::popularity::{thread_seed, KeyPopularity, KeySampler};

/// One operation of a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point probe of the key.
    Probe(u64),
    /// Register the key (its tuple is pre-loaded in the heap; the
    /// op makes it visible to the index).
    Insert(u64),
}

/// Read/insert ratio of a mixed stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of operations that are probes, in [0, 1].
    pub read_fraction: f64,
}

impl OpMix {
    /// YCSB-A: 50 % reads, 50 % writes ("update heavy").
    pub const YCSB_A: OpMix = OpMix { read_fraction: 0.5 };
    /// YCSB-B: 95 % reads, 5 % writes ("read mostly").
    pub const YCSB_B: OpMix = OpMix {
        read_fraction: 0.95,
    };
    /// YCSB-C: 100 % reads (the paper's probe-only workloads).
    pub const YCSB_C: OpMix = OpMix { read_fraction: 1.0 };
}

/// Generate `n_ops` operations: probes of `domain` keys drawn under
/// `popularity`, interleaved with inserts consuming `insert_keys` in
/// order. Exactly `⌈n_ops · (1 - read_fraction)⌉` inserts are
/// scheduled (fewer if `insert_keys` runs out first — the tail
/// becomes probes), evenly spread through the stream.
pub fn mixed_stream(
    domain: &[u64],
    popularity: KeyPopularity,
    mix: OpMix,
    insert_keys: &[u64],
    n_ops: usize,
    seed: u64,
) -> Vec<Op> {
    assert!(
        (0.0..=1.0).contains(&mix.read_fraction),
        "read fraction out of [0, 1]"
    );
    assert!(!domain.is_empty(), "empty probe domain");
    let sampler = KeySampler::new(domain.len(), popularity);
    let mut rng = StdRng::seed_from_u64(seed);
    let rf = mix.read_fraction;
    let mut next_insert = 0usize;
    (0..n_ops)
        .map(|i| {
            let want_read =
                (((i + 1) as f64) * rf).floor() > ((i as f64) * rf).floor() || rf >= 1.0;
            if !want_read && next_insert < insert_keys.len() {
                let key = insert_keys[next_insert];
                next_insert += 1;
                Op::Insert(key)
            } else {
                Op::Probe(domain[sampler.sample(&mut rng)])
            }
        })
        .collect()
}

/// Per-thread mixed streams: `threads` streams of `ops_per_thread`
/// operations, each seeded from `(seed, thread)` and drawing inserts
/// from its own disjoint chunk of `insert_keys`.
pub fn mixed_streams(
    domain: &[u64],
    popularity: KeyPopularity,
    mix: OpMix,
    insert_keys: &[u64],
    ops_per_thread: usize,
    threads: usize,
    seed: u64,
) -> Vec<Vec<Op>> {
    assert!(threads >= 1, "need at least one stream");
    let chunk = insert_keys.len().div_ceil(threads).max(1);
    (0..threads)
        .map(|t| {
            let slice = insert_keys
                .get(t * chunk..((t + 1) * chunk).min(insert_keys.len()))
                .unwrap_or(&[]);
            mixed_stream(
                domain,
                popularity,
                mix,
                slice,
                ops_per_thread,
                thread_seed(seed, t),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Vec<u64> {
        (0..1_000u64).collect()
    }

    fn count_inserts(ops: &[Op]) -> usize {
        ops.iter().filter(|o| matches!(o, Op::Insert(_))).count()
    }

    #[test]
    fn mix_fraction_is_exact() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..20_000u64).collect();
        for (mix, expect) in [
            (OpMix::YCSB_A, 500),
            (OpMix::YCSB_B, 50),
            (OpMix::YCSB_C, 0),
        ] {
            let ops = mixed_stream(&d, KeyPopularity::Uniform, mix, &inserts, 1_000, 1);
            assert_eq!(ops.len(), 1_000);
            assert_eq!(count_inserts(&ops), expect, "mix {mix:?}");
        }
    }

    #[test]
    fn inserts_consume_keys_in_order_without_repeats() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..10_100u64).collect();
        let ops = mixed_stream(&d, KeyPopularity::Uniform, OpMix::YCSB_A, &inserts, 150, 2);
        let got: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Insert(k) => Some(*k),
                Op::Probe(_) => None,
            })
            .collect();
        assert_eq!(got, inserts[..got.len()].to_vec());
    }

    #[test]
    fn exhausted_insert_keys_fall_back_to_probes() {
        let d = domain();
        let inserts = [10_000u64, 10_001];
        let ops = mixed_stream(&d, KeyPopularity::Uniform, OpMix::YCSB_A, &inserts, 100, 3);
        assert_eq!(count_inserts(&ops), 2);
    }

    #[test]
    fn streams_are_deterministic() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..10_500u64).collect();
        let pop = KeyPopularity::Zipfian { theta: 0.99 };
        let a = mixed_streams(&d, pop, OpMix::YCSB_B, &inserts, 200, 4, 5);
        let b = mixed_streams(&d, pop, OpMix::YCSB_B, &inserts, 200, 4, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_insert_slices_are_disjoint() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..10_100u64).collect();
        let streams = mixed_streams(
            &d,
            KeyPopularity::Uniform,
            OpMix::YCSB_A,
            &inserts,
            60,
            4,
            6,
        );
        let mut seen: Vec<u64> = streams
            .iter()
            .flatten()
            .filter_map(|o| match o {
                Op::Insert(k) => Some(*k),
                Op::Probe(_) => None,
            })
            .collect();
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "an insert key was issued twice");
    }

    #[test]
    fn probe_keys_come_from_the_domain() {
        let d: Vec<u64> = (0..100u64).map(|i| i * 7).collect();
        let ops = mixed_stream(
            &d,
            KeyPopularity::Zipfian { theta: 1.1 },
            OpMix::YCSB_B,
            &[],
            500,
            8,
        );
        for op in ops {
            if let Op::Probe(k) = op {
                assert!(d.binary_search(&k).is_ok());
            }
        }
    }
}
