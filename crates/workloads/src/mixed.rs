//! Mixed read/insert/delete operation streams (YCSB-style mixes).
//!
//! An [`OpMix`] fixes the read and delete fractions; [`mixed_stream`]
//! interleaves probe, insert, and delete operations exactly at those
//! fractions (Bresenham spreading, the same device used by
//! [`crate::probes_with_hit_rate`]), drawing probe keys under a
//! [`KeyPopularity`] and insert/delete keys in order from
//! caller-provided lists. [`mixed_streams`] splits the work across
//! worker threads with decorrelated per-thread seeds and disjoint
//! insert/delete-key slices, so a multi-threaded run touches each
//! write key exactly once.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::popularity::{thread_seed, KeyPopularity, KeySampler};

/// One operation of a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point probe of the key.
    Probe(u64),
    /// Register the key (its tuple is pre-loaded in the heap; the
    /// op makes it visible to the index).
    Insert(u64),
    /// Remove every index entry for the key (later probes must miss).
    Delete(u64),
}

/// Read/insert/delete ratio of a mixed stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of operations that are probes, in [0, 1].
    pub read_fraction: f64,
    /// Fraction of **all** operations that are deletes, in
    /// [0, 1 − `read_fraction`]. The remaining write share is inserts.
    pub delete_fraction: f64,
}

impl OpMix {
    /// YCSB-A: 50 % reads, 50 % writes ("update heavy").
    pub const YCSB_A: OpMix = OpMix {
        read_fraction: 0.5,
        delete_fraction: 0.0,
    };
    /// YCSB-B: 95 % reads, 5 % writes ("read mostly").
    pub const YCSB_B: OpMix = OpMix {
        read_fraction: 0.95,
        delete_fraction: 0.0,
    };
    /// YCSB-C: 100 % reads (the paper's probe-only workloads).
    pub const YCSB_C: OpMix = OpMix {
        read_fraction: 1.0,
        delete_fraction: 0.0,
    };
    /// Write-heavy ingest: 50 % reads, 40 % inserts, 10 % deletes —
    /// the durable-write-path stress mix.
    pub const WRITE_HEAVY: OpMix = OpMix {
        read_fraction: 0.5,
        delete_fraction: 0.1,
    };

    /// Fraction of operations that are writes (inserts + deletes).
    pub fn write_fraction(&self) -> f64 {
        1.0 - self.read_fraction
    }
}

/// Generate `n_ops` operations: probes of `domain` keys drawn under
/// `popularity`, interleaved with inserts consuming `insert_keys` and
/// deletes consuming `delete_keys`, both in order. Exactly
/// `⌈n_ops · (1 − read_fraction)⌉` writes are scheduled, of which the
/// `delete_fraction / (1 − read_fraction)` share are deletes (fewer
/// if a key list runs out first — the tail becomes probes), all
/// evenly spread through the stream.
pub fn mixed_stream(
    domain: &[u64],
    popularity: KeyPopularity,
    mix: OpMix,
    insert_keys: &[u64],
    delete_keys: &[u64],
    n_ops: usize,
    seed: u64,
) -> Vec<Op> {
    assert!(
        (0.0..=1.0).contains(&mix.read_fraction),
        "read fraction out of [0, 1]"
    );
    assert!(
        mix.delete_fraction >= 0.0 && mix.read_fraction + mix.delete_fraction <= 1.0,
        "delete fraction out of [0, 1 - read_fraction]"
    );
    assert!(!domain.is_empty(), "empty probe domain");
    let sampler = KeySampler::new(domain.len(), popularity);
    let mut rng = StdRng::seed_from_u64(seed);
    let rf = mix.read_fraction;
    // Deletes as a share of the write slots (Bresenham within the
    // write sub-stream, so both kinds spread evenly).
    let df = if mix.write_fraction() > 0.0 {
        mix.delete_fraction / mix.write_fraction()
    } else {
        0.0
    };
    let mut next_insert = 0usize;
    let mut next_delete = 0usize;
    let mut writes = 0usize;
    (0..n_ops)
        .map(|i| {
            let want_read =
                (((i + 1) as f64) * rf).floor() > ((i as f64) * rf).floor() || rf >= 1.0;
            if want_read {
                return Op::Probe(domain[sampler.sample(&mut rng)]);
            }
            let w = writes;
            writes += 1;
            let want_delete = (((w + 1) as f64) * df).floor() > ((w as f64) * df).floor();
            if want_delete && next_delete < delete_keys.len() {
                let key = delete_keys[next_delete];
                next_delete += 1;
                Op::Delete(key)
            } else if !want_delete && next_insert < insert_keys.len() {
                let key = insert_keys[next_insert];
                next_insert += 1;
                Op::Insert(key)
            } else {
                Op::Probe(domain[sampler.sample(&mut rng)])
            }
        })
        .collect()
}

/// Per-thread mixed streams: `threads` streams of `ops_per_thread`
/// operations, each seeded from `(seed, thread)` and drawing inserts
/// and deletes from its own disjoint chunks of `insert_keys` and
/// `delete_keys`.
#[allow(clippy::too_many_arguments)]
pub fn mixed_streams(
    domain: &[u64],
    popularity: KeyPopularity,
    mix: OpMix,
    insert_keys: &[u64],
    delete_keys: &[u64],
    ops_per_thread: usize,
    threads: usize,
    seed: u64,
) -> Vec<Vec<Op>> {
    assert!(threads >= 1, "need at least one stream");
    let islice = disjoint_chunks(insert_keys, threads);
    let dslice = disjoint_chunks(delete_keys, threads);
    (0..threads)
        .map(|t| {
            mixed_stream(
                domain,
                popularity,
                mix,
                islice[t],
                dslice[t],
                ops_per_thread,
                thread_seed(seed, t),
            )
        })
        .collect()
}

/// Split `keys` into `threads` disjoint contiguous chunks (trailing
/// chunks may be empty).
fn disjoint_chunks(keys: &[u64], threads: usize) -> Vec<&[u64]> {
    let chunk = keys.len().div_ceil(threads).max(1);
    (0..threads)
        .map(|t| {
            keys.get(t * chunk..((t + 1) * chunk).min(keys.len()))
                .unwrap_or(&[])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Vec<u64> {
        (0..1_000u64).collect()
    }

    fn count_inserts(ops: &[Op]) -> usize {
        ops.iter().filter(|o| matches!(o, Op::Insert(_))).count()
    }

    fn count_deletes(ops: &[Op]) -> usize {
        ops.iter().filter(|o| matches!(o, Op::Delete(_))).count()
    }

    #[test]
    fn mix_fraction_is_exact() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..20_000u64).collect();
        for (mix, expect) in [
            (OpMix::YCSB_A, 500),
            (OpMix::YCSB_B, 50),
            (OpMix::YCSB_C, 0),
        ] {
            let ops = mixed_stream(&d, KeyPopularity::Uniform, mix, &inserts, &[], 1_000, 1);
            assert_eq!(ops.len(), 1_000);
            assert_eq!(count_inserts(&ops), expect, "mix {mix:?}");
            assert_eq!(count_deletes(&ops), 0, "mix {mix:?}");
        }
    }

    #[test]
    fn write_heavy_mix_schedules_deletes_among_the_writes() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..20_000u64).collect();
        let deletes: Vec<u64> = (0..1_000u64).collect();
        let ops = mixed_stream(
            &d,
            KeyPopularity::Uniform,
            OpMix::WRITE_HEAVY,
            &inserts,
            &deletes,
            1_000,
            1,
        );
        assert_eq!(ops.len(), 1_000);
        assert_eq!(count_inserts(&ops), 400, "40% inserts");
        assert_eq!(count_deletes(&ops), 100, "10% deletes");
        // Deletes spread through the stream, not bunched at one end.
        let first_half_deletes = count_deletes(&ops[..500]);
        assert!(
            (30..=70).contains(&first_half_deletes),
            "deletes bunched: {first_half_deletes} of 100 in the first half"
        );
    }

    #[test]
    fn inserts_and_deletes_consume_keys_in_order_without_repeats() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..10_100u64).collect();
        let deletes: Vec<u64> = (0..50u64).collect();
        let ops = mixed_stream(
            &d,
            KeyPopularity::Uniform,
            OpMix::WRITE_HEAVY,
            &inserts,
            &deletes,
            200,
            2,
        );
        let got_i: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Insert(k) => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(got_i, inserts[..got_i.len()].to_vec());
        let got_d: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Delete(k) => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(got_d, deletes[..got_d.len()].to_vec());
    }

    #[test]
    fn exhausted_write_keys_fall_back_to_probes() {
        let d = domain();
        let inserts = [10_000u64, 10_001];
        let deletes = [3u64];
        let ops = mixed_stream(
            &d,
            KeyPopularity::Uniform,
            OpMix::WRITE_HEAVY,
            &inserts,
            &deletes,
            100,
            3,
        );
        assert_eq!(count_inserts(&ops), 2);
        assert_eq!(count_deletes(&ops), 1);
    }

    #[test]
    fn streams_are_deterministic() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..10_500u64).collect();
        let deletes: Vec<u64> = (0..100u64).collect();
        let pop = KeyPopularity::Zipfian { theta: 0.99 };
        let a = mixed_streams(&d, pop, OpMix::WRITE_HEAVY, &inserts, &deletes, 200, 4, 5);
        let b = mixed_streams(&d, pop, OpMix::WRITE_HEAVY, &inserts, &deletes, 200, 4, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_write_slices_are_disjoint() {
        let d = domain();
        let inserts: Vec<u64> = (10_000..10_100u64).collect();
        let deletes: Vec<u64> = (0..40u64).collect();
        let streams = mixed_streams(
            &d,
            KeyPopularity::Uniform,
            OpMix::WRITE_HEAVY,
            &inserts,
            &deletes,
            60,
            4,
            6,
        );
        let mut seen: Vec<u64> = streams
            .iter()
            .flatten()
            .filter_map(|o| match o {
                Op::Insert(k) | Op::Delete(k) => Some(*k),
                Op::Probe(_) => None,
            })
            .collect();
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "a write key was issued twice");
    }

    #[test]
    fn probe_keys_come_from_the_domain() {
        let d: Vec<u64> = (0..100u64).map(|i| i * 7).collect();
        let ops = mixed_stream(
            &d,
            KeyPopularity::Zipfian { theta: 1.1 },
            OpMix::YCSB_B,
            &[],
            &[],
            500,
            8,
        );
        for op in ops {
            if let Op::Probe(k) = op {
                assert!(d.binary_search(&k).is_ok());
            }
        }
    }
}
