//! TPCH lineitem date columns (§1.1, §6.1, §6.4): a from-scratch
//! generator with dbgen's date semantics, standing in for the real
//! benchmark kit (see DESIGN.md §4, Substitutions).
//!
//! dbgen draws each order's `orderdate` uniformly from the ~7-year
//! window `[STARTDATE, ENDDATE - 151 days]` and derives per-lineitem
//! dates: `shipdate = orderdate + U[1, 121]`,
//! `commitdate = orderdate + U[30, 90]`,
//! `receiptdate = shipdate + U[1, 30]`. The three dates are therefore
//! close but not identically ordered — the paper's Figure 1(a)
//! "implicit clustering". At SF 1 the ~6 M lineitems spread over
//! ~2 500 distinct ship dates, i.e. "each date of the shipdate is
//! repeated 2400 times on average".

use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, TupleLayout};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `shipdate` attribute offset within a lineitem tuple (days since the
/// TPCH start date, stored as u64).
pub const SHIPDATE: AttrOffset = AttrOffset(0);
/// `commitdate` attribute offset.
pub const COMMITDATE: AttrOffset = AttrOffset(8);
/// `receiptdate` attribute offset.
pub const RECEIPTDATE: AttrOffset = AttrOffset(16);
/// `orderkey` attribute offset (creation order).
pub const ORDERKEY: AttrOffset = AttrOffset(24);

/// Days in the orderdate window: TPCH orders span
/// `1992-01-01 .. 1998-08-02` (`ENDDATE - 151 days`).
const ORDERDATE_SPAN: u64 = 2_406;

/// One generated lineitem's date columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineitemDates {
    /// Creation order of the parent order.
    pub orderkey: u64,
    /// Days since STARTDATE.
    pub shipdate: u64,
    /// Days since STARTDATE.
    pub commitdate: u64,
    /// Days since STARTDATE.
    pub receiptdate: u64,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Scale factor; SF 1 is ~6 M lineitems. Fractional SFs scale the
    /// row count linearly (dbgen does the same).
    pub scale: f64,
    /// Tuple size of the materialized lineitem rows; the paper uses
    /// 200 B.
    pub tuple_size: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl TpchConfig {
    /// The paper's §6.4 setup: SF 1, 200-byte tuples.
    pub fn paper_sf1() -> Self {
        Self {
            scale: 1.0,
            tuple_size: 200,
            seed: 0x79C4,
        }
    }

    /// Scaled-down variant keeping per-date cardinality ~proportional.
    pub fn scaled(scale: f64) -> Self {
        Self {
            scale,
            ..Self::paper_sf1()
        }
    }

    /// Number of lineitems at this scale.
    pub fn n_lineitems(&self) -> u64 {
        (6_000_000.0 * self.scale) as u64
    }
}

/// Generate the lineitem date columns in *creation order* (orderkey
/// order) — the layout of Figure 1(a).
pub fn generate_lineitem_dates(config: &TpchConfig) -> Vec<LineitemDates> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    if config.n_lineitems() == 0 {
        return Vec::new(); // degenerate scale: the loop below always pushes first
    }
    let n_orders = (config.n_lineitems() / 4).max(1); // ~4 lineitems/order
    let mut rows = Vec::with_capacity(config.n_lineitems() as usize);
    // Orders arrive roughly in date order (creation-time clustering):
    // walk the window and jitter each order's date a little. Per-order
    // line counts are random, so keep issuing orders (pinned to the
    // window's end once past it) until the target row count is hit.
    for orderkey in 0.. {
        let base = orderkey.min(n_orders - 1) * ORDERDATE_SPAN / n_orders;
        let orderdate = (base + rng.random_range(0u64..=30)).min(ORDERDATE_SPAN - 1);
        let lines = rng.random_range(1u64..=7); // dbgen: 1..7 lineitems
        for _ in 0..lines {
            let shipdate = orderdate + rng.random_range(1u64..=121);
            let commitdate = orderdate + rng.random_range(30u64..=90);
            let receiptdate = shipdate + rng.random_range(1u64..=30);
            rows.push(LineitemDates {
                orderkey,
                shipdate,
                commitdate,
                receiptdate,
            });
            if rows.len() as u64 == config.n_lineitems() {
                return rows;
            }
        }
    }
    unreachable!("the order loop only exits by reaching the target row count")
}

/// Materialize the lineitems into a heap file **ordered on shipdate**,
/// the §6.4 physical design ("the indexed attribute is shipdate on
/// which the tuples are ordered").
pub fn build_heap_by_shipdate(config: &TpchConfig) -> HeapFile {
    let mut rows = generate_lineitem_dates(config);
    rows.sort_by_key(|r| (r.shipdate, r.orderkey));
    build_heap(config, &rows)
}

/// Materialize in creation order (Figure 1(a)'s x-axis).
pub fn build_heap_by_creation(config: &TpchConfig) -> HeapFile {
    let rows = generate_lineitem_dates(config);
    build_heap(config, &rows)
}

fn build_heap(config: &TpchConfig, rows: &[LineitemDates]) -> HeapFile {
    let layout = TupleLayout::new(config.tuple_size);
    let mut heap = HeapFile::new(layout);
    let mut buf = vec![0u8; config.tuple_size];
    for r in rows {
        layout.write_attr(&mut buf, SHIPDATE, r.shipdate);
        layout.write_attr(&mut buf, COMMITDATE, r.commitdate);
        layout.write_attr(&mut buf, RECEIPTDATE, r.receiptdate);
        layout.write_attr(&mut buf, ORDERKEY, r.orderkey);
        heap.append(&buf);
    }
    heap
}

/// Distinct shipdates present, ascending (the probe universe of the
/// Figure-11 hit-rate experiment).
pub fn shipdate_domain(rows: &[LineitemDates]) -> Vec<u64> {
    let mut dates: Vec<u64> = rows.iter().map(|r| r.shipdate).collect();
    dates.sort_unstable();
    dates.dedup();
    dates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchConfig {
        TpchConfig::scaled(0.01) // 60k rows
    }

    #[test]
    fn row_count_scales() {
        let rows = generate_lineitem_dates(&small());
        assert_eq!(rows.len(), 60_000);
    }

    #[test]
    fn zero_scale_terminates_with_no_rows() {
        assert!(generate_lineitem_dates(&TpchConfig::scaled(0.0)).is_empty());
    }

    #[test]
    fn date_derivations_hold() {
        for r in generate_lineitem_dates(&small()) {
            assert!(r.shipdate > 0);
            assert!(r.receiptdate > r.shipdate);
            assert!(r.receiptdate - r.shipdate <= 30);
            // commitdate within [orderdate+30, orderdate+90] and
            // shipdate within [orderdate+1, orderdate+121]: so the two
            // never drift more than 120 days apart.
            assert!(r.commitdate.abs_diff(r.shipdate) <= 120);
        }
    }

    #[test]
    fn implicit_clustering_in_creation_order() {
        // Figure 1(a): in creation order the shipdate is *almost*
        // sorted — long-range trend dominates short-range jitter.
        let rows = generate_lineitem_dates(&small());
        let n = rows.len();
        let early_avg: f64 = rows[..n / 10]
            .iter()
            .map(|r| r.shipdate as f64)
            .sum::<f64>()
            / (n / 10) as f64;
        let late_avg: f64 = rows[n - n / 10..]
            .iter()
            .map(|r| r.shipdate as f64)
            .sum::<f64>()
            / (n / 10) as f64;
        assert!(
            late_avg > early_avg + 1000.0,
            "early {early_avg}, late {late_avg}"
        );
    }

    #[test]
    fn per_date_cardinality_at_sf1_scale() {
        // ~2400 per distinct date at SF1; at SF 0.01 expect ~24.
        let rows = generate_lineitem_dates(&small());
        let distinct = shipdate_domain(&rows).len() as f64;
        let card = rows.len() as f64 / distinct;
        assert!((15.0..=35.0).contains(&card), "card = {card}");
    }

    #[test]
    fn heap_by_shipdate_is_sorted() {
        let heap = build_heap_by_shipdate(&small());
        let mut prev = 0u64;
        for (_, _, d) in heap.iter_attr(SHIPDATE) {
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(heap.tuple_count(), 60_000);
        assert_eq!(heap.tuples_per_page(), 20); // 4096 / 200
    }

    #[test]
    fn deterministic() {
        let a = generate_lineitem_dates(&small());
        let b = generate_lineitem_dates(&small());
        assert_eq!(a, b);
    }
}
