//! # Workload generators for the BF-Tree reproduction
//!
//! Deterministic, seeded generators for the three datasets the paper
//! evaluates on (§6.1) and their query workloads:
//!
//! * [`synthetic`] — relation R: 1 GB of 256 B tuples with a unique
//!   ordered PK and an ATT1 attribute of average cardinality 11.
//! * [`tpch`] — TPCH lineitem date columns with dbgen's semantics
//!   (shipdate/commitdate/receiptdate; ~2 400 rows per distinct
//!   shipdate at SF 1), exhibiting Figure 1(a)'s implicit clustering.
//! * [`shd`] — the Smart Home Dataset stand-in: timestamp-ordered
//!   meter readings with the §6.5 cardinality distribution (mean 52,
//!   range 21–8295, 99.7 % ≤ 126) and per-client monotone aggregate
//!   energy.
//! * [`queries`] — probe sets with exact hit-rate control (Figure 11)
//!   and range-scan workloads (Figure 13).
//! * [`popularity`] — skewed key-popularity models (Zipfian via
//!   rejection-inversion, YCSB-style hotspot) for the concurrent
//!   serving experiments.
//! * [`mixed`] — YCSB-A/B/C-style mixed read/insert op streams, split
//!   into decorrelated per-thread streams for the parallel driver.
//!
//! Everything is reproducible from a seed: the paper's requirement
//! that "the same set of search keys is used in each different
//! configuration" extends here to whole datasets.

#![warn(missing_docs)]

pub mod mixed;
pub mod popularity;
pub mod queries;
pub mod shd;
pub mod synthetic;
pub mod tpch;

pub use mixed::{mixed_stream, mixed_streams, Op, OpMix};
pub use popularity::{popular_probe_streams, popular_probes, KeyPopularity, KeySampler, Zipfian};
pub use queries::{probes_from_domain, probes_with_hit_rate, range_queries, RangeQuery};
pub use shd::ShdConfig;
pub use synthetic::{build_relation_r, SyntheticConfig};
pub use tpch::TpchConfig;
