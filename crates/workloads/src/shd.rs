//! Smart Home Dataset (SHD) generator (§1.1, §6.5): a synthetic
//! stand-in for the BigFoot-project electricity-monitoring dataset the
//! paper used (see DESIGN.md §4, Substitutions).
//!
//! What the paper's experiments actually depend on, and what this
//! generator enforces:
//!
//! * rows are timestamped readings arriving in timestamp order
//!   (Figure 1(b): "the timestamps are in increasing order");
//! * per-timestamp cardinality is *variable*: "average cardinality 52
//!   keys for every timestamp (cardinality varies from 21 to 8295,
//!   with 99.7 % of the timestamps having cardinality less or equal
//!   to 126)";
//! * each client's aggregate energy is monotonically non-decreasing
//!   within a billing cycle, "but not always with the same pace".

use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, TupleLayout};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `timestamp` attribute offset (the §6.5 index key).
pub const TIMESTAMP: AttrOffset = AttrOffset(0);
/// `aggregate energy` attribute offset (Figure 1(b)'s y-axis).
pub const AGG_ENERGY: AttrOffset = AttrOffset(8);
/// `client id` attribute offset.
pub const CLIENT: AttrOffset = AttrOffset(16);

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShdConfig {
    /// Number of distinct timestamps to emit.
    pub n_timestamps: u64,
    /// Tuple size of the materialized readings.
    pub tuple_size: usize,
    /// Mean readings per timestamp (the paper's 52).
    pub avg_card: u64,
    /// Deterministic seed.
    pub seed: u64,
}

impl ShdConfig {
    /// Defaults matching the §6.5 cardinality statistics.
    pub fn paper_like(n_timestamps: u64) -> Self {
        Self {
            n_timestamps,
            tuple_size: 256,
            avg_card: 52,
            seed: 0x5AD_CAFE,
        }
    }
}

/// One reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reading {
    /// Seconds since the start of the trace.
    pub timestamp: u64,
    /// Monotone per-client aggregate energy (Wh).
    pub aggregate_energy: u64,
    /// Which smart meter reported.
    pub client: u64,
}

/// Generate readings in timestamp order with the paper's cardinality
/// distribution.
///
/// Cardinality model: a body/tail mixture. 99.7 % of timestamps draw
/// from a log-normal-shaped body clamped to `[21, 126]` (mean ≈ 46);
/// the remaining 0.3 % draw log-uniformly from `(126, 8295]` —
/// burst periods when many meters report at once. The mixture mean
/// lands on the paper's 52.
pub fn generate_readings(config: &ShdConfig) -> Vec<Reading> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_clients = 8_295u64; // must cover the max burst cardinality
    let mut energy = vec![0u64; n_clients as usize];
    let mut rows = Vec::with_capacity((config.n_timestamps * config.avg_card) as usize);

    for ts in 0..config.n_timestamps {
        let card = sample_cardinality(&mut rng, config.avg_card);
        // A burst samples a contiguous block of clients starting at a
        // random offset, wrapping; every sampled client reports once.
        let start = rng.random_range(0..n_clients);
        for i in 0..card {
            let client = (start + i) % n_clients;
            // Consumption since last report: mostly small, sometimes a
            // spike — "not always with the same pace".
            let delta = if rng.random_bool(0.05) {
                rng.random_range(200u64..2_000)
            } else {
                rng.random_range(1u64..50)
            };
            energy[client as usize] += delta;
            rows.push(Reading {
                timestamp: ts * 30, // one reading window every 30 s
                aggregate_energy: energy[client as usize],
                client,
            });
        }
    }
    rows
}

/// Draw one timestamp's cardinality per the §6.5 statistics.
fn sample_cardinality(rng: &mut StdRng, avg: u64) -> u64 {
    let scale = avg as f64 / 52.0;
    if rng.random_bool(0.003) {
        // Tail: log-uniform over (126, 8295].
        let lo = (126.0f64 * scale).max(2.0).ln();
        let hi = (8_295.0f64 * scale).max(3.0).ln();
        rng.random_range(lo..hi).exp() as u64
    } else {
        // Body: exponentiated Gaussian around ln(43), clamped.
        let z: f64 = sum12(rng) - 6.0; // ~N(0,1)
        let v = (43.0 * scale * (0.30 * z).exp()).round();
        (v as u64).clamp((21.0 * scale) as u64, (126.0 * scale) as u64)
    }
}

/// Irwin–Hall approximation of a standard normal (12 uniform draws),
/// keeping the generator free of distribution crates.
fn sum12(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.random_range(0.0..1.0)).sum()
}

/// Materialize readings into a heap file in timestamp order.
pub fn build_heap(config: &ShdConfig) -> HeapFile {
    let layout = TupleLayout::new(config.tuple_size);
    let mut heap = HeapFile::new(layout);
    let mut buf = vec![0u8; config.tuple_size];
    for r in generate_readings(config) {
        layout.write_attr(&mut buf, TIMESTAMP, r.timestamp);
        layout.write_attr(&mut buf, AGG_ENERGY, r.aggregate_energy);
        layout.write_attr(&mut buf, CLIENT, r.client);
        heap.append(&buf);
    }
    heap
}

/// Distinct timestamps present, ascending (probe universe for the
/// §6.5 100 %-hit-rate workload).
pub fn timestamp_domain(rows: &[Reading]) -> Vec<u64> {
    let mut ts: Vec<u64> = rows.iter().map(|r| r.timestamp).collect();
    ts.dedup(); // already ordered
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rows() -> Vec<Reading> {
        generate_readings(&ShdConfig::paper_like(4_000))
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let mut prev = 0;
        for r in rows() {
            assert!(r.timestamp >= prev);
            prev = r.timestamp;
        }
    }

    #[test]
    fn cardinality_statistics_match_section_6_5() {
        let rows = rows();
        let mut per_ts: HashMap<u64, u64> = HashMap::new();
        for r in &rows {
            *per_ts.entry(r.timestamp).or_default() += 1;
        }
        let cards: Vec<u64> = per_ts.values().copied().collect();
        let n = cards.len() as f64;
        let mean = cards.iter().sum::<u64>() as f64 / n;
        assert!((40.0..=70.0).contains(&mean), "mean = {mean}");

        let min = *cards.iter().min().unwrap();
        let max = *cards.iter().max().unwrap();
        assert!(min >= 21, "min = {min}");
        assert!(max <= 8_295, "max = {max}");

        let le_126 = cards.iter().filter(|&&c| c <= 126).count() as f64 / n;
        assert!(le_126 >= 0.99, "fraction <= 126: {le_126}");
    }

    #[test]
    fn per_client_energy_is_monotone() {
        let mut last: HashMap<u64, u64> = HashMap::new();
        for r in rows() {
            if let Some(&prev) = last.get(&r.client) {
                assert!(r.aggregate_energy >= prev, "client {} regressed", r.client);
            }
            last.insert(r.client, r.aggregate_energy);
        }
    }

    #[test]
    fn heap_round_trips_attributes() {
        let config = ShdConfig::paper_like(200);
        let rows = generate_readings(&config);
        let heap = build_heap(&config);
        assert_eq!(heap.tuple_count(), rows.len() as u64);
        // Spot-check the first page.
        for (slot, row) in rows.iter().enumerate().take(heap.tuples_in_page(0)) {
            assert_eq!(heap.attr(0, slot, TIMESTAMP), row.timestamp);
            assert_eq!(heap.attr(0, slot, AGG_ENERGY), row.aggregate_energy);
            assert_eq!(heap.attr(0, slot, CLIENT), row.client);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(rows(), rows());
    }

    #[test]
    fn domain_is_strictly_increasing() {
        let rows = rows();
        let dom = timestamp_domain(&rows);
        assert!(dom.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(dom.len(), 4_000);
    }
}
