//! Query workload generators (§6.1): fixed sets of probe keys shared
//! across storage configurations ("the same set of search keys is used
//! in each different configuration"), with controlled hit rates for
//! the Figure-11 sweep, plus range-scan workloads for Figure 13.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draw `n` probe keys from `domain` uniformly at random with
/// replacement — the §6.2 workload ("a thousand index searches with a
/// random key"), hit rate 100 %.
pub fn probes_from_domain(domain: &[u64], n: usize, seed: u64) -> Vec<u64> {
    assert!(!domain.is_empty(), "empty probe domain");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| domain[rng.random_range(0..domain.len())])
        .collect()
}

/// Draw `n` probe keys such that a fraction `hit_rate` of them exist
/// in `domain` and the rest provably miss (Figure 11's x-axis, hit
/// rates 0 %–100 %).
///
/// Misses are drawn from the *gaps* of the sorted domain so they fall
/// inside the indexed key range (forcing real index work, not a
/// trivial out-of-range rejection). `domain` must be sorted and have
/// gaps if `hit_rate < 1`.
pub fn probes_with_hit_rate(domain: &[u64], n: usize, hit_rate: f64, seed: u64) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&hit_rate), "hit rate out of [0,1]");
    assert!(!domain.is_empty(), "empty probe domain");
    let mut rng = StdRng::seed_from_u64(seed);
    let gaps = domain_gaps(domain);
    assert!(
        hit_rate >= 1.0 || !gaps.is_empty(),
        "domain is dense: cannot generate in-range misses"
    );
    (0..n)
        .map(|i| {
            // Bresenham-style spreading: exactly ⌊n·hit_rate⌋ hits,
            // evenly interleaved with the misses.
            let want_hit = (((i + 1) as f64) * hit_rate).floor() > ((i as f64) * hit_rate).floor();
            if want_hit {
                domain[rng.random_range(0..domain.len())]
            } else {
                gaps[rng.random_range(0..gaps.len())]
            }
        })
        .collect()
}

/// One missing key per gap between consecutive domain values.
fn domain_gaps(domain: &[u64]) -> Vec<u64> {
    domain
        .windows(2)
        .filter(|w| w[1] > w[0] + 1)
        .map(|w| w[0] + 1)
        .collect()
}

/// A half-open key range `[lo, hi]` covering a target fraction of the
/// key domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

/// Generate `n` range scans each spanning `fraction` of the sorted
/// `domain` (Figure 13 uses 1 %, 5 %, 10 %, 20 %), uniformly placed.
pub fn range_queries(domain: &[u64], fraction: f64, n: usize, seed: u64) -> Vec<RangeQuery> {
    assert!(fraction > 0.0 && fraction <= 1.0);
    assert!(domain.len() >= 2, "need at least two keys for a range");
    let mut rng = StdRng::seed_from_u64(seed);
    let span = ((domain.len() as f64 * fraction) as usize).max(1);
    (0..n)
        .map(|_| {
            let start = rng.random_range(0..=domain.len() - span);
            RangeQuery {
                lo: domain[start],
                hi: domain[start + span - 1],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Vec<u64> {
        (0..10_000u64).map(|i| i * 3).collect() // gaps everywhere
    }

    #[test]
    fn probes_all_exist() {
        let d = domain();
        for k in probes_from_domain(&d, 1_000, 1) {
            assert!(d.binary_search(&k).is_ok());
        }
    }

    #[test]
    fn hit_rate_is_exact() {
        let d = domain();
        for rate in [0.0, 0.05, 0.10, 0.5, 1.0] {
            let probes = probes_with_hit_rate(&d, 1_000, rate, 42);
            let hits =
                probes.iter().filter(|k| d.binary_search(k).is_ok()).count() as f64 / 1_000.0;
            assert!((hits - rate).abs() <= 0.002, "rate {rate}: realized {hits}");
        }
    }

    #[test]
    fn misses_fall_inside_the_key_range() {
        let d = domain();
        let probes = probes_with_hit_rate(&d, 500, 0.0, 7);
        let (lo, hi) = (*d.first().unwrap(), *d.last().unwrap());
        for k in probes {
            assert!(k > lo && k < hi);
            assert!(d.binary_search(&k).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn dense_domain_cannot_miss() {
        let dense: Vec<u64> = (0..100).collect();
        probes_with_hit_rate(&dense, 10, 0.5, 1);
    }

    #[test]
    fn ranges_cover_requested_fraction() {
        let d = domain();
        for frac in [0.01, 0.05, 0.10, 0.20] {
            for q in range_queries(&d, frac, 50, 3) {
                let lo_idx = d.binary_search(&q.lo).unwrap();
                let hi_idx = d.binary_search(&q.hi).unwrap();
                let got = (hi_idx - lo_idx + 1) as f64 / d.len() as f64;
                assert!((got - frac).abs() / frac < 0.02, "frac {frac}: got {got}");
            }
        }
    }

    #[test]
    fn deterministic_workloads() {
        let d = domain();
        assert_eq!(
            probes_from_domain(&d, 100, 9),
            probes_from_domain(&d, 100, 9)
        );
        assert_eq!(
            probes_with_hit_rate(&d, 100, 0.3, 9),
            probes_with_hit_rate(&d, 100, 0.3, 9)
        );
        assert_eq!(range_queries(&d, 0.1, 10, 9), range_queries(&d, 0.1, 10, 9));
    }
}
