//! Key-popularity distributions for skewed probe workloads.
//!
//! The paper's experiments probe uniformly random keys; a serving path
//! meant for "heavy traffic" must also survive *skew*, where a few hot
//! keys absorb most of the operations. This module provides the two
//! classic skew models of the YCSB benchmark suite:
//!
//! * [`Zipfian`] — rank `k` receives probability ∝ `k^-θ`, sampled by
//!   rejection-inversion (Hörmann & Derflinger), O(1) per draw with no
//!   O(n) table, for any domain size.
//! * Hotspot — a fraction of the keyspace (the *hot set*) receives a
//!   fixed fraction of the operations, uniform within each set.
//!
//! [`KeyPopularity`] names the distribution; [`KeySampler`] draws
//! 0-based domain indexes from it. Everything is deterministic from a
//! seed, like every other generator in this crate.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Which popularity distribution governs key choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyPopularity {
    /// Every key equally likely (the paper's §6.2 workload).
    Uniform,
    /// Zipfian over key *ranks*: the key at domain index `k` (0-based)
    /// has probability ∝ `(k+1)^-θ`. YCSB's default skew is θ = 0.99.
    Zipfian {
        /// Skew exponent θ > 0; larger is more skewed.
        theta: f64,
    },
    /// The first `hot_fraction` of the domain receives `hot_weight` of
    /// all operations, uniform within the hot and cold sets (YCSB's
    /// "hotspot" distribution).
    Hotspot {
        /// Fraction of the keyspace that is hot, in (0, 1].
        hot_fraction: f64,
        /// Fraction of operations that land in the hot set, in [0, 1].
        hot_weight: f64,
    },
}

/// Zipfian sampler over ranks `{0, …, n-1}` with `P(k) ∝ (k+1)^-θ`,
/// using rejection-inversion sampling (Hörmann & Derflinger 1996, the
/// algorithm behind Apache Commons' and `rand_distr`'s Zipf): constant
/// expected time per draw, no precomputed table, so it scales to
/// paper-sized key domains.
#[derive(Debug, Clone, Copy)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipfian {
    /// Sampler over `n ≥ 1` ranks with exponent `theta > 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "empty Zipfian domain");
        assert!(theta > 0.0 && theta.is_finite(), "theta must be > 0");
        let h = |x: f64| h_integral(x, theta);
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - h_integral_inverse(h(2.5) - 2f64.powf(-theta), theta);
        Self {
            n,
            theta,
            h_x1,
            h_n,
            s,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty (never true: `new` requires n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draw one 0-based rank; rank 0 is the hottest.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.random_range(0.0..1.0) * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.theta);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= h_integral(k + 0.5, self.theta) - (k.powf(-self.theta)) {
                return k as u64 - 1;
            }
        }
    }
}

/// `H(x) = ∫₁ˣ t^-θ dt`, the antiderivative rejection-inversion flips.
fn h_integral(x: f64, theta: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - theta) - 1.0) / (1.0 - theta)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, theta: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-12 {
        x.exp()
    } else {
        // Clamp keeps the base non-negative against rounding at the
        // extreme end of the u-range.
        (1.0 + (x * (1.0 - theta)).max(-1.0)).powf(1.0 / (1.0 - theta))
    }
}

/// Draws 0-based domain indexes under a [`KeyPopularity`].
#[derive(Debug, Clone)]
pub struct KeySampler {
    n: usize,
    popularity: KeyPopularity,
    zipf: Option<Zipfian>,
}

impl KeySampler {
    /// A sampler over a domain of `n ≥ 1` keys.
    pub fn new(n: usize, popularity: KeyPopularity) -> Self {
        assert!(n >= 1, "empty key domain");
        if let KeyPopularity::Hotspot {
            hot_fraction,
            hot_weight,
        } = popularity
        {
            assert!(
                hot_fraction > 0.0 && hot_fraction <= 1.0,
                "hot_fraction out of (0, 1]"
            );
            assert!(
                (0.0..=1.0).contains(&hot_weight),
                "hot_weight out of [0, 1]"
            );
        }
        let zipf = match popularity {
            KeyPopularity::Zipfian { theta } => Some(Zipfian::new(n as u64, theta)),
            _ => None,
        };
        Self {
            n,
            popularity,
            zipf,
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the domain is empty (never true: `new` requires n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draw one 0-based domain index.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        match self.popularity {
            KeyPopularity::Uniform => rng.random_range(0..self.n),
            KeyPopularity::Zipfian { .. } => self.zipf.expect("built in new").sample(rng) as usize,
            KeyPopularity::Hotspot {
                hot_fraction,
                hot_weight,
            } => {
                let hot_n = ((self.n as f64 * hot_fraction).ceil() as usize).clamp(1, self.n);
                if rng.random_bool(hot_weight) {
                    rng.random_range(0..hot_n)
                } else if hot_n < self.n {
                    rng.random_range(hot_n..self.n)
                } else {
                    rng.random_range(0..self.n)
                }
            }
        }
    }
}

/// Draw `n` probe keys from `domain` under `popularity` — the skewed
/// counterpart of [`crate::probes_from_domain`].
pub fn popular_probes(domain: &[u64], popularity: KeyPopularity, n: usize, seed: u64) -> Vec<u64> {
    let sampler = KeySampler::new(domain.len(), popularity);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| domain[sampler.sample(&mut rng)]).collect()
}

/// Independent per-thread probe streams: `threads` streams of
/// `ops_per_thread` keys each, every stream seeded separately from
/// `(seed, thread)` so workers never share an RNG (and adding a thread
/// never perturbs the other threads' streams).
pub fn popular_probe_streams(
    domain: &[u64],
    popularity: KeyPopularity,
    ops_per_thread: usize,
    threads: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    (0..threads)
        .map(|t| popular_probes(domain, popularity, ops_per_thread, thread_seed(seed, t)))
        .collect()
}

/// Decorrelated per-thread seed (splitmix-style golden-ratio stride).
pub(crate) fn thread_seed(seed: u64, thread: usize) -> u64 {
    seed ^ (thread as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact Zipfian probability of rank `k` (0-based) over n ranks.
    fn exact_p(k: usize, n: usize, theta: f64) -> f64 {
        let h: f64 = (1..=n).map(|i| (i as f64).powf(-theta)).sum();
        ((k + 1) as f64).powf(-theta) / h
    }

    #[test]
    fn zipfian_is_deterministic() {
        let d: Vec<u64> = (0..1_000u64).collect();
        let a = popular_probes(&d, KeyPopularity::Zipfian { theta: 0.99 }, 500, 7);
        let b = popular_probes(&d, KeyPopularity::Zipfian { theta: 0.99 }, 500, 7);
        assert_eq!(a, b);
        let c = popular_probes(&d, KeyPopularity::Zipfian { theta: 0.99 }, 500, 8);
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[test]
    fn zipfian_hottest_rank_frequency_matches_theory() {
        let n = 1_000usize;
        let draws = 200_000usize;
        for theta in [0.5, 0.99, 1.2] {
            let z = Zipfian::new(n as u64, theta);
            let mut rng = StdRng::seed_from_u64(42);
            let mut counts = vec![0u64; n];
            for _ in 0..draws {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            let expect = exact_p(0, n, theta);
            let got = counts[0] as f64 / draws as f64;
            assert!(
                (got - expect).abs() / expect < 0.05,
                "theta {theta}: hottest rank freq {got:.4}, expected {expect:.4}"
            );
            // Aggregate head mass (top 10 ranks) also lands on theory.
            let expect10: f64 = (0..10).map(|k| exact_p(k, n, theta)).sum();
            let got10 = counts[..10].iter().sum::<u64>() as f64 / draws as f64;
            assert!(
                (got10 - expect10).abs() / expect10 < 0.03,
                "theta {theta}: top-10 mass {got10:.4}, expected {expect10:.4}"
            );
        }
    }

    #[test]
    fn zipfian_covers_only_the_domain() {
        let z = Zipfian::new(17, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 17];
        for _ in 0..50_000 {
            seen[z.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 17 ranks reachable");
    }

    #[test]
    fn zipfian_theta_one_is_handled() {
        let z = Zipfian::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hot = 0u64;
        let draws = 100_000;
        for _ in 0..draws {
            if z.sample(&mut rng) == 0 {
                hot += 1;
            }
        }
        let expect = exact_p(0, 100, 1.0);
        let got = hot as f64 / draws as f64;
        assert!((got - expect).abs() / expect < 0.05, "{got} vs {expect}");
    }

    #[test]
    fn hotspot_weight_is_respected() {
        let sampler = KeySampler::new(
            10_000,
            KeyPopularity::Hotspot {
                hot_fraction: 0.1,
                hot_weight: 0.9,
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 100_000;
        let hot = (0..draws)
            .filter(|_| sampler.sample(&mut rng) < 1_000)
            .count();
        let got = hot as f64 / draws as f64;
        assert!((got - 0.9).abs() < 0.01, "hot mass {got}, expected 0.9");
    }

    #[test]
    fn hotspot_is_deterministic() {
        let d: Vec<u64> = (0..500u64).map(|i| i * 2).collect();
        let pop = KeyPopularity::Hotspot {
            hot_fraction: 0.2,
            hot_weight: 0.8,
        };
        assert_eq!(
            popular_probes(&d, pop, 300, 9),
            popular_probes(&d, pop, 300, 9)
        );
    }

    #[test]
    fn uniform_sampler_matches_domain_bounds() {
        let sampler = KeySampler::new(64, KeyPopularity::Uniform);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng) < 64);
        }
    }

    #[test]
    fn per_thread_streams_are_independent_and_stable() {
        let d: Vec<u64> = (0..1_000u64).collect();
        let pop = KeyPopularity::Zipfian { theta: 0.99 };
        let s4 = popular_probe_streams(&d, pop, 100, 4, 77);
        let s8 = popular_probe_streams(&d, pop, 100, 8, 77);
        assert_eq!(s4.len(), 4);
        // Growing the thread count leaves existing streams untouched.
        assert_eq!(s4[..], s8[..4]);
        // Streams differ from each other.
        assert_ne!(s4[0], s4[1]);
    }
}
