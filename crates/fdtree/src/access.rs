//! [`AccessMethod`] implementation: the FD-Tree baseline behind the
//! unified index interface.

use bftree_access::{
    check_relation, stream_sorted_matches, AccessMethod, BuildError, Continuation, IndexStats,
    MatchSink, PageBatchCursor, Probe, ProbeError, ProbeIo, RangeCursor,
};
use bftree_btree::{relation_entries, DuplicateMode, TupleRef};
use bftree_storage::{IoContext, PageId, Relation};

use crate::FdTree;

impl AccessMethod for FdTree {
    fn name(&self) -> &'static str {
        "fd-tree"
    }

    fn build(&mut self, rel: &Relation) -> Result<(), BuildError> {
        // `bulk_build` requires key order (`relation_entries` sorts);
        // the FD-Tree stores every tuple reference, i.e. per-tuple
        // duplicate mode.
        *self = FdTree::bulk_build(relation_entries(rel, DuplicateMode::PerTuple));
        Ok(())
    }

    fn probe_into(
        &self,
        key: u64,
        rel: &Relation,
        io: &IoContext,
        sink: &mut dyn MatchSink,
    ) -> Result<ProbeIo, ProbeError> {
        check_relation(rel)?;
        let trefs = self.search_all(key, Some(&io.index));
        Ok(stream_sorted_matches(
            trefs.iter().map(|t| (t.pid(), t.slot())).collect(),
            &io.data,
            sink,
        ))
    }

    /// Override: a first-match probe walks one fence path
    /// ([`FdTree::search`], exactly one page per level) instead of the
    /// duplicate-spill walk of [`FdTree::search_all`].
    fn probe_first(&self, key: u64, rel: &Relation, io: &IoContext) -> Result<Probe, ProbeError> {
        let _span = bftree_obs::span(bftree_obs::SpanKind::Probe);
        check_relation(rel)?;
        let mut result = Probe::default();
        if let Some(tref) = self.search(key, Some(&io.index)) {
            io.data.read_random(tref.pid());
            result.pages_read = 1;
            result.matches.push((tref.pid(), tref.slot()));
        }
        Ok(result)
    }

    fn range_cursor<'c>(
        &'c self,
        lo: u64,
        hi: u64,
        rel: &'c Relation,
        io: &'c IoContext,
    ) -> Result<Box<dyn RangeCursor + 'c>, ProbeError> {
        check_relation(rel)?;
        if lo > hi {
            return Err(ProbeError::InvertedRange { lo, hi });
        }
        let entries = self.range_entries(lo, hi, Some(&io.index));
        Ok(Box::new(PageBatchCursor::new(
            entries.iter().map(|&(_, t)| (t.pid(), t.slot())).collect(),
            &io.data,
            (lo, hi, lo),
            None,
        )))
    }

    fn resume_range_cursor<'c>(
        &'c self,
        cont: &Continuation,
        rel: &'c Relation,
        io: &'c IoContext,
    ) -> Result<Box<dyn RangeCursor + 'c>, ProbeError> {
        check_relation(rel)?;
        // Matches interleave levels in page order, so a key bound
        // cannot prune the re-entry (a small key may sit on a late
        // page of another level): re-run the index query — per-level
        // binary searches plus the span reads — and let the page
        // frontier drop everything the prefix already delivered.
        let entries = self.range_entries(cont.lo(), cont.hi(), Some(&io.index));
        Ok(Box::new(PageBatchCursor::new(
            entries.iter().map(|&(_, t)| (t.pid(), t.slot())).collect(),
            &io.data,
            (cont.lo(), cont.hi(), cont.key()),
            Some((cont.page(), cont.slot())),
        )))
    }

    fn insert(&mut self, key: u64, loc: (PageId, usize), rel: &Relation) -> Result<(), ProbeError> {
        check_relation(rel)?;
        FdTree::insert(self, key, TupleRef::new(loc.0, loc.1));
        Ok(())
    }

    fn delete(&mut self, key: u64, rel: &Relation) -> Result<u64, ProbeError> {
        check_relation(rel)?;
        Ok(self.delete_all(key))
    }

    fn size_bytes(&self) -> u64 {
        FdTree::size_bytes(self)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            pages: self.total_pages(),
            bytes: FdTree::size_bytes(self),
            height: self.n_levels() + 1,
            entries: self.n_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bftree_storage::tuple::PK_OFFSET;
    use bftree_storage::{Duplicates, HeapFile, TupleLayout};

    fn relation() -> Relation {
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for pk in 0..10_000u64 {
            heap.append_record(pk, pk / 11);
        }
        Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap()
    }

    #[test]
    fn probe_and_range_agree_with_heap() {
        let rel = relation();
        let mut tree = FdTree::new();
        AccessMethod::build(&mut tree, &rel).unwrap();
        let io = IoContext::unmetered();
        let p = AccessMethod::probe(&tree, 7_777, &rel, &io).unwrap();
        assert_eq!(p.matches.len(), 1);
        let r = AccessMethod::range_scan(&tree, 100, 199, &rel, &io).unwrap();
        assert_eq!(r.matches.len(), 100);
        assert!(
            io.index.snapshot().device_reads() > 0,
            "levels charge the index device"
        );
    }

    #[test]
    fn delete_all_removes_across_levels() {
        let rel = relation();
        let mut tree = FdTree::new();
        AccessMethod::build(&mut tree, &rel).unwrap();
        // Put a duplicate of an on-flash key into the head too.
        FdTree::insert(&mut tree, 42, TupleRef::new(9_999, 0));
        assert_eq!(tree.delete_all(42), 2);
        assert!(tree.search(42, None).is_none());
    }
}
