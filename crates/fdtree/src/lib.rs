//! FD-Tree (Li, He, Yang, Luo, Yi — PVLDB 2010), the paper's
//! flash-aware tree baseline (§5 model, §6.5 measurements).
//!
//! An FD-Tree is the *logarithmic method* applied to a B+-Tree: a small
//! in-memory **head tree** absorbing inserts, above `L` sorted runs on
//! flash whose sizes grow geometrically by a factor `k`. Searches walk
//! one page per level, guided by **fences** (fractional cascading): a
//! level's pages embed pointer entries that name the page of the next
//! level where the search continues, so each level costs exactly one
//! random page read.
//!
//! This implementation reproduces the structure and its probe I/O
//! pattern:
//!
//! * bulk build produces fence-only upper levels over a data-only
//!   bottom run, so the tree's size matches a packed B+-Tree (the
//!   paper's Figure 4 finds FD-Tree and B+-Tree the same size);
//! * point searches read one page per level (head tree is free);
//! * inserts fill the head tree and trigger cascading merges downward
//!   when a level overflows its geometric budget.
//!
//! Merges are executed eagerly (no de-amortization), which the paper's
//! read-only probe experiments never exercise.

#![warn(missing_docs)]

pub mod access;

use bftree_btree::TupleRef;
use bftree_storage::PageDevice;

/// An entry within an FD-Tree page: a data record or a fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    /// A real index record.
    Data(u64, TupleRef),
    /// A fence: continue the search in page `page` of the next level
    /// for keys ≥ the fence key.
    Fence(u64, u32),
}

impl Entry {
    #[inline]
    fn key(&self) -> u64 {
        match self {
            Entry::Data(k, _) | Entry::Fence(k, _) => *k,
        }
    }
}

/// One on-flash level: a sorted run split into pages.
#[derive(Debug, Clone, Default)]
struct Level {
    /// Data records of this level (sorted by key).
    data: Vec<(u64, TupleRef)>,
    /// Materialized pages (data + fences interleaved, sorted).
    pages: Vec<Vec<Entry>>,
}

/// The FD-Tree.
#[derive(Debug, Clone)]
pub struct FdTree {
    /// In-memory head tree: sorted data entries awaiting merge.
    head: Vec<(u64, TupleRef)>,
    /// Fences from the head into L1 (rebuilt after merges).
    head_fences: Vec<(u64, u32)>,
    levels: Vec<Level>,
    head_capacity: usize,
    k_ratio: usize,
    entries_per_page: usize,
    page_size: usize,
}

impl FdTree {
    /// Paper-style defaults: 4 KB pages of 256 entries, size ratio 8,
    /// one-page head tree.
    pub fn new() -> Self {
        Self::with_parameters(4096, 256, 8, 256)
    }

    /// Fully parameterized construction.
    pub fn with_parameters(
        page_size: usize,
        entries_per_page: usize,
        k_ratio: usize,
        head_capacity: usize,
    ) -> Self {
        assert!(entries_per_page >= 2 && k_ratio >= 2 && head_capacity >= 1);
        Self {
            head: Vec::new(),
            head_fences: Vec::new(),
            levels: Vec::new(),
            head_capacity,
            k_ratio,
            entries_per_page,
            page_size,
        }
    }

    /// Bulk-load from entries sorted by key: the bottom level takes all
    /// the data; every level above holds only fences.
    pub fn bulk_build<I: IntoIterator<Item = (u64, TupleRef)>>(entries: I) -> Self {
        let mut tree = Self::new();
        let mut data: Vec<(u64, TupleRef)> = entries.into_iter().collect();
        assert!(
            data.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_build input must be sorted"
        );
        if data.is_empty() {
            return tree;
        }
        // Number of levels: bottom level must fit within the geometric
        // budget; extra fence-only levels on top until the top level's
        // page count fits the head.
        data.shrink_to_fit();
        let bottom = Level {
            data,
            pages: Vec::new(),
        };
        tree.levels.push(bottom);
        tree.repaginate_from(0);
        // Add fence-only levels until the head fences fit in memory
        // comfortably (≤ head_capacity * k_ratio — the head tree is an
        // in-memory B+-tree in the original, so a generous bound).
        while tree.levels[0].pages.len() > tree.head_capacity * tree.k_ratio {
            tree.levels.insert(0, Level::default());
            tree.repaginate_from(0);
        }
        tree.rebuild_head_fences();
        tree
    }

    /// Number of on-flash levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Entries currently buffered in the head tree.
    pub fn head_len(&self) -> usize {
        self.head.len()
    }

    /// Total index pages across all levels (the paper's size metric).
    pub fn total_pages(&self) -> u64 {
        self.levels.iter().map(|l| l.pages.len() as u64).sum()
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Total data records stored (head + levels).
    pub fn n_entries(&self) -> u64 {
        self.head.len() as u64 + self.levels.iter().map(|l| l.data.len() as u64).sum::<u64>()
    }

    /// Page ids for prewarming: `(level, page)` flattened into one id
    /// space.
    pub fn all_page_ids(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (li, level) in self.levels.iter().enumerate() {
            for pi in 0..level.pages.len() {
                out.push(Self::page_id(li, pi));
            }
        }
        out
    }

    #[inline]
    fn page_id(level: usize, page: usize) -> u64 {
        ((level as u64) << 40) | page as u64
    }

    /// Point search: first match for `key`, charging one random read
    /// per level to `dev`.
    pub fn search(&self, key: u64, dev: Option<&PageDevice>) -> Option<TupleRef> {
        // Head tree: in-memory data entries first.
        if let Ok(at) = self.head.binary_search_by_key(&key, |e| e.0) {
            return Some(self.head[at].1);
        }
        // Follow fences downward.
        let mut page_idx = self.head_fence_target(key)?;
        for (li, level) in self.levels.iter().enumerate() {
            if level.pages.is_empty() {
                return None;
            }
            let page = &level.pages[page_idx.min(level.pages.len() - 1)];
            if let Some(d) = dev {
                d.read_random(Self::page_id(li, page_idx));
            }
            let mut next_fence: Option<u32> = None;
            // Scan for a data match and the governing fence (largest
            // fence key ≤ key). Pages hold ≤ 256 entries, so a linear
            // scan is the realistic in-page cost.
            for e in page {
                match e {
                    Entry::Data(k, r) if *k == key => return Some(*r),
                    Entry::Fence(k, p) if *k <= key => next_fence = Some(*p),
                    _ => {}
                }
            }
            // No governing fence means the key precedes every fence of
            // this level: it can only live in page 0 below.
            page_idx = next_fence.unwrap_or(0) as usize;
        }
        None
    }

    /// All matches for `key` (duplicates may sit at multiple levels and
    /// in adjacent pages of a level).
    pub fn search_all(&self, key: u64, dev: Option<&PageDevice>) -> Vec<TupleRef> {
        let mut out: Vec<TupleRef> = self
            .head
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|(_, r)| *r)
            .collect();
        let mut page_idx = match self.head_fence_target(key) {
            Some(p) => p,
            None => return out,
        };
        for (li, level) in self.levels.iter().enumerate() {
            if level.pages.is_empty() {
                break;
            }
            let mut pi = page_idx.min(level.pages.len() - 1);
            let mut next_fence: Option<u32> = None;
            // Scan pages rightward while the duplicate run continues.
            loop {
                let page = &level.pages[pi];
                if let Some(d) = dev {
                    d.read_random(Self::page_id(li, pi));
                }
                let mut last_key_le = None;
                for e in page {
                    match e {
                        Entry::Data(k, r) if *k == key => out.push(*r),
                        Entry::Fence(k, p) if *k <= key => next_fence = Some(*p),
                        _ => {}
                    }
                    if e.key() <= key {
                        last_key_le = Some(e.key());
                    }
                }
                // Continue into the next page only if this page ended
                // on ≤ key (run may spill over).
                let spills = page.last().map(|e| e.key() <= key).unwrap_or(false)
                    && last_key_le.is_some()
                    && pi + 1 < level.pages.len();
                if spills {
                    pi += 1;
                } else {
                    break;
                }
            }
            page_idx = next_fence.unwrap_or(0) as usize;
        }
        out
    }

    /// All entries with key in `[lo, hi]`, in key order. Each level is
    /// a sorted run, so the touched span costs one random read plus
    /// sequential reads for the following pages of the run.
    pub fn range_entries(
        &self,
        lo: u64,
        hi: u64,
        dev: Option<&PageDevice>,
    ) -> Vec<(u64, TupleRef)> {
        assert!(lo <= hi);
        let mut out: Vec<(u64, TupleRef)> = self
            .head
            .iter()
            .filter(|(k, _)| (lo..=hi).contains(k))
            .copied()
            .collect();
        for (li, level) in self.levels.iter().enumerate() {
            let from = level.data.partition_point(|e| e.0 < lo);
            let to = level.data.partition_point(|e| e.0 <= hi);
            if from == to {
                continue;
            }
            if let Some(d) = dev {
                let first_page = from / self.entries_per_page;
                let last_page = (to - 1) / self.entries_per_page;
                d.read_random(Self::page_id(li, first_page));
                for pi in first_page + 1..=last_page {
                    d.read_seq(Self::page_id(li, pi));
                }
            }
            out.extend_from_slice(&level.data[from..to]);
        }
        out.sort_by_key(|&(k, r)| (k, r.pid(), r.slot()));
        out
    }

    /// Remove every entry for `key` from the head and all levels,
    /// repaginating the affected runs. Returns how many entries were
    /// removed. (The original FD-Tree deletes via *filter* tombstone
    /// entries merged lazily; eager removal has the same observable
    /// probe behaviour, which is what the read-only harness measures.)
    pub fn delete_all(&mut self, key: u64) -> u64 {
        let before = self.n_entries();
        self.head.retain(|e| e.0 != key);
        let mut dirtied = false;
        for level in &mut self.levels {
            let n = level.data.len();
            level.data.retain(|e| e.0 != key);
            dirtied |= level.data.len() != n;
        }
        if dirtied {
            self.repaginate_from(0);
            self.rebuild_head_fences();
        }
        before - self.n_entries()
    }

    /// Insert `(key, tref)` into the head tree, merging into the levels
    /// when it fills (the logarithmic method).
    pub fn insert(&mut self, key: u64, tref: TupleRef) {
        let at = self.head.partition_point(|e| e.0 <= key);
        self.head.insert(at, (key, tref));
        if self.head.len() > self.head_capacity {
            let spill = std::mem::take(&mut self.head);
            self.merge_into(0, spill.into_iter().collect());
            self.rebuild_head_fences();
        }
    }

    /// Geometric data budget of level `i` (in entries).
    fn level_budget(&self, i: usize) -> usize {
        self.head_capacity * self.k_ratio.pow(i as u32 + 1)
    }

    fn merge_into(&mut self, i: usize, incoming: Vec<(u64, TupleRef)>) {
        if i == self.levels.len() {
            self.levels.push(Level::default());
        }
        let existing = std::mem::take(&mut self.levels[i].data);
        let merged = merge_sorted(existing, incoming);
        if merged.len() > self.level_budget(i) && i < self.levels.len() {
            // Overflow: push everything down (levels above bottom keep
            // no data after a cascading merge, as in the original).
            self.merge_into(i + 1, merged);
        } else {
            self.levels[i].data = merged;
        }
        self.repaginate_from(i.min(self.levels.len() - 1));
    }

    /// Rebuild the materialized pages of all levels, bottom-up (pages
    /// of level `l` embed fences to level `l+1`'s pages, so any
    /// repagination invalidates everything above). `_from` is the
    /// lowest dirty level; rebuilding everything above it is required
    /// and rebuilding below it is a no-op, so we simply do all levels.
    ///
    /// As in the original FD-Tree, every page that is preceded by some
    /// fence starts with a fence (an *internal fence* copy), so an
    /// in-page search always finds its governing fence.
    fn repaginate_from(&mut self, _from: usize) {
        for li in (0..self.levels.len()).rev() {
            let fences: Vec<(u64, u32)> = if li + 1 < self.levels.len() {
                self.levels[li + 1]
                    .pages
                    .iter()
                    .enumerate()
                    .map(|(pi, page)| (page.first().map(|e| e.key()).unwrap_or(0), pi as u32))
                    .collect()
            } else {
                Vec::new()
            };
            let level = &mut self.levels[li];
            let mut pages: Vec<Vec<Entry>> = Vec::new();
            let mut page: Vec<Entry> = Vec::with_capacity(self.entries_per_page);
            let mut last_fence: Option<(u64, u32)> = None;
            let mut di = 0;
            let mut fi = 0;
            while di < level.data.len() || fi < fences.len() {
                let take_data = match (level.data.get(di), fences.get(fi)) {
                    (Some(d), Some(f)) => d.0 <= f.0,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let entry = if take_data {
                    let (k, r) = level.data[di];
                    di += 1;
                    Entry::Data(k, r)
                } else {
                    let (k, p) = fences[fi];
                    fi += 1;
                    last_fence = Some((k, p));
                    Entry::Fence(k, p)
                };
                if page.len() == self.entries_per_page {
                    pages.push(std::mem::replace(
                        &mut page,
                        Vec::with_capacity(self.entries_per_page),
                    ));
                }
                // Internal fence: a fresh page whose first entry would
                // be data gets a copy of the governing fence first. The
                // copy carries the data entry's key so that upper-level
                // routing (largest fence ≤ key) stays exact.
                if page.is_empty() && !pages.is_empty() {
                    if let (Some((_, fp)), Entry::Data(dk, _)) = (last_fence, entry) {
                        page.push(Entry::Fence(dk, fp));
                    }
                }
                page.push(entry);
            }
            if !page.is_empty() {
                pages.push(page);
            }
            level.pages = pages;
        }
    }

    fn rebuild_head_fences(&mut self) {
        self.head_fences = match self.levels.first() {
            Some(l1) => l1
                .pages
                .iter()
                .enumerate()
                .map(|(pi, page)| (page.first().map(|e| e.key()).unwrap_or(0), pi as u32))
                .collect(),
            None => Vec::new(),
        };
    }

    /// Page of L1 governing `key` per the head fences.
    fn head_fence_target(&self, key: u64) -> Option<usize> {
        if self.head_fences.is_empty() {
            return None;
        }
        let at = self.head_fences.partition_point(|f| f.0 <= key);
        // Keys below the first fence still live in page 0.
        Some(self.head_fences[at.saturating_sub(1)].1 as usize)
    }
}

impl Default for FdTree {
    fn default() -> Self {
        Self::new()
    }
}

fn merge_sorted(a: Vec<(u64, TupleRef)>, b: Vec<(u64, TupleRef)>) -> Vec<(u64, TupleRef)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let from_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.0 <= y.0,
            (Some(_), None) => true,
            _ => false,
        };
        if from_a {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bftree_storage::DeviceKind;

    fn entries(n: u64) -> impl Iterator<Item = (u64, TupleRef)> {
        (0..n).map(|k| (k, TupleRef::new(k / 16, (k % 16) as usize)))
    }

    #[test]
    fn bulk_build_and_search() {
        let t = FdTree::bulk_build(entries(100_000));
        for k in (0..100_000).step_by(97) {
            let r = t.search(k, None).unwrap_or_else(|| panic!("missing {k}"));
            assert_eq!(r.pid(), k / 16);
        }
        assert!(t.search(100_000, None).is_none());
        assert!(t.search(u64::MAX, None).is_none());
    }

    #[test]
    fn empty_tree() {
        let t = FdTree::bulk_build(std::iter::empty());
        assert!(t.search(1, None).is_none());
        assert_eq!(t.total_pages(), 0);
    }

    #[test]
    fn search_charges_one_read_per_level() {
        let t = FdTree::bulk_build(entries(1_000_000));
        let dev = PageDevice::cold(DeviceKind::Ssd);
        t.search(123_456, Some(&dev));
        assert_eq!(
            dev.snapshot().random_reads,
            t.n_levels() as u64,
            "one page per level"
        );
    }

    #[test]
    fn size_comparable_to_packed_btree() {
        // Fence-only upper levels add a geometric tail over the data
        // pages, like a B+-Tree's internal levels.
        let n = 500_000u64;
        let t = FdTree::bulk_build(entries(n));
        let data_pages = n.div_ceil(256);
        assert!(t.total_pages() >= data_pages);
        assert!(
            t.total_pages() <= data_pages + data_pages / 64 + 10,
            "{} vs {}",
            t.total_pages(),
            data_pages
        );
    }

    #[test]
    fn inserts_go_to_head_then_merge() {
        let mut t = FdTree::new();
        for k in 0..256u64 {
            t.insert(k * 2, TupleRef::new(k, 0));
        }
        assert!(t.head_len() <= 256);
        // Overflow the head.
        for k in 0..512u64 {
            t.insert(k * 2 + 1, TupleRef::new(k, 1));
        }
        assert_eq!(t.n_entries(), 768);
        for k in 0..256u64 {
            assert!(t.search(k * 2, None).is_some(), "missing bulk key {k}");
        }
        for k in 0..512u64 {
            assert!(
                t.search(k * 2 + 1, None).is_some(),
                "missing inserted key {k}"
            );
        }
    }

    #[test]
    fn cascading_merges_preserve_everything() {
        let mut t = FdTree::with_parameters(4096, 64, 4, 32);
        let mut expected = Vec::new();
        let mut state = 7u64;
        for i in 0..5_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = state >> 40;
            t.insert(key, TupleRef::new(i, 0));
            expected.push(key);
        }
        assert!(t.n_levels() >= 2, "should have cascaded");
        for &k in &expected {
            assert!(t.search(k, None).is_some(), "lost key {k}");
        }
    }

    #[test]
    fn search_all_collects_across_levels() {
        let mut t = FdTree::with_parameters(4096, 64, 4, 16);
        // Bulk some dups of key 42 at the bottom, then insert more.
        let mut base: Vec<(u64, TupleRef)> =
            (0..500u64).map(|k| (k, TupleRef::new(k, 0))).collect();
        base.push((42, TupleRef::new(9_000, 0)));
        base.sort_by_key(|e| e.0);
        let mut t2 = FdTree::bulk_build(base);
        t2.insert(42, TupleRef::new(9_001, 0));
        let got = t2.search_all(42, None);
        assert!(got.len() >= 3, "got {got:?}");
        let _ = &mut t;
    }

    #[test]
    fn bulk_build_large_has_multiple_levels() {
        let t = FdTree::bulk_build(entries(4_000_000));
        assert!(t.n_levels() >= 2);
        // Spot-check correctness at scale.
        for k in (0..4_000_000u64).step_by(500_003) {
            assert!(t.search(k, None).is_some());
        }
    }
}
