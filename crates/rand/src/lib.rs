//! Dependency-free, deterministic stand-in for the `rand` crate.
//!
//! The reproduction builds in offline environments, so instead of the
//! real `rand` this tiny crate provides the exact subset the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling helpers (`random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction the real `rand` documents for `SeedableRng::seed_from_u64`
//! — so streams are high-quality and fully reproducible from a `u64`
//! seed, which is all the paper's "same set of search keys in each
//! configuration" requirement needs.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Sample a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Debiased uniform sample in `[0, span)` (Lemire-style rejection).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Sampling conveniences, mirroring the `rand` crate's `Rng` methods.
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        self.random_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
            let x: u64 = rng.random_range(5..=5);
            assert_eq!(x, 5);
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
