//! Behavioural tests of the BF-Tree against heap files, covering
//! Algorithms 1–3, range scans, deletes and the paper's size claims —
//! all through the unified `AccessMethod`/`Relation`/`IoContext`
//! surface.

use bftree::scan::exact_range_pages;
use bftree::{AccessMethod, BfTree, KStrategy, SplitStrategy};
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{
    DeviceKind, Duplicates, HeapFile, IoContext, PageDevice, Relation, TupleLayout,
};

/// The paper's synthetic relation R scaled down: 256 B tuples, unique
/// ordered PK, ATT1 repeating `avgcard` times.
fn synthetic(n: u64, avgcard: u64) -> HeapFile {
    let mut h = HeapFile::new(TupleLayout::new(256));
    for pk in 0..n {
        h.append_record(pk, pk / avgcard);
    }
    h
}

fn pk_relation(n: u64, avgcard: u64) -> Relation {
    Relation::new(synthetic(n, avgcard), PK_OFFSET, Duplicates::Unique).unwrap()
}

#[test]
fn pk_probe_finds_every_key() {
    let rel = pk_relation(50_000, 11);
    let io = IoContext::unmetered();
    let t = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    t.check_invariants();
    for pk in (0..50_000u64).step_by(333) {
        let r = AccessMethod::probe_first(&t, pk, &rel, &io).unwrap();
        assert_eq!(r.matches.len(), 1, "pk {pk}");
        let (pid, slot) = r.matches[0];
        assert_eq!(rel.heap().attr(pid, slot, PK_OFFSET), pk);
    }
}

#[test]
fn negative_probe_outside_key_range_reads_nothing() {
    let rel = pk_relation(10_000, 11);
    let io = IoContext::unmetered();
    let t = BfTree::builder().build(&rel).unwrap();
    let r = AccessMethod::probe(&t, 1_000_000, &rel, &io).unwrap();
    assert!(!r.found());
    assert_eq!(r.pages_read, 0, "key range check must short-circuit");
}

#[test]
fn negative_probe_inside_range_costs_only_false_positives() {
    // Index even PKs only? Not expressible on a heap; instead probe a
    // dense key range where half the keys are absent by building data
    // with stride 2.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..20_000u64 {
        heap.append_record(pk * 2, pk);
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let io = IoContext::unmetered();
    let t = BfTree::builder().fpp(1e-3).build(&rel).unwrap();
    let mut false_reads = 0u64;
    let probes = 2_000u64;
    for i in 0..probes {
        let key = i * 2 + 1; // absent
        let r = AccessMethod::probe(&t, key, &rel, &io).unwrap();
        assert!(!r.found());
        false_reads += r.pages_read;
    }
    // With fpp 1e-3 and ~130 filters per leaf, well under one false
    // read per probe on average.
    assert!(
        (false_reads as f64 / probes as f64) < 1.0,
        "{false_reads} false reads over {probes} probes"
    );
}

#[test]
fn att1_probe_returns_all_duplicates() {
    let rel = Relation::new(synthetic(30_000, 11), ATT1_OFFSET, Duplicates::Contiguous).unwrap();
    let io = IoContext::unmetered();
    let t = BfTree::builder()
        .fpp(1e-6)
        .duplicates(bftree::DuplicateHandling::AllCoveringPages)
        .build(&rel)
        .unwrap();
    t.check_invariants();
    for key in (0..30_000u64 / 11).step_by(97) {
        let r = AccessMethod::probe(&t, key, &rel, &io).unwrap();
        let expected = rel
            .heap()
            .iter_attr(ATT1_OFFSET)
            .filter(|(_, _, v)| *v == key)
            .count();
        assert_eq!(r.matches.len(), expected, "key {key}");
    }
}

#[test]
fn size_is_orders_of_magnitude_below_btree() {
    use bftree_btree::{BPlusTree, BTreeConfig, TupleRef};
    let rel = pk_relation(200_000, 11);
    let bf = BfTree::builder().fpp(0.01).build(&rel).unwrap();
    let bp = BPlusTree::bulk_build(
        BTreeConfig::paper_default(),
        rel.heap()
            .iter_attr(PK_OFFSET)
            .map(|(pid, slot, k)| (k, TupleRef::new(pid, slot))),
    );
    let gain = bp.total_pages() as f64 / bf.total_pages() as f64;
    assert!(gain > 5.0, "capacity gain only {gain:.2}x");
}

#[test]
fn lower_fpp_means_bigger_tree_and_fewer_false_reads() {
    let rel = pk_relation(100_000, 11);
    let io = IoContext::unmetered();
    let mut sizes = Vec::new();
    let mut false_rates = Vec::new();
    for &fpp in &[0.2, 1e-3, 1e-9] {
        let t = BfTree::builder().fpp(fpp).build(&rel).unwrap();
        sizes.push(t.total_pages());
        let mut fr = 0u64;
        for pk in (0..100_000u64).step_by(501) {
            fr += AccessMethod::probe_first(&t, pk, &rel, &io)
                .unwrap()
                .false_reads;
        }
        false_rates.push(fr);
    }
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    assert!(
        false_rates[0] >= false_rates[1] && false_rates[1] >= false_rates[2],
        "{false_rates:?}"
    );
}

#[test]
fn device_charging_follows_algorithm_1() {
    let rel = pk_relation(100_000, 11);
    let t = BfTree::builder().fpp(1e-6).build(&rel).unwrap();
    let io = IoContext::new(
        PageDevice::cold(DeviceKind::Ssd),
        PageDevice::cold(DeviceKind::Hdd),
    );
    let r = AccessMethod::probe_first(&t, 4_242, &rel, &io).unwrap();
    assert!(r.found());
    // Index: upper-structure height + 1 BF-leaf read.
    assert_eq!(io.index.snapshot().random_reads as usize, t.height());
    // Data: exactly the pages the probe reports.
    assert_eq!(io.data.snapshot().device_reads(), r.pages_read);
}

#[test]
fn inserts_into_fresh_tree_are_searchable() {
    let heap = HeapFile::new(TupleLayout::new(256));
    let mut rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let io = IoContext::unmetered();
    let mut t = BfTree::builder().fpp(1e-4).empty(&rel).unwrap();
    for pk in 0..5_000u64 {
        let loc = rel.heap_mut().append_record(pk, pk / 11);
        AccessMethod::insert(&mut t, pk, loc, &rel).unwrap();
    }
    t.check_invariants();
    assert!(t.leaf_pages() > 1, "tree should have split");
    for pk in (0..5_000u64).step_by(97) {
        let r = AccessMethod::probe_first(&t, pk, &rel, &io).unwrap();
        assert_eq!(r.matches.len(), 1, "pk {pk}");
    }
}

#[test]
fn probe_domain_split_matches_rebuild_split_results() {
    // Same insert stream under both strategies must index the same
    // keys (ProbeDomain may add extra false positives, never misses).
    let rel = pk_relation(3_000, 11);
    let io = IoContext::unmetered();
    let builder = BfTree::builder().fpp(1e-3);
    let mut rebuild = builder
        .clone()
        .split(SplitStrategy::RebuildFromData)
        .empty(&rel)
        .unwrap();
    let mut probing = builder
        .split(SplitStrategy::ProbeDomain)
        .empty(&rel)
        .unwrap();
    for (pid, slot, pk) in rel.heap().iter_attr(PK_OFFSET) {
        AccessMethod::insert(&mut rebuild, pk, (pid, slot), &rel).unwrap();
        probing.insert(pk, pid, None, PK_OFFSET);
    }
    rebuild.check_invariants();
    probing.check_invariants();
    for pk in (0..3_000u64).step_by(41) {
        assert!(
            AccessMethod::probe_first(&rebuild, pk, &rel, &io)
                .unwrap()
                .found(),
            "rebuild lost {pk}"
        );
        assert!(
            AccessMethod::probe_first(&probing, pk, &rel, &io)
                .unwrap()
                .found(),
            "probing lost {pk}"
        );
    }
}

#[test]
fn delete_tombstones_then_rebuild() {
    let rel = pk_relation(5_000, 11);
    let io = IoContext::unmetered();
    let mut t = BfTree::builder().fpp(1e-6).build(&rel).unwrap();
    assert!(AccessMethod::probe_first(&t, 100, &rel, &io)
        .unwrap()
        .found());
    assert!(AccessMethod::delete(&mut t, 100, &rel).unwrap() > 0);
    let r = AccessMethod::probe_first(&t, 100, &rel, &io).unwrap();
    assert!(!r.found(), "tombstoned key still matches");
    assert!(
        r.false_reads > 0,
        "deleted key's pages count as false reads"
    );
    // Rebuild drops the tombstone from the filters entirely.
    t.rebuild_leaf(0, rel.heap(), PK_OFFSET);
    let r = AccessMethod::probe_first(&t, 100, &rel, &io).unwrap();
    assert!(!r.found());
    t.check_invariants();
}

#[test]
fn range_scan_finds_exact_matches_with_bounded_overhead() {
    let rel = pk_relation(50_000, 1);
    let io = IoContext::unmetered();
    let t = BfTree::builder().fpp(1e-6).build(&rel).unwrap();
    let (lo, hi) = (10_000u64, 20_000u64);
    let r = AccessMethod::range_scan(&t, lo, hi, &rel, &io).unwrap();
    assert_eq!(r.matches.len() as u64, hi - lo + 1);
    let exact = exact_range_pages(rel.heap(), PK_OFFSET, lo, hi);
    assert!(r.pages_read >= exact);
    // Boundary overhead is at most two partitions' worth of pages.
    let max_leaf_pages = t.leaves().iter().map(|l| l.n_pages()).max().unwrap_or(0);
    assert!(
        r.pages_read - exact <= 2 * max_leaf_pages,
        "overhead {} pages",
        r.pages_read - exact
    );
}

#[test]
fn probing_range_scan_cuts_boundary_overhead() {
    let rel = pk_relation(50_000, 1);
    let io = IoContext::unmetered();
    let t = BfTree::builder().fpp(1e-8).build(&rel).unwrap();
    let (lo, hi) = (10_100u64, 10_300u64); // well inside one partition
    let plain = AccessMethod::range_scan(&t, lo, hi, &rel, &io).unwrap();
    let probed = t.scan_range_probing(lo, hi, &rel, &io, 1 << 16);
    assert_eq!(plain.matches, probed.matches);
    assert!(
        probed.pages_read <= plain.pages_read,
        "probing {} vs plain {}",
        probed.pages_read,
        plain.pages_read
    );
}

#[test]
fn range_scan_spanning_everything() {
    let rel = pk_relation(10_000, 11);
    let io = IoContext::unmetered();
    let t = BfTree::builder().build(&rel).unwrap();
    let r = AccessMethod::range_scan(&t, 0, u64::MAX, &rel, &io).unwrap();
    assert_eq!(r.matches.len() as u64, rel.heap().tuple_count());
    assert_eq!(r.pages_read, rel.heap().page_count());
    assert_eq!(r.overhead_pages, 0);
}

#[test]
fn granularity_knob_trades_filters_for_fetch_width() {
    let rel = pk_relation(100_000, 11);
    let io = IoContext::unmetered();
    let fine = BfTree::builder()
        .fpp(1e-4)
        .pages_per_bf(1)
        .build(&rel)
        .unwrap();
    let coarse = BfTree::builder()
        .fpp(1e-4)
        .pages_per_bf(8)
        .build(&rel)
        .unwrap();
    let mut fine_pages = 0u64;
    let mut coarse_pages = 0u64;
    for pk in (0..100_000u64).step_by(997) {
        fine_pages += AccessMethod::probe(&fine, pk, &rel, &io)
            .unwrap()
            .pages_read;
        coarse_pages += AccessMethod::probe(&coarse, pk, &rel, &io)
            .unwrap()
            .pages_read;
    }
    assert!(
        coarse_pages > fine_pages * 4,
        "coarse {coarse_pages} vs fine {fine_pages}"
    );
}

#[test]
fn fixed_k3_matches_paper_prototype_behaviour() {
    let rel = pk_relation(50_000, 11);
    let io = IoContext::unmetered();
    let t = BfTree::builder()
        .fpp(0.01)
        .k_strategy(KStrategy::Fixed(3))
        .build(&rel)
        .unwrap();
    for pk in (0..50_000u64).step_by(479) {
        assert!(AccessMethod::probe_first(&t, pk, &rel, &io)
            .unwrap()
            .found());
    }
}

#[test]
fn warm_index_cache_absorbs_internal_reads() {
    use bftree_storage::{CacheMode, DeviceProfile};
    let rel = pk_relation(100_000, 11);
    let t = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    let io = IoContext::new(
        PageDevice::new(DeviceProfile::ssd(), CacheMode::Lru(1 << 20)),
        PageDevice::cold(DeviceKind::Memory),
    );
    io.prewarm_index(t.upper_page_ids());
    let r = AccessMethod::probe_first(&t, 55_555, &rel, &io).unwrap();
    assert!(r.found());
    // Only the BF-leaf itself misses the cache.
    assert_eq!(io.index.snapshot().random_reads, 1);
}

#[test]
fn empty_tree_probes_cleanly() {
    let heap = HeapFile::new(TupleLayout::new(256));
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let io = IoContext::unmetered();
    let t = BfTree::builder().empty(&rel).unwrap();
    let r = AccessMethod::probe(&t, 7, &rel, &io).unwrap();
    assert!(!r.found());
    assert_eq!(r.pages_read, 0);
}

/// Rebuilding via the trait replaces the tree's contents with the
/// relation's current state.
#[test]
fn trait_build_refreshes_after_appends() {
    let mut rel = pk_relation(1_000, 11);
    let io = IoContext::unmetered();
    let mut t = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    assert!(!AccessMethod::probe(&t, 1_500, &rel, &io).unwrap().found());
    for pk in 1_000..2_000u64 {
        rel.heap_mut().append_record(pk, pk / 11);
    }
    AccessMethod::build(&mut t, &rel).unwrap();
    assert!(AccessMethod::probe(&t, 1_500, &rel, &io).unwrap().found());
}
