//! Behavioural tests of the BF-Tree against heap files, covering
//! Algorithms 1–3, range scans, deletes and the paper's size claims.

use bftree::scan::exact_range_pages;
use bftree::{BfTree, BfTreeConfig, KStrategy, SplitStrategy};
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{DeviceKind, HeapFile, SimDevice, TupleLayout};

/// The paper's synthetic relation R scaled down: 256 B tuples, unique
/// ordered PK, ATT1 repeating `avgcard` times.
fn synthetic(n: u64, avgcard: u64) -> HeapFile {
    let mut h = HeapFile::new(TupleLayout::new(256));
    for pk in 0..n {
        h.append_record(pk, pk / avgcard);
    }
    h
}

#[test]
fn pk_probe_finds_every_key() {
    let heap = synthetic(50_000, 11);
    let cfg = BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::paper_default() };
    let t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    t.check_invariants();
    for pk in (0..50_000u64).step_by(333) {
        let r = t.probe_first(pk, &heap, PK_OFFSET, None, None);
        assert_eq!(r.matches.len(), 1, "pk {pk}");
        let (pid, slot) = r.matches[0];
        assert_eq!(heap.attr(pid, slot, PK_OFFSET), pk);
    }
}

#[test]
fn negative_probe_outside_key_range_reads_nothing() {
    let heap = synthetic(10_000, 11);
    let t = BfTree::bulk_build(BfTreeConfig::paper_default(), &heap, PK_OFFSET);
    let r = t.probe(1_000_000, &heap, PK_OFFSET, None, None);
    assert!(!r.found());
    assert_eq!(r.pages_read, 0, "key range check must short-circuit");
}

#[test]
fn negative_probe_inside_range_costs_only_false_positives() {
    // Index even PKs only? Not expressible on a heap; instead probe a
    // dense key range where half the keys are absent by building data
    // with stride 2.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..20_000u64 {
        heap.append_record(pk * 2, pk);
    }
    let cfg = BfTreeConfig { fpp: 1e-3, ..BfTreeConfig::paper_default() };
    let t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    let mut false_reads = 0u64;
    let probes = 2_000u64;
    for i in 0..probes {
        let key = i * 2 + 1; // absent
        let r = t.probe(key, &heap, PK_OFFSET, None, None);
        assert!(!r.found());
        false_reads += r.pages_read;
    }
    // With fpp 1e-3 and ~130 filters per leaf, well under one false
    // read per probe on average.
    assert!(
        (false_reads as f64 / probes as f64) < 1.0,
        "{false_reads} false reads over {probes} probes"
    );
}

#[test]
fn att1_probe_returns_all_duplicates() {
    let heap = synthetic(30_000, 11);
    let cfg = BfTreeConfig { fpp: 1e-6, ..BfTreeConfig::paper_default() };
    let t = BfTree::bulk_build(cfg, &heap, ATT1_OFFSET);
    t.check_invariants();
    for key in (0..30_000u64 / 11).step_by(97) {
        let r = t.probe(key, &heap, ATT1_OFFSET, None, None);
        let expected = heap
            .iter_attr(ATT1_OFFSET)
            .filter(|(_, _, v)| *v == key)
            .count();
        assert_eq!(r.matches.len(), expected, "key {key}");
    }
}

#[test]
fn size_is_orders_of_magnitude_below_btree() {
    use bftree_btree::{BPlusTree, BTreeConfig, TupleRef};
    let heap = synthetic(200_000, 11);
    let bf = BfTree::bulk_build(
        BfTreeConfig { fpp: 0.01, ..BfTreeConfig::paper_default() },
        &heap,
        PK_OFFSET,
    );
    let bp = BPlusTree::bulk_build(
        BTreeConfig::paper_default(),
        heap.iter_attr(PK_OFFSET)
            .map(|(pid, slot, k)| (k, TupleRef::new(pid, slot))),
    );
    let gain = bp.total_pages() as f64 / bf.total_pages() as f64;
    assert!(gain > 5.0, "capacity gain only {gain:.2}x");
}

#[test]
fn lower_fpp_means_bigger_tree_and_fewer_false_reads() {
    let heap = synthetic(100_000, 11);
    let mut sizes = Vec::new();
    let mut false_rates = Vec::new();
    for &fpp in &[0.2, 1e-3, 1e-9] {
        let t = BfTree::bulk_build(
            BfTreeConfig { fpp, ..BfTreeConfig::paper_default() },
            &heap,
            PK_OFFSET,
        );
        sizes.push(t.total_pages());
        let mut fr = 0u64;
        for pk in (0..100_000u64).step_by(501) {
            fr += t.probe_first(pk, &heap, PK_OFFSET, None, None).false_reads;
        }
        false_rates.push(fr);
    }
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    assert!(false_rates[0] >= false_rates[1] && false_rates[1] >= false_rates[2],
        "{false_rates:?}");
}

#[test]
fn device_charging_follows_algorithm_1() {
    let heap = synthetic(100_000, 11);
    let cfg = BfTreeConfig { fpp: 1e-6, ..BfTreeConfig::paper_default() };
    let t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    let idx = SimDevice::cold(DeviceKind::Ssd);
    let data = SimDevice::cold(DeviceKind::Hdd);
    let r = t.probe_first(4_242, &heap, PK_OFFSET, Some(&idx), Some(&data));
    assert!(r.found());
    // Index: upper-structure height + 1 BF-leaf read.
    assert_eq!(idx.snapshot().random_reads as usize, t.height());
    // Data: exactly the pages the probe reports.
    assert_eq!(data.snapshot().device_reads(), r.pages_read);
}

#[test]
fn inserts_into_fresh_tree_are_searchable() {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    let cfg = BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::paper_default() };
    let mut t = BfTree::new(cfg);
    for pk in 0..5_000u64 {
        let (pid, _) = heap.append_record(pk, pk / 11);
        t.insert(pk, pid, Some(&heap), PK_OFFSET);
    }
    t.check_invariants();
    assert!(t.leaf_pages() > 1, "tree should have split");
    for pk in (0..5_000u64).step_by(97) {
        let r = t.probe_first(pk, &heap, PK_OFFSET, None, None);
        assert_eq!(r.matches.len(), 1, "pk {pk}");
    }
}

#[test]
fn probe_domain_split_matches_rebuild_split_results() {
    // Same insert stream under both strategies must index the same
    // keys (ProbeDomain may add extra false positives, never misses).
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..3_000u64 {
        heap.append_record(pk, pk / 11);
    }
    let base = BfTreeConfig { fpp: 1e-3, ..BfTreeConfig::paper_default() };
    let mut rebuild = BfTree::new(BfTreeConfig { split: SplitStrategy::RebuildFromData, ..base });
    let mut probing = BfTree::new(BfTreeConfig { split: SplitStrategy::ProbeDomain, ..base });
    for (pid, slot, pk) in heap.iter_attr(PK_OFFSET) {
        let _ = slot;
        rebuild.insert(pk, pid, Some(&heap), PK_OFFSET);
        probing.insert(pk, pid, None, PK_OFFSET);
    }
    rebuild.check_invariants();
    probing.check_invariants();
    for pk in (0..3_000u64).step_by(41) {
        assert!(rebuild.probe_first(pk, &heap, PK_OFFSET, None, None).found(), "rebuild lost {pk}");
        assert!(probing.probe_first(pk, &heap, PK_OFFSET, None, None).found(), "probing lost {pk}");
    }
}

#[test]
fn delete_tombstones_then_rebuild() {
    let heap = synthetic(5_000, 11);
    let cfg = BfTreeConfig { fpp: 1e-6, ..BfTreeConfig::paper_default() };
    let mut t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    assert!(t.probe_first(100, &heap, PK_OFFSET, None, None).found());
    assert!(t.delete(100) > 0);
    let r = t.probe_first(100, &heap, PK_OFFSET, None, None);
    assert!(!r.found(), "tombstoned key still matches");
    assert!(r.false_reads > 0, "deleted key's pages count as false reads");
    // Rebuild drops the tombstone from the filters entirely.
    t.rebuild_leaf(0, &heap, PK_OFFSET);
    let r = t.probe_first(100, &heap, PK_OFFSET, None, None);
    assert!(!r.found());
    t.check_invariants();
}

#[test]
fn range_scan_finds_exact_matches_with_bounded_overhead() {
    let heap = synthetic(50_000, 1);
    let cfg = BfTreeConfig { fpp: 1e-6, ..BfTreeConfig::paper_default() };
    let t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    let (lo, hi) = (10_000u64, 20_000u64);
    let r = t.range_scan(lo, hi, &heap, PK_OFFSET, None, None);
    assert_eq!(r.matches.len() as u64, hi - lo + 1);
    let exact = exact_range_pages(&heap, PK_OFFSET, lo, hi);
    assert!(r.pages_read >= exact);
    // Boundary overhead is at most two partitions' worth of pages.
    let max_leaf_pages = t.leaves().iter().map(|l| l.n_pages()).max().unwrap_or(0);
    assert!(
        r.pages_read - exact <= 2 * max_leaf_pages,
        "overhead {} pages",
        r.pages_read - exact
    );
}

#[test]
fn probing_range_scan_cuts_boundary_overhead() {
    let heap = synthetic(50_000, 1);
    let cfg = BfTreeConfig { fpp: 1e-8, ..BfTreeConfig::paper_default() };
    let t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    let (lo, hi) = (10_100u64, 10_300u64); // well inside one partition
    let plain = t.range_scan(lo, hi, &heap, PK_OFFSET, None, None);
    let probed = t.range_scan_probing(lo, hi, &heap, PK_OFFSET, None, None, 1 << 16);
    assert_eq!(plain.matches, probed.matches);
    assert!(
        probed.pages_read <= plain.pages_read,
        "probing {} vs plain {}",
        probed.pages_read,
        plain.pages_read
    );
}

#[test]
fn range_scan_spanning_everything() {
    let heap = synthetic(10_000, 11);
    let t = BfTree::bulk_build(BfTreeConfig::paper_default(), &heap, PK_OFFSET);
    let r = t.range_scan(0, u64::MAX, &heap, PK_OFFSET, None, None);
    assert_eq!(r.matches.len() as u64, heap.tuple_count());
    assert_eq!(r.pages_read, heap.page_count());
    assert_eq!(r.overhead_pages, 0);
}

#[test]
fn granularity_knob_trades_filters_for_fetch_width() {
    let heap = synthetic(100_000, 11);
    let fine = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-4, pages_per_bf: 1, ..BfTreeConfig::paper_default() },
        &heap,
        PK_OFFSET,
    );
    let coarse = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-4, pages_per_bf: 8, ..BfTreeConfig::paper_default() },
        &heap,
        PK_OFFSET,
    );
    let mut fine_pages = 0u64;
    let mut coarse_pages = 0u64;
    for pk in (0..100_000u64).step_by(997) {
        fine_pages += fine.probe(pk, &heap, PK_OFFSET, None, None).pages_read;
        coarse_pages += coarse.probe(pk, &heap, PK_OFFSET, None, None).pages_read;
    }
    assert!(
        coarse_pages > fine_pages * 4,
        "coarse {coarse_pages} vs fine {fine_pages}"
    );
}

#[test]
fn fixed_k3_matches_paper_prototype_behaviour() {
    let heap = synthetic(50_000, 11);
    let cfg = BfTreeConfig {
        fpp: 0.01,
        k_strategy: KStrategy::Fixed(3),
        ..BfTreeConfig::paper_default()
    };
    let t = BfTree::bulk_build(cfg, &heap, PK_OFFSET);
    for pk in (0..50_000u64).step_by(479) {
        assert!(t.probe_first(pk, &heap, PK_OFFSET, None, None).found());
    }
}

#[test]
fn warm_index_cache_absorbs_internal_reads() {
    use bftree_storage::{CacheMode, DeviceProfile};
    let heap = synthetic(100_000, 11);
    let t = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::paper_default() },
        &heap,
        PK_OFFSET,
    );
    let idx = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(1 << 20));
    idx.prewarm(t.upper_page_ids());
    let r = t.probe_first(55_555, &heap, PK_OFFSET, Some(&idx), None);
    assert!(r.found());
    // Only the BF-leaf itself misses the cache.
    assert_eq!(idx.snapshot().random_reads, 1);
}

#[test]
fn empty_tree_probes_cleanly() {
    let heap = HeapFile::new(TupleLayout::new(256));
    let t = BfTree::new(BfTreeConfig::paper_default());
    let r = t.probe(7, &heap, PK_OFFSET, None, None);
    assert!(!r.found());
    assert_eq!(r.pages_read, 0);
}
