//! The BF-Tree: bulk load, search (Algorithm 1), insert (Algorithm 3),
//! split (Algorithm 2), delete.

use std::collections::HashSet;
use std::ops::ControlFlow;

use bftree_access::MatchSink;
use bftree_bloom::hash::KeyFingerprint;
use bftree_btree::{BPlusTree, BTreeConfig, DuplicateMode, TupleRef};
use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, PageDevice, PageId};

use crate::config::{BfTreeConfig, DuplicateHandling, SplitStrategy};
use crate::leaf::BfLeaf;
use crate::stats::ProbeResult;

/// Reusable buffers for the probe pipeline.
///
/// Every BF-Tree probe needs a handful of small vectors (matching
/// buckets, candidate pages, matching slots, candidate leaves); at
/// millions of probes per second, allocating them per probe dominates
/// the data path. One `ProbeScratch` threaded through the scalar and
/// batched probe implementations makes the whole
/// pipeline allocation-free once the buffers have grown to the
/// workload's high-water mark. The `AccessMethod` entry points keep one
/// per thread; harnesses driving the `pub(crate)` internals directly
/// construct their own with `Default`.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Matching bucket indices of one leaf sweep.
    buckets: Vec<usize>,
    /// Candidate data pages of one `(key, leaf)` pair.
    pages: Vec<PageId>,
    /// Matching slots within one fetched heap page.
    slots: Vec<usize>,
    /// Candidate leaves of the key under probe.
    candidates: Vec<u32>,
    /// Batch sort permutation as packed `key << 32 | position` words —
    /// sorting primitives beats an indirect `sort_by_key` (no key
    /// lookups inside the comparator), and the low 32 bits recover the
    /// input slot (batched probes only).
    order: Vec<u128>,
    /// One fingerprint per batch key, hashed in a single tight pass
    /// (batched probes only).
    fps: Vec<KeyFingerprint>,
    /// In-flight probes of the batched pipeline (batched probes only).
    pipeline: Vec<PendingProbe>,
}

/// One in-flight probe of the batched pipeline: its candidate pages
/// have been discovered (and prefetched) but not yet scanned.
#[derive(Debug, Default)]
struct PendingProbe {
    /// Position in the input batch (results come out in input order).
    slot: u32,
    /// The key under probe.
    key: u64,
    /// Per-candidate-leaf segments `(leaf, start, end)` into `pages`.
    segs: Vec<(u32, u32, u32)>,
    /// Candidate data pages, ascending within each segment.
    pages: Vec<PageId>,
    /// Pre-resolved binary-search windows, aligned with `pages`
    /// (ordered heaps only; empty otherwise). Filled by the pipeline's
    /// narrowing step, which runs once the pages' probe lines are
    /// warm, so the final scan reads only prefetched lines.
    windows: Vec<(u32, u32)>,
    /// Accumulated counters/matches for this probe.
    result: ProbeResult,
}

/// Index-device page-id base for BF-leaves (upper-structure nodes use
/// their arena ids directly, so the two spaces never collide).
const LEAF_PAGE_BASE: u64 = 1 << 40;

/// Largest key-domain span `ProbeDomain` splits will enumerate.
const PROBE_DOMAIN_SPAN_CAP: u64 = 1 << 22;

/// Per-page distinct-key lists for the two sides of a leaf split.
type SplitSides = (Vec<(PageId, Vec<u64>)>, Vec<(PageId, Vec<u64>)>);

/// The BF-Tree (§4).
///
/// Internal routing reuses the B+-Tree machinery ("the code-base of the
/// B+-Tree ... serves as the part of the BF-Tree above the leaves",
/// §6): a [`BPlusTree`] maps each BF-leaf's `min_key` to the leaf's
/// arena index. Probes land on the *floor* entry — the rightmost leaf
/// whose key range can contain the key — then walk left siblings while
/// a duplicate run spans leaves.
#[derive(Debug, Clone)]
pub struct BfTree {
    config: BfTreeConfig,
    leaves: Vec<BfLeaf>,
    upper: BPlusTree,
    first_leaf: u32,
}

impl BfTree {
    /// Bulk-load a BF-Tree over `heap`, indexing attribute `attr`, on
    /// which the heap must be ordered or partitioned.
    ///
    /// One pass over the data packs BF-leaves up to
    /// [`BfTreeConfig::max_keys_per_leaf`] distinct keys each (leaf
    /// boundaries align to page boundaries); a second pass over the
    /// leaf level builds the internal structure — exactly the paper's
    /// two-pass bulk load (§4.2).
    pub fn bulk_build(config: BfTreeConfig, heap: &HeapFile, attr: AttrOffset) -> Self {
        config.validate();
        let max_keys = config.max_keys_per_leaf();

        let mut leaves: Vec<BfLeaf> = Vec::new();
        let mut pending: Vec<(PageId, Vec<u64>)> = Vec::new();
        let mut pending_distinct: HashSet<u64> = HashSet::new();

        let close_leaf = |pending: &mut Vec<(PageId, Vec<u64>)>,
                          pending_distinct: &mut HashSet<u64>,
                          leaves: &mut Vec<BfLeaf>| {
            if pending.is_empty() {
                return;
            }
            let leaf = BfLeaf::from_pages(&config, pending, pending_distinct.len() as u64);
            leaves.push(leaf);
            pending.clear();
            pending_distinct.clear();
        };

        for pid in 0..heap.page_count() {
            let mut keys: Vec<u64> = (0..heap.tuples_in_page(pid))
                .map(|slot| heap.attr(pid, slot, attr))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            let new_keys = keys
                .iter()
                .filter(|k| !pending_distinct.contains(k))
                .count() as u64;
            if !pending.is_empty() && pending_distinct.len() as u64 + new_keys > max_keys {
                close_leaf(&mut pending, &mut pending_distinct, &mut leaves);
            }
            if config.duplicates == DuplicateHandling::FirstPageOnly {
                // Only a key's first covering page enters the filters;
                // probes scan the contiguous run forward from there.
                keys.retain(|k| !pending_distinct.contains(k));
            }
            pending_distinct.extend(keys.iter().copied());
            pending.push((pid, keys));
        }
        close_leaf(&mut pending, &mut pending_distinct, &mut leaves);

        if leaves.is_empty() {
            leaves.push(BfLeaf::empty(&config, 0));
        }

        // Chain siblings.
        for i in 0..leaves.len() {
            if i + 1 < leaves.len() {
                leaves[i].next = Some((i + 1) as u32);
            }
            if i > 0 {
                leaves[i].prev = Some((i - 1) as u32);
            }
        }

        let upper = Self::build_upper(&config, &leaves);
        Self {
            config,
            leaves,
            upper,
            first_leaf: 0,
        }
    }

    /// An empty BF-Tree ready for inserts (§4.2: "The initial node of
    /// the BF-Tree is a BF node").
    pub fn new(config: BfTreeConfig) -> Self {
        config.validate();
        let leaves = vec![BfLeaf::empty(&config, 0)];
        let upper = Self::build_upper(&config, &leaves);
        Self {
            config,
            leaves,
            upper,
            first_leaf: 0,
        }
    }

    fn build_upper(config: &BfTreeConfig, leaves: &[BfLeaf]) -> BPlusTree {
        let btcfg = BTreeConfig {
            page_size: config.page_size,
            key_size: config.key_size,
            ptr_size: config.ptr_size,
            fill_factor: 1.0,
            duplicates: DuplicateMode::PerTuple,
        };
        // Routing keys must be non-decreasing; bulk leaves are built in
        // page order and the heap is ordered/partitioned on the key, so
        // min_keys ascend. Empty leaves route at key 0.
        let entries = leaves.iter().enumerate().map(|(i, l)| {
            let key = if l.n_keys == 0 { 0 } else { l.min_key };
            (key, TupleRef::new(i as u64, 0))
        });
        BPlusTree::bulk_build(btcfg, entries)
    }

    /// Tree configuration.
    pub fn config(&self) -> &BfTreeConfig {
        &self.config
    }

    /// Number of BF-leaves (the paper's `BFleaves`).
    pub fn leaf_pages(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Pages of the internal structure above the leaves.
    pub fn internal_pages(&self) -> u64 {
        self.upper.total_pages()
    }

    /// Total index pages (Equation 10's `BFsize / pagesize`).
    pub fn total_pages(&self) -> u64 {
        self.leaf_pages() + self.internal_pages()
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_pages() * self.config.page_size as u64
    }

    /// Height including the BF-leaf level (Equation 7's `BFh`).
    pub fn height(&self) -> usize {
        self.upper.height() + 1
    }

    /// Total distinct keys indexed across leaves.
    pub fn n_keys(&self) -> u64 {
        self.leaves.iter().map(|l| l.n_keys).sum()
    }

    /// Access a leaf by arena index (tests, harness introspection).
    pub fn leaf(&self, idx: u32) -> &BfLeaf {
        &self.leaves[idx as usize]
    }

    /// Index-device page id of leaf `idx`.
    pub fn leaf_page_id(idx: u32) -> u64 {
        LEAF_PAGE_BASE | idx as u64
    }

    /// Index-device page ids of the structure above the leaves (for
    /// warm-cache prewarming).
    pub fn upper_page_ids(&self) -> Vec<u64> {
        self.upper.all_node_ids()
    }

    /// Index-device page ids of every node including leaves.
    pub fn all_page_ids(&self) -> Vec<u64> {
        let mut ids = self.upper.all_node_ids();
        ids.extend((0..self.leaves.len() as u32).map(Self::leaf_page_id));
        ids
    }

    /// The leaves (left-to-right arena order).
    pub fn leaves(&self) -> &[BfLeaf] {
        &self.leaves
    }

    /// Candidate leaves for `key`: the floor leaf plus left siblings
    /// while a duplicate run spans leaves, in left-to-right order.
    pub(crate) fn candidate_leaves(&self, key: u64, idx_dev: Option<&PageDevice>) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidate_leaves_into(key, idx_dev, &mut out);
        out
    }

    /// [`Self::candidate_leaves`] into a reused buffer.
    pub(crate) fn candidate_leaves_into(
        &self,
        key: u64,
        idx_dev: Option<&PageDevice>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        if let Some((_, tref)) = self.upper.search_le(key, idx_dev) {
            self.push_candidates(tref.pid() as u32, key, out);
        }
    }

    /// Expand the floor leaf `idx` to the full candidate list: left
    /// siblings join while a duplicate run spans leaves; the list comes
    /// out in left-to-right order.
    fn push_candidates(&self, idx: u32, key: u64, out: &mut Vec<u32>) {
        let mut idx = idx;
        out.push(idx);
        while let Some(prev) = self.leaves[idx as usize].prev {
            let pl = &self.leaves[prev as usize];
            if pl.n_keys > 0 && pl.max_key >= key {
                out.push(prev);
                idx = prev;
            } else {
                break;
            }
        }
        out.reverse();
    }

    /// Algorithm 1: probe for `key`, returning every matching tuple.
    ///
    /// Thin materializing wrapper over [`Self::probe_sink_impl`] with
    /// a collect-everything sink; identical I/O by construction. Kept
    /// for the in-crate equivalence tests (the trait path streams
    /// through the sink form instead).
    #[cfg_attr(not(test), allow(dead_code))]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_impl(
        &self,
        key: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&PageDevice>,
        data_dev: Option<&PageDevice>,
        stop_at_first: bool,
        scratch: &mut ProbeScratch,
    ) -> ProbeResult {
        let mut matches: Vec<(PageId, usize)> = Vec::new();
        let mut result = self.probe_sink_impl(
            key,
            heap,
            attr,
            idx_dev,
            data_dev,
            stop_at_first,
            scratch,
            &mut matches,
        );
        result.matches = matches;
        result
    }

    /// Algorithm 1 as a streaming core: every match is pushed into
    /// `sink` the moment its page has been scanned, and the probe
    /// stops charging I/O the moment the sink breaks (or, with
    /// `stop_at_first`, after the first matching page).
    ///
    /// Charges index reads (internal descent + one read per BF-leaf
    /// visited) to `idx_dev` and data-page fetches to `data_dev`
    /// (sorted batch: adjacent pages at sequential cost, as the
    /// paper's Equation 13 models). `scratch` supplies the working
    /// buffers, so the path allocates nothing once they are warm. The
    /// public entry points are `AccessMethod::probe_into` /
    /// `probe` / `probe_first` over a `Relation` and an `IoContext`.
    /// The returned [`ProbeResult`] carries the counters; its
    /// `matches` vector stays empty (the sink received them).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_sink_impl(
        &self,
        key: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&PageDevice>,
        data_dev: Option<&PageDevice>,
        stop_at_first: bool,
        scratch: &mut ProbeScratch,
        sink: &mut dyn MatchSink,
    ) -> ProbeResult {
        let mut result = ProbeResult::default();
        let fp = KeyFingerprint::new(&key, self.config.seed);
        let mut candidates = std::mem::take(&mut scratch.candidates);
        self.candidate_leaves_into(key, idx_dev, &mut candidates);
        for &leaf_idx in &candidates {
            let flow = self.probe_leaf(
                key,
                &fp,
                leaf_idx,
                heap,
                attr,
                idx_dev,
                data_dev,
                stop_at_first,
                scratch,
                sink,
                &mut result,
            );
            if flow.is_break() {
                break;
            }
        }
        scratch.candidates = candidates;
        result
    }

    /// Keys in flight between candidate-page discovery and the heap
    /// scan. Enough distance to hide DRAM latency behind the filter
    /// sweeps of the keys in between; small enough that the prefetched
    /// pages (window × ~1 page) sit comfortably in L1/L2.
    const PIPELINE_WINDOW: usize = 5;

    /// Batched Algorithm 1: probe every key of `keys`, returning one
    /// [`ProbeResult`] per key **in input order**.
    ///
    /// The batch is processed in sorted key order through a two-stage
    /// software pipeline, which is where it wins its throughput
    /// without touching the cost model:
    ///
    /// * each key is hashed **once** into a [`KeyFingerprint`] and the
    ///   same fingerprint sweeps every candidate leaf;
    /// * the upper-structure descent is amortized through a
    ///   [`bftree_btree::FloorCursor`] — runs of keys routing to the
    ///   same BF-leaf skip the re-descent while charging the identical
    ///   index reads;
    /// * consecutive keys sweep the same leaf's filter block while it
    ///   is CPU-cache-hot, and their candidate pages emerge
    ///   left-to-right, one deduplicated ascending run per leaf;
    /// * stage one collects each key's candidate pages and issues
    ///   hardware prefetches for them; the heap scan runs a
    ///   `PIPELINE_WINDOW`-key window later, after DRAM has had the
    ///   sweeps of the intervening keys to deliver the lines;
    /// * `scratch` makes the whole walk allocation-free.
    ///
    /// Every key is still *charged* exactly as if probed alone (the
    /// `AccessMethod::probe_batch` contract), so batch and scalar runs
    /// report bit-identical `IoStats` totals on cold devices.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn probe_batch_impl(
        &self,
        keys: &[u64],
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&PageDevice>,
        data_dev: Option<&PageDevice>,
        scratch: &mut ProbeScratch,
    ) -> Vec<ProbeResult> {
        // Thin materializing wrapper over `probe_batch_each`, kept for
        // the in-crate equivalence tests (the trait path streams
        // through the sink form instead).
        let mut results: Vec<ProbeResult> = Vec::with_capacity(keys.len());
        results.resize_with(keys.len(), ProbeResult::default);
        self.probe_batch_each(keys, heap, attr, idx_dev, data_dev, scratch, |slot, r| {
            results[slot] = r;
        });
        results
    }

    /// [`Self::probe_batch_impl`] delivering each finished probe to
    /// `sink(input_position, result)` instead of materializing an
    /// intermediate vector — the `AccessMethod::probe_batch` override
    /// converts straight into its output buffer, saving one full pass
    /// over the batch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_batch_each(
        &self,
        keys: &[u64],
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&PageDevice>,
        data_dev: Option<&PageDevice>,
        scratch: &mut ProbeScratch,
        mut sink: impl FnMut(usize, ProbeResult),
    ) {
        assert!(u32::try_from(keys.len()).is_ok(), "batch too large");
        let mut order = std::mem::take(&mut scratch.order);
        order.clear();
        order.extend(
            keys.iter()
                .enumerate()
                .map(|(i, &key)| (key as u128) << 32 | i as u128),
        );
        order.sort_unstable();

        // Hash every key once, in one pass: the two 8-byte hashes per
        // key have short dependency chains, so a dedicated loop lets
        // the core overlap several keys' hashing.
        let mut fps = std::mem::take(&mut scratch.fps);
        fps.clear();
        fps.extend(
            order
                .iter()
                .map(|&v| KeyFingerprint::new(&((v >> 32) as u64), self.config.seed)),
        );

        let mut pipeline = std::mem::take(&mut scratch.pipeline);
        let window = Self::PIPELINE_WINDOW.min(keys.len()).max(1);
        pipeline.resize_with(window, PendingProbe::default);

        let mut cursor = self.upper.floor_cursor();
        let mut candidates = std::mem::take(&mut scratch.candidates);
        for j in 0..order.len() + window {
            // Stage two: the key that entered the pipeline one window
            // ago has had its pages prefetched — scan them now.
            if j >= window {
                let entry = &mut pipeline[(j - window) % window];
                let PendingProbe {
                    key,
                    segs,
                    pages,
                    windows,
                    result,
                    slot,
                } = entry;
                let resolved = windows.len() == pages.len();
                // The batch contract materializes every match, so the
                // per-key sink is the result's own vector (taken out
                // to satisfy the borrow checker); it never breaks.
                let mut collected = std::mem::take(&mut result.matches);
                for &(leaf_idx, start, end) in segs.iter() {
                    let leaf = &self.leaves[leaf_idx as usize];
                    let (start, end) = (start as usize, end as usize);
                    let flow = self.probe_leaf_data(
                        *key,
                        leaf,
                        &pages[start..end],
                        resolved.then(|| &windows[start..end]),
                        heap,
                        attr,
                        data_dev,
                        false,
                        true,
                        &mut scratch.slots,
                        &mut collected,
                        result,
                    );
                    debug_assert!(flow.is_continue(), "vec sinks never break");
                }
                result.matches = collected;
                sink(*slot as usize, std::mem::take(result));
            }
            // Stage one: route the next key, sweep its candidate
            // leaves, and prefetch the pages the sweep names.
            if j < order.len() {
                let packed = order[j];
                let i = packed as u32;
                let key = (packed >> 32) as u64;
                let fp = fps[j];
                candidates.clear();
                if let Some((_, tref)) = cursor.search_le(key, idx_dev) {
                    self.push_candidates(tref.pid() as u32, key, &mut candidates);
                }
                let entry = &mut pipeline[j % window];
                entry.slot = i;
                entry.key = key;
                entry.segs.clear();
                entry.pages.clear();
                entry.windows.clear();
                for &leaf_idx in &candidates {
                    let leaf = &self.leaves[leaf_idx as usize];
                    if let Some(d) = idx_dev {
                        d.read_random(Self::leaf_page_id(leaf_idx));
                    }
                    entry.result.leaves_visited += 1;
                    if !leaf.covers_key(key) {
                        continue;
                    }
                    let staging = &mut scratch.pages;
                    staging.clear();
                    entry.result.bfs_probed +=
                        leaf.matching_pages_fp(&fp, staging, &mut scratch.buckets);
                    staging.dedup();
                    let start = entry.pages.len() as u32;
                    for &pid in staging.iter() {
                        if pid < heap.page_count() {
                            heap.warm_page_attr(pid, attr);
                        }
                        entry.pages.push(pid);
                    }
                    entry.segs.push((leaf_idx, start, entry.pages.len() as u32));
                }
            }
            // Intermediate prefetch step: the previous key's pages had
            // their TLB walks started a whole stage ago (the
            // stage-one demand read of each page's middle attribute);
            // now that the walks have landed, line prefetches for the
            // quarter-point probe lines stick. (Issued together with
            // the walk they would be dropped on the dTLB miss.)
            if window > 1 && j >= 1 && j - 1 < order.len() {
                let prev = &pipeline[(j - 1) % window];
                for &pid in &prev.pages {
                    if pid < heap.page_count() {
                        heap.prefetch_page_attr(pid, attr);
                    }
                }
            }
            // Narrowing step: two iterations after a key entered, its
            // pages' middle/quarter probe lines are warm — resolve
            // each page's binary-search window now (warm probes, no
            // stalls) and prefetch exactly the terminal window lines,
            // so the stage-two scan reads only cache-hit lines. Only
            // ordered heaps (`FirstPageOnly`) can pre-narrow, and only
            // when the ring is deep enough that entry `j - 2` has not
            // been consumed yet (`window > 2`) — tiny batches skip
            // straight to stage two's own sorted scan.
            if window > 2
                && self.config.duplicates == DuplicateHandling::FirstPageOnly
                && j >= 2
                && j - 2 < order.len()
            {
                let entry = &mut pipeline[(j - 2) % window];
                entry.windows.clear();
                for &pid in &entry.pages {
                    if pid < heap.page_count() {
                        let (lo, hi, probes) = heap.narrow_sorted_window(pid, attr, entry.key);
                        heap.prefetch_attr_window(pid, attr, lo, hi);
                        entry.windows.push((lo, hi));
                        // Count the narrowing probes here so the key's
                        // tuples_scanned equals a direct
                        // scan_sorted_page_for (probes + window walk).
                        entry.result.tuples_scanned += probes as u64;
                    } else {
                        entry.windows.push((0, 0));
                    }
                }
            }
        }
        scratch.order = order;
        scratch.fps = fps;
        scratch.candidates = candidates;
        scratch.pipeline = pipeline;
    }

    /// Probe one candidate leaf: filter sweep, candidate-page fetch,
    /// duplicate-run following. Breaks when the sink stops the probe
    /// (or a first-match probe is satisfied) and the caller must stop
    /// visiting leaves.
    #[allow(clippy::too_many_arguments)]
    fn probe_leaf(
        &self,
        key: u64,
        fp: &KeyFingerprint,
        leaf_idx: u32,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&PageDevice>,
        data_dev: Option<&PageDevice>,
        stop_at_first: bool,
        scratch: &mut ProbeScratch,
        sink: &mut dyn MatchSink,
        result: &mut ProbeResult,
    ) -> ControlFlow<()> {
        let leaf = &self.leaves[leaf_idx as usize];
        if let Some(d) = idx_dev {
            d.read_random(Self::leaf_page_id(leaf_idx));
        }
        result.leaves_visited += 1;
        if !leaf.covers_key(key) {
            return ControlFlow::Continue(());
        }
        let ProbeScratch {
            buckets,
            pages,
            slots,
            ..
        } = scratch;
        pages.clear();
        result.bfs_probed += leaf.matching_pages_fp(fp, pages, buckets);
        pages.dedup();
        if stop_at_first
            && self.config.probe_order == crate::config::ProbeOrder::Interpolated
            && leaf.max_key > leaf.min_key
        {
            // Check pages nearest the key's interpolated position
            // first: with near-uniform ordered data the true page
            // leads the order and the early-out skips almost every
            // false positive.
            let span_keys = (leaf.max_key - leaf.min_key) as f64;
            let span_pids = (leaf.max_pid - leaf.min_pid) as f64;
            let interp =
                leaf.min_pid + ((key - leaf.min_key) as f64 / span_keys * span_pids).round() as u64;
            pages.sort_by_key(|&pid| pid.abs_diff(interp));
        }
        self.probe_leaf_data(
            key,
            leaf,
            pages,
            None,
            heap,
            attr,
            data_dev,
            stop_at_first,
            false,
            slots,
            sink,
            result,
        )
    }

    /// The data phase of one `(key, leaf)` probe: fetch the candidate
    /// pages (ascending runs at sequential cost), scan them for
    /// matches — pushing each into `sink` — and follow duplicate
    /// runs. Shared verbatim by the scalar path and stage two of the
    /// batched pipeline, which is what makes their charging identical
    /// by construction. Breaks (and stops fetching) the moment the
    /// sink does, or after the first matching page under
    /// `stop_at_first`.
    #[allow(clippy::too_many_arguments)]
    fn probe_leaf_data(
        &self,
        key: u64,
        leaf: &BfLeaf,
        pages: &[PageId],
        windows: Option<&[(u32, u32)]>,
        heap: &HeapFile,
        attr: AttrOffset,
        data_dev: Option<&PageDevice>,
        stop_at_first: bool,
        warm_pages: bool,
        slots: &mut Vec<usize>,
        sink: &mut dyn MatchSink,
        result: &mut ProbeResult,
    ) -> ControlFlow<()> {
        let deleted = leaf.is_deleted(key);
        let mut prev_fetched: Option<PageId> = None;
        // Highest page consumed while following a duplicate run. Runs
        // are contiguous and the candidate list is ascending here (the
        // interpolated reorder only applies to first-match probes,
        // which never follow runs), so one frontier comparison replaces
        // the old `followed: Vec<PageId>` linear scan — O(1) per
        // candidate instead of O(run length).
        let mut run_frontier: Option<PageId> = None;
        // FirstPageOnly is only valid over heaps ordered on the
        // indexed attribute (the run-following below already leans on
        // that), so those pages *may* take the binary-search scan —
        // ~log2(tuples) cache lines instead of all of them. It only
        // pays when the page is already cache-warm, though: binary
        // probes form a serial dependency chain, so on a DRAM-cold
        // page the linear scan's independent line fills overlap and
        // win. The batched pipeline prefetches pages a window ahead
        // (`warm_pages`), the scalar path scans cold and stays linear.
        let sorted_scan = warm_pages && self.config.duplicates == DuplicateHandling::FirstPageOnly;
        let scan = |pid: PageId, slots: &mut Vec<usize>| {
            if sorted_scan {
                heap.scan_sorted_page_for(pid, attr, key, slots) as u64
            } else {
                heap.scan_page_for(pid, attr, key, slots) as u64
            }
        };
        for (pi, &pid) in pages.iter().enumerate() {
            if pid >= heap.page_count() {
                continue; // filters may cover not-yet-written pages
            }
            if run_frontier.is_some_and(|f| pid <= f) {
                continue; // already read while following a run
            }
            if let Some(d) = data_dev {
                match prev_fetched {
                    Some(q) if pid == q + 1 => d.read_seq(pid),
                    Some(q) if pid == q => {}
                    _ => d.read_random(pid),
                }
            }
            prev_fetched = Some(pid);
            result.pages_read += 1;

            slots.clear();
            // A pre-resolved window (the pipeline's narrowing step ran
            // while this page's probe lines were warm) skips straight
            // to the prefetched terminal window; otherwise scan by the
            // page's ordering.
            result.tuples_scanned += match windows {
                Some(ws) => heap.scan_sorted_window_for(pid, attr, key, ws[pi].0, slots) as u64,
                None => scan(pid, slots),
            };
            if slots.is_empty() || deleted {
                result.false_reads += 1;
            } else {
                for &slot in slots.iter() {
                    sink.push(pid, slot)?;
                }
                if stop_at_first {
                    return ControlFlow::Break(());
                }
                if self.config.duplicates == DuplicateHandling::FirstPageOnly {
                    // Only the first covering page is in the
                    // filters: follow the contiguous duplicate run
                    // forward. The run spills into the next page
                    // exactly when this page's last tuple still
                    // carries the key (data is ordered).
                    let mut cur = pid;
                    while cur + 1 < heap.page_count()
                        && heap.tuples_in_page(cur) > 0
                        && heap.attr(cur, heap.tuples_in_page(cur) - 1, attr) == key
                    {
                        cur += 1;
                        if let Some(d) = data_dev {
                            d.read_seq(cur);
                        }
                        run_frontier = Some(cur);
                        prev_fetched = Some(cur);
                        result.pages_read += 1;
                        slots.clear();
                        result.tuples_scanned += scan(cur, slots);
                        for &slot in slots.iter() {
                            sink.push(cur, slot)?;
                        }
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Algorithm 3: insert `key` residing on data page `pid`.
    ///
    /// Routes by key (floor leaf, else the first leaf), walks left if
    /// `pid` precedes the target leaf's page range, splits when the
    /// leaf is at its Equation-5 capacity, and finally updates the
    /// leaf's ranges and filter bits. `heap` is required when the
    /// configured split strategy is [`SplitStrategy::RebuildFromData`]
    /// and a split fires.
    pub fn insert(&mut self, key: u64, pid: PageId, heap: Option<&HeapFile>, attr: AttrOffset) {
        let mut idx = match self.upper.search_le(key, None) {
            Some((_, tref)) => tref.pid() as u32,
            None => self.first_leaf,
        };
        // The leaf chosen by key may start after `pid`; data being
        // ordered/partitioned on the key, walking left finds the leaf
        // whose page range can host it.
        while pid < self.leaves[idx as usize].min_pid {
            match self.leaves[idx as usize].prev {
                Some(p) => idx = p,
                None => break,
            }
        }

        if self.leaves[idx as usize].n_keys + 1 > self.config.max_keys_per_leaf()
            && self.split_leaf(idx, heap, attr)
        {
            // Re-route: the split moved half the key range into a new
            // right sibling.
            idx = match self.upper.search_le(key, None) {
                Some((_, tref)) => tref.pid() as u32,
                None => self.first_leaf,
            };
            while pid < self.leaves[idx as usize].min_pid {
                match self.leaves[idx as usize].prev {
                    Some(p) => idx = p,
                    None => break,
                }
            }
        }
        self.leaves[idx as usize].insert(key, pid);
    }

    /// Bulk form of [`BfTree::insert`]: sorts the batch and caches the
    /// routed floor leaf across consecutive keys, so a run of keys
    /// landing between the same two upper-structure separators pays
    /// one descent (plus one successor lookup to learn the run's
    /// bound) instead of one descent per key — the amortization that
    /// makes a memtable flush cheaper than the per-record inserts it
    /// absorbed. Routing is bit-identical to inserting the sorted
    /// batch one by one: the cache is only trusted while the key stays
    /// below the next separator, and any split invalidates it (splits
    /// are the one operation that adds separators).
    pub fn insert_batch(
        &mut self,
        entries: &[(u64, PageId)],
        heap: Option<&HeapFile>,
        attr: AttrOffset,
    ) {
        let mut sorted = entries.to_vec();
        sorted.sort_unstable();
        // (floor leaf, exclusive key bound of its separator interval).
        let mut cached: Option<(u32, Option<u64>)> = None;
        for (key, pid) in sorted {
            let mut idx = match cached {
                Some((leaf, bound)) if bound.is_none_or(|b| key < b) => leaf,
                _ => {
                    let leaf = match self.upper.search_le(key, None) {
                        Some((_, tref)) => tref.pid() as u32,
                        None => self.first_leaf,
                    };
                    let bound = key
                        .checked_add(1)
                        .and_then(|next| self.upper.seek_ge(next, u64::MAX, None))
                        .map(|(sep, _)| sep);
                    cached = Some((leaf, bound));
                    leaf
                }
            };
            while pid < self.leaves[idx as usize].min_pid {
                match self.leaves[idx as usize].prev {
                    Some(p) => idx = p,
                    None => break,
                }
            }
            if self.leaves[idx as usize].n_keys + 1 > self.config.max_keys_per_leaf()
                && self.split_leaf(idx, heap, attr)
            {
                cached = None; // the split added a separator
                idx = match self.upper.search_le(key, None) {
                    Some((_, tref)) => tref.pid() as u32,
                    None => self.first_leaf,
                };
                while pid < self.leaves[idx as usize].min_pid {
                    match self.leaves[idx as usize].prev {
                        Some(p) => idx = p,
                        None => break,
                    }
                }
            }
            self.leaves[idx as usize].insert(key, pid);
        }
    }

    /// Algorithm 2: split leaf `idx` at the midpoint of its key range.
    /// Returns `false` when the leaf cannot split (single-key range).
    fn split_leaf(&mut self, idx: u32, heap: Option<&HeapFile>, attr: AttrOffset) -> bool {
        let (min_key, max_key) = {
            let l = &self.leaves[idx as usize];
            (l.min_key, l.max_key)
        };
        if min_key >= max_key {
            return false; // a single-key leaf can only grow
        }
        let mid = min_key + (max_key - min_key) / 2;

        let (n1_pages, n2_pages) = match self.config.split {
            SplitStrategy::RebuildFromData => {
                let heap =
                    heap.expect("SplitStrategy::RebuildFromData needs heap access at split time");
                self.partition_pages_from_data(idx, mid, heap, attr)
            }
            SplitStrategy::ProbeDomain => self.partition_pages_by_probing(idx, mid),
        };
        if n1_pages.is_empty() || n2_pages.is_empty() {
            return false; // all keys landed on one side; keep growing
        }

        let distinct = |pages: &[(PageId, Vec<u64>)]| {
            pages
                .iter()
                .flat_map(|(_, ks)| ks.iter().copied())
                .collect::<HashSet<u64>>()
                .len() as u64
        };
        let mut n1 = BfLeaf::from_pages(&self.config, &n1_pages, distinct(&n1_pages));
        let mut n2 = BfLeaf::from_pages(&self.config, &n2_pages, distinct(&n2_pages));

        let old = &self.leaves[idx as usize];
        let new_idx = self.leaves.len() as u32;
        n1.prev = old.prev;
        n1.next = Some(new_idx);
        n2.prev = Some(idx);
        n2.next = old.next;
        n1.deleted = old.deleted.iter().copied().filter(|&k| k <= mid).collect();
        n2.deleted = old.deleted.iter().copied().filter(|&k| k > mid).collect();
        let old_next = old.next;

        let n2_min = n2.min_key;
        self.leaves[idx as usize] = n1;
        self.leaves.push(n2);
        if let Some(nn) = old_next {
            self.leaves[nn as usize].prev = Some(new_idx);
        }
        self.upper
            .insert(n2_min, TupleRef::new(new_idx as u64, 0), None);
        true
    }

    /// Split support: re-read the covered data pages and partition
    /// their distinct keys around `mid`.
    fn partition_pages_from_data(
        &self,
        idx: u32,
        mid: u64,
        heap: &HeapFile,
        attr: AttrOffset,
    ) -> SplitSides {
        let l = &self.leaves[idx as usize];
        let mut per_page: Vec<(PageId, Vec<u64>, Vec<u64>)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for pid in l.min_pid..=l.max_pid.min(heap.page_count().saturating_sub(1)) {
            let mut keys: Vec<u64> = (0..heap.tuples_in_page(pid))
                .map(|slot| heap.attr(pid, slot, attr))
                .filter(|k| (l.min_key..=l.max_key).contains(k))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            if self.config.duplicates == DuplicateHandling::FirstPageOnly {
                keys.retain(|k| !seen.contains(k));
                seen.extend(keys.iter().copied());
            }
            let (le, gt): (Vec<u64>, Vec<u64>) = keys.into_iter().partition(|&k| k <= mid);
            per_page.push((pid, le, gt));
        }
        Self::assemble_sides(per_page)
    }

    /// Paper-faithful Algorithm 2: enumerate the (integer) key domain
    /// of the old leaf and probe its filters. Inherits the old filters'
    /// false positives into the new leaves (lossy-exact).
    fn partition_pages_by_probing(&self, idx: u32, mid: u64) -> SplitSides {
        let l = &self.leaves[idx as usize];
        assert!(
            l.max_key - l.min_key <= PROBE_DOMAIN_SPAN_CAP,
            "ProbeDomain split over a span of {} keys; use RebuildFromData",
            l.max_key - l.min_key
        );
        let mut per_page: Vec<(PageId, Vec<u64>, Vec<u64>)> = (l.min_pid..=l.max_pid)
            .map(|pid| (pid, Vec::new(), Vec::new()))
            .collect();
        let mut pages = Vec::new();
        for key in l.min_key..=l.max_key {
            pages.clear();
            l.matching_pages(key, &mut pages);
            for &pid in &pages {
                let entry = &mut per_page[(pid - l.min_pid) as usize];
                if key <= mid {
                    entry.1.push(key);
                } else {
                    entry.2.push(key);
                }
            }
        }
        Self::assemble_sides(per_page)
    }

    /// Build the two sides' contiguous `(pid, keys)` lists per
    /// Algorithm 2 lines 3–6: N1 spans `[min_pid ..= last pid holding a
    /// ≤mid key]`, N2 spans `[first pid holding a >mid key ..= max_pid]`
    /// (the ranges may overlap on one shared boundary page).
    fn assemble_sides(per_page: Vec<(PageId, Vec<u64>, Vec<u64>)>) -> SplitSides {
        let n1_end = per_page.iter().rposition(|(_, le, _)| !le.is_empty());
        let n2_start = per_page.iter().position(|(_, _, gt)| !gt.is_empty());
        let n1 = match n1_end {
            Some(end) => per_page[..=end]
                .iter()
                .map(|(pid, le, _)| (*pid, le.clone()))
                .collect(),
            None => Vec::new(),
        };
        let n2 = match n2_start {
            Some(start) => per_page[start..]
                .iter()
                .map(|(pid, _, gt)| (*pid, gt.clone()))
                .collect(),
            None => Vec::new(),
        };
        (n1, n2)
    }

    /// Logical delete: tombstone `key` in every candidate leaf (§7).
    /// Subsequent probes treat its pages as false reads. Returns the
    /// number of leaves tombstoned.
    pub fn delete(&mut self, key: u64) -> usize {
        let candidates = self.candidate_leaves(key, None);
        let mut n = 0;
        for idx in candidates {
            let leaf = &mut self.leaves[idx as usize];
            if leaf.covers_key(key) && !leaf.is_deleted(key) {
                leaf.deleted.push(key);
                n += 1;
            }
        }
        n
    }

    /// Rebuild leaf `idx`'s filters from the heap ("recalculate the BF
    /// from the beginning when [the deleted-keys] list has reached the
    /// maximum size", §7). Tombstoned keys are dropped from the
    /// filters; the tombstone list is cleared.
    pub fn rebuild_leaf(&mut self, idx: u32, heap: &HeapFile, attr: AttrOffset) {
        let (min_pid, max_pid, deleted) = {
            let l = &self.leaves[idx as usize];
            (l.min_pid, l.max_pid, l.deleted.clone())
        };
        let mut pages: Vec<(PageId, Vec<u64>)> = Vec::new();
        let mut distinct: HashSet<u64> = HashSet::new();
        for pid in min_pid..=max_pid.min(heap.page_count().saturating_sub(1)) {
            let mut keys: Vec<u64> = (0..heap.tuples_in_page(pid))
                .map(|slot| heap.attr(pid, slot, attr))
                .filter(|k| !deleted.contains(k))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            if self.config.duplicates == DuplicateHandling::FirstPageOnly {
                keys.retain(|k| !distinct.contains(k));
            }
            distinct.extend(keys.iter().copied());
            pages.push((pid, keys));
        }
        let old = &self.leaves[idx as usize];
        let mut fresh = BfLeaf::from_pages(&self.config, &pages, distinct.len() as u64);
        fresh.prev = old.prev;
        fresh.next = old.next;
        self.leaves[idx as usize] = fresh;
    }

    /// Validate structural invariants (tests): sibling links form one
    /// chain over all leaves, key ranges are sane, and the upper
    /// structure's own invariants hold.
    pub fn check_invariants(&self) {
        self.upper.check_invariants();
        let mut seen = 0usize;
        let mut idx = Some(self.first_leaf);
        let mut prev: Option<u32> = None;
        while let Some(i) = idx {
            let l = &self.leaves[i as usize];
            assert_eq!(l.prev, prev, "prev link broken at leaf {i}");
            if l.n_keys > 0 {
                assert!(l.min_key <= l.max_key, "key range inverted at leaf {i}");
            }
            assert!(l.min_pid <= l.max_pid, "page range inverted at leaf {i}");
            seen += 1;
            prev = Some(i);
            idx = l.next;
        }
        assert_eq!(seen, self.leaves.len(), "sibling chain misses leaves");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bftree_storage::tuple::PK_OFFSET;
    use bftree_storage::{DeviceKind, TupleLayout};

    fn heap(n: u64) -> HeapFile {
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for pk in 0..n {
            heap.append_record(pk, pk / 7);
        }
        heap
    }

    /// The internal batch walk equals a scalar `probe_impl` loop —
    /// matches, counters, and device charges — for batches containing
    /// hits, misses, duplicates, and out-of-domain keys in shuffled
    /// order.
    #[test]
    fn probe_batch_impl_equals_scalar_loop() {
        let heap = heap(20_000);
        let config = BfTreeConfig {
            fpp: 1e-3,
            duplicates: DuplicateHandling::FirstPageOnly,
            ..BfTreeConfig::paper_default()
        };
        let tree = BfTree::bulk_build(config, &heap, PK_OFFSET);
        let keys: Vec<u64> = (0..3_000u64)
            .map(|i| (i.wrapping_mul(2654435761)) % 40_000)
            .collect();

        let scratch = &mut ProbeScratch::default();
        let (idx_s, data_s) = (
            PageDevice::cold(DeviceKind::Ssd),
            PageDevice::cold(DeviceKind::Hdd),
        );
        let scalar: Vec<ProbeResult> = keys
            .iter()
            .map(|&k| {
                tree.probe_impl(
                    k,
                    &heap,
                    PK_OFFSET,
                    Some(&idx_s),
                    Some(&data_s),
                    false,
                    scratch,
                )
            })
            .collect();

        let (idx_b, data_b) = (
            PageDevice::cold(DeviceKind::Ssd),
            PageDevice::cold(DeviceKind::Hdd),
        );
        let batch = tree.probe_batch_impl(
            &keys,
            &heap,
            PK_OFFSET,
            Some(&idx_b),
            Some(&data_b),
            scratch,
        );

        assert_eq!(batch.len(), scalar.len());
        for (i, (b, s)) in batch.iter().zip(&scalar).enumerate() {
            assert_eq!(b.matches, s.matches, "key #{i}");
            assert_eq!(b.pages_read, s.pages_read, "key #{i}");
            assert_eq!(b.false_reads, s.false_reads, "key #{i}");
            assert_eq!(b.leaves_visited, s.leaves_visited, "key #{i}");
            assert_eq!(b.bfs_probed, s.bfs_probed, "key #{i}");
        }
        // Device totals agree to the nanosecond (the batch may use a
        // different in-page scan, so tuples_scanned is not compared).
        assert_eq!(
            idx_b.snapshot().device_reads(),
            idx_s.snapshot().device_reads()
        );
        assert_eq!(idx_b.snapshot().sim_ns, idx_s.snapshot().sim_ns);
        assert_eq!(
            data_b.snapshot().device_reads(),
            data_s.snapshot().device_reads()
        );
        assert_eq!(data_b.snapshot().sim_ns, data_s.snapshot().sim_ns);
    }

    /// Tiny batches (empty, single key) and batches smaller than the
    /// pipeline window drain correctly.
    #[test]
    fn probe_batch_impl_handles_tiny_batches() {
        let heap = heap(2_000);
        let tree = BfTree::bulk_build(BfTreeConfig::paper_default(), &heap, PK_OFFSET);
        let scratch = &mut ProbeScratch::default();
        assert!(tree
            .probe_batch_impl(&[], &heap, PK_OFFSET, None, None, scratch)
            .is_empty());
        for n in 1..=4usize {
            let keys: Vec<u64> = (0..n as u64).map(|i| i * 321).collect();
            let r = tree.probe_batch_impl(&keys, &heap, PK_OFFSET, None, None, scratch);
            assert_eq!(r.len(), n);
            for (i, res) in r.iter().enumerate() {
                let expect = tree.probe_impl(keys[i], &heap, PK_OFFSET, None, None, false, scratch);
                assert_eq!(res.matches, expect.matches, "n={n} i={i}");
            }
        }
        // Scratch reuse must not leak counters between batches: a tiny
        // batch (whose ring entries are consumed before the narrowing
        // step could touch them) followed by another batch on the same
        // scratch reports the same counters as on a fresh scratch.
        let keys = [100u64, 200];
        tree.probe_batch_impl(&keys, &heap, PK_OFFSET, None, None, scratch);
        let reused = tree.probe_batch_impl(&keys, &heap, PK_OFFSET, None, None, scratch);
        let fresh = tree.probe_batch_impl(
            &keys,
            &heap,
            PK_OFFSET,
            None,
            None,
            &mut ProbeScratch::default(),
        );
        for (r, f) in reused.iter().zip(&fresh) {
            assert_eq!(r.matches, f.matches);
            assert_eq!(r.tuples_scanned, f.tuples_scanned, "counter leaked");
            assert_eq!(r.bfs_probed, f.bfs_probed);
        }
    }
}
