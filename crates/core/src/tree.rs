//! The BF-Tree: bulk load, search (Algorithm 1), insert (Algorithm 3),
//! split (Algorithm 2), delete.

use std::collections::HashSet;

use bftree_btree::{BPlusTree, BTreeConfig, DuplicateMode, TupleRef};
use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, PageId, SimDevice};

use crate::config::{BfTreeConfig, DuplicateHandling, SplitStrategy};
use crate::leaf::BfLeaf;
use crate::stats::ProbeResult;

/// Index-device page-id base for BF-leaves (upper-structure nodes use
/// their arena ids directly, so the two spaces never collide).
const LEAF_PAGE_BASE: u64 = 1 << 40;

/// Largest key-domain span `ProbeDomain` splits will enumerate.
const PROBE_DOMAIN_SPAN_CAP: u64 = 1 << 22;

/// Per-page distinct-key lists for the two sides of a leaf split.
type SplitSides = (Vec<(PageId, Vec<u64>)>, Vec<(PageId, Vec<u64>)>);

/// The BF-Tree (§4).
///
/// Internal routing reuses the B+-Tree machinery ("the code-base of the
/// B+-Tree ... serves as the part of the BF-Tree above the leaves",
/// §6): a [`BPlusTree`] maps each BF-leaf's `min_key` to the leaf's
/// arena index. Probes land on the *floor* entry — the rightmost leaf
/// whose key range can contain the key — then walk left siblings while
/// a duplicate run spans leaves.
#[derive(Debug, Clone)]
pub struct BfTree {
    config: BfTreeConfig,
    leaves: Vec<BfLeaf>,
    upper: BPlusTree,
    first_leaf: u32,
}

impl BfTree {
    /// Bulk-load a BF-Tree over `heap`, indexing attribute `attr`, on
    /// which the heap must be ordered or partitioned.
    ///
    /// One pass over the data packs BF-leaves up to
    /// [`BfTreeConfig::max_keys_per_leaf`] distinct keys each (leaf
    /// boundaries align to page boundaries); a second pass over the
    /// leaf level builds the internal structure — exactly the paper's
    /// two-pass bulk load (§4.2).
    pub fn bulk_build(config: BfTreeConfig, heap: &HeapFile, attr: AttrOffset) -> Self {
        config.validate();
        let max_keys = config.max_keys_per_leaf();

        let mut leaves: Vec<BfLeaf> = Vec::new();
        let mut pending: Vec<(PageId, Vec<u64>)> = Vec::new();
        let mut pending_distinct: HashSet<u64> = HashSet::new();

        let close_leaf = |pending: &mut Vec<(PageId, Vec<u64>)>,
                          pending_distinct: &mut HashSet<u64>,
                          leaves: &mut Vec<BfLeaf>| {
            if pending.is_empty() {
                return;
            }
            let leaf = BfLeaf::from_pages(&config, pending, pending_distinct.len() as u64);
            leaves.push(leaf);
            pending.clear();
            pending_distinct.clear();
        };

        for pid in 0..heap.page_count() {
            let mut keys: Vec<u64> = (0..heap.tuples_in_page(pid))
                .map(|slot| heap.attr(pid, slot, attr))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            let new_keys = keys
                .iter()
                .filter(|k| !pending_distinct.contains(k))
                .count() as u64;
            if !pending.is_empty() && pending_distinct.len() as u64 + new_keys > max_keys {
                close_leaf(&mut pending, &mut pending_distinct, &mut leaves);
            }
            if config.duplicates == DuplicateHandling::FirstPageOnly {
                // Only a key's first covering page enters the filters;
                // probes scan the contiguous run forward from there.
                keys.retain(|k| !pending_distinct.contains(k));
            }
            pending_distinct.extend(keys.iter().copied());
            pending.push((pid, keys));
        }
        close_leaf(&mut pending, &mut pending_distinct, &mut leaves);

        if leaves.is_empty() {
            leaves.push(BfLeaf::empty(&config, 0));
        }

        // Chain siblings.
        for i in 0..leaves.len() {
            if i + 1 < leaves.len() {
                leaves[i].next = Some((i + 1) as u32);
            }
            if i > 0 {
                leaves[i].prev = Some((i - 1) as u32);
            }
        }

        let upper = Self::build_upper(&config, &leaves);
        Self {
            config,
            leaves,
            upper,
            first_leaf: 0,
        }
    }

    /// An empty BF-Tree ready for inserts (§4.2: "The initial node of
    /// the BF-Tree is a BF node").
    pub fn new(config: BfTreeConfig) -> Self {
        config.validate();
        let leaves = vec![BfLeaf::empty(&config, 0)];
        let upper = Self::build_upper(&config, &leaves);
        Self {
            config,
            leaves,
            upper,
            first_leaf: 0,
        }
    }

    fn build_upper(config: &BfTreeConfig, leaves: &[BfLeaf]) -> BPlusTree {
        let btcfg = BTreeConfig {
            page_size: config.page_size,
            key_size: config.key_size,
            ptr_size: config.ptr_size,
            fill_factor: 1.0,
            duplicates: DuplicateMode::PerTuple,
        };
        // Routing keys must be non-decreasing; bulk leaves are built in
        // page order and the heap is ordered/partitioned on the key, so
        // min_keys ascend. Empty leaves route at key 0.
        let entries = leaves.iter().enumerate().map(|(i, l)| {
            let key = if l.n_keys == 0 { 0 } else { l.min_key };
            (key, TupleRef::new(i as u64, 0))
        });
        BPlusTree::bulk_build(btcfg, entries)
    }

    /// Tree configuration.
    pub fn config(&self) -> &BfTreeConfig {
        &self.config
    }

    /// Number of BF-leaves (the paper's `BFleaves`).
    pub fn leaf_pages(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Pages of the internal structure above the leaves.
    pub fn internal_pages(&self) -> u64 {
        self.upper.total_pages()
    }

    /// Total index pages (Equation 10's `BFsize / pagesize`).
    pub fn total_pages(&self) -> u64 {
        self.leaf_pages() + self.internal_pages()
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_pages() * self.config.page_size as u64
    }

    /// Height including the BF-leaf level (Equation 7's `BFh`).
    pub fn height(&self) -> usize {
        self.upper.height() + 1
    }

    /// Total distinct keys indexed across leaves.
    pub fn n_keys(&self) -> u64 {
        self.leaves.iter().map(|l| l.n_keys).sum()
    }

    /// Access a leaf by arena index (tests, harness introspection).
    pub fn leaf(&self, idx: u32) -> &BfLeaf {
        &self.leaves[idx as usize]
    }

    /// Index-device page id of leaf `idx`.
    pub fn leaf_page_id(idx: u32) -> u64 {
        LEAF_PAGE_BASE | idx as u64
    }

    /// Index-device page ids of the structure above the leaves (for
    /// warm-cache prewarming).
    pub fn upper_page_ids(&self) -> Vec<u64> {
        self.upper.all_node_ids()
    }

    /// Index-device page ids of every node including leaves.
    pub fn all_page_ids(&self) -> Vec<u64> {
        let mut ids = self.upper.all_node_ids();
        ids.extend((0..self.leaves.len() as u32).map(Self::leaf_page_id));
        ids
    }

    /// The leaves (left-to-right arena order).
    pub fn leaves(&self) -> &[BfLeaf] {
        &self.leaves
    }

    /// Candidate leaves for `key`: the floor leaf plus left siblings
    /// while a duplicate run spans leaves, in left-to-right order.
    pub(crate) fn candidate_leaves(&self, key: u64, idx_dev: Option<&SimDevice>) -> Vec<u32> {
        let Some((_, tref)) = self.upper.search_le(key, idx_dev) else {
            return Vec::new();
        };
        let mut idx = tref.pid() as u32;
        let mut out = vec![idx];
        while let Some(prev) = self.leaves[idx as usize].prev {
            let pl = &self.leaves[prev as usize];
            if pl.n_keys > 0 && pl.max_key >= key {
                out.push(prev);
                idx = prev;
            } else {
                break;
            }
        }
        out.reverse();
        out
    }

    /// Algorithm 1: probe for `key`, returning every matching tuple.
    ///
    /// Charges index reads (internal descent + one read per BF-leaf
    /// visited) to `idx_dev` and data-page fetches to `data_dev`
    /// (sorted batch: adjacent pages at sequential cost, as the paper's
    /// Equation 13 models). The public entry points are
    /// `AccessMethod::probe`/`probe_first` over a `Relation` and an
    /// `IoContext`.
    pub(crate) fn probe_impl(
        &self,
        key: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&SimDevice>,
        data_dev: Option<&SimDevice>,
        stop_at_first: bool,
    ) -> ProbeResult {
        let mut result = ProbeResult::default();
        let mut pages: Vec<PageId> = Vec::new();

        'leaves: for leaf_idx in self.candidate_leaves(key, idx_dev) {
            let leaf = &self.leaves[leaf_idx as usize];
            if let Some(d) = idx_dev {
                d.read_random(Self::leaf_page_id(leaf_idx));
            }
            result.leaves_visited += 1;
            if !leaf.covers_key(key) {
                continue;
            }
            pages.clear();
            result.bfs_probed += leaf.matching_pages(key, &mut pages);
            pages.dedup();
            if stop_at_first
                && self.config.probe_order == crate::config::ProbeOrder::Interpolated
                && leaf.max_key > leaf.min_key
            {
                // Check pages nearest the key's interpolated position
                // first: with near-uniform ordered data the true page
                // leads the order and the early-out skips almost every
                // false positive.
                let span_keys = (leaf.max_key - leaf.min_key) as f64;
                let span_pids = (leaf.max_pid - leaf.min_pid) as f64;
                let interp = leaf.min_pid
                    + ((key - leaf.min_key) as f64 / span_keys * span_pids).round() as u64;
                pages.sort_by_key(|&pid| pid.abs_diff(interp));
            }

            let deleted = leaf.is_deleted(key);
            let mut prev_fetched: Option<PageId> = None;
            let mut slots: Vec<usize> = Vec::new();
            let mut followed: Vec<PageId> = Vec::new();
            for &pid in &pages {
                if pid >= heap.page_count() {
                    continue; // filters may cover not-yet-written pages
                }
                if followed.contains(&pid) {
                    continue; // already read while following a run
                }
                if let Some(d) = data_dev {
                    match prev_fetched {
                        Some(q) if pid == q + 1 => d.read_seq(pid),
                        Some(q) if pid == q => {}
                        _ => d.read_random(pid),
                    }
                }
                prev_fetched = Some(pid);
                result.pages_read += 1;

                slots.clear();
                result.tuples_scanned += heap.scan_page_for(pid, attr, key, &mut slots) as u64;
                if slots.is_empty() || deleted {
                    result.false_reads += 1;
                } else {
                    for &slot in &slots {
                        result.matches.push((pid, slot));
                    }
                    if stop_at_first {
                        break 'leaves;
                    }
                    if self.config.duplicates == DuplicateHandling::FirstPageOnly {
                        // Only the first covering page is in the
                        // filters: follow the contiguous duplicate run
                        // forward. The run spills into the next page
                        // exactly when this page's last tuple still
                        // carries the key (data is ordered).
                        let mut cur = pid;
                        while cur + 1 < heap.page_count()
                            && heap.tuples_in_page(cur) > 0
                            && heap.attr(cur, heap.tuples_in_page(cur) - 1, attr) == key
                        {
                            cur += 1;
                            if let Some(d) = data_dev {
                                d.read_seq(cur);
                            }
                            followed.push(cur);
                            prev_fetched = Some(cur);
                            result.pages_read += 1;
                            slots.clear();
                            result.tuples_scanned +=
                                heap.scan_page_for(cur, attr, key, &mut slots) as u64;
                            for &slot in &slots {
                                result.matches.push((cur, slot));
                            }
                        }
                    }
                }
            }
        }
        result
    }

    /// Algorithm 3: insert `key` residing on data page `pid`.
    ///
    /// Routes by key (floor leaf, else the first leaf), walks left if
    /// `pid` precedes the target leaf's page range, splits when the
    /// leaf is at its Equation-5 capacity, and finally updates the
    /// leaf's ranges and filter bits. `heap` is required when the
    /// configured split strategy is [`SplitStrategy::RebuildFromData`]
    /// and a split fires.
    pub fn insert(&mut self, key: u64, pid: PageId, heap: Option<&HeapFile>, attr: AttrOffset) {
        let mut idx = match self.upper.search_le(key, None) {
            Some((_, tref)) => tref.pid() as u32,
            None => self.first_leaf,
        };
        // The leaf chosen by key may start after `pid`; data being
        // ordered/partitioned on the key, walking left finds the leaf
        // whose page range can host it.
        while pid < self.leaves[idx as usize].min_pid {
            match self.leaves[idx as usize].prev {
                Some(p) => idx = p,
                None => break,
            }
        }

        if self.leaves[idx as usize].n_keys + 1 > self.config.max_keys_per_leaf()
            && self.split_leaf(idx, heap, attr)
        {
            // Re-route: the split moved half the key range into a new
            // right sibling.
            idx = match self.upper.search_le(key, None) {
                Some((_, tref)) => tref.pid() as u32,
                None => self.first_leaf,
            };
            while pid < self.leaves[idx as usize].min_pid {
                match self.leaves[idx as usize].prev {
                    Some(p) => idx = p,
                    None => break,
                }
            }
        }
        self.leaves[idx as usize].insert(key, pid);
    }

    /// Algorithm 2: split leaf `idx` at the midpoint of its key range.
    /// Returns `false` when the leaf cannot split (single-key range).
    fn split_leaf(&mut self, idx: u32, heap: Option<&HeapFile>, attr: AttrOffset) -> bool {
        let (min_key, max_key) = {
            let l = &self.leaves[idx as usize];
            (l.min_key, l.max_key)
        };
        if min_key >= max_key {
            return false; // a single-key leaf can only grow
        }
        let mid = min_key + (max_key - min_key) / 2;

        let (n1_pages, n2_pages) = match self.config.split {
            SplitStrategy::RebuildFromData => {
                let heap =
                    heap.expect("SplitStrategy::RebuildFromData needs heap access at split time");
                self.partition_pages_from_data(idx, mid, heap, attr)
            }
            SplitStrategy::ProbeDomain => self.partition_pages_by_probing(idx, mid),
        };
        if n1_pages.is_empty() || n2_pages.is_empty() {
            return false; // all keys landed on one side; keep growing
        }

        let distinct = |pages: &[(PageId, Vec<u64>)]| {
            pages
                .iter()
                .flat_map(|(_, ks)| ks.iter().copied())
                .collect::<HashSet<u64>>()
                .len() as u64
        };
        let mut n1 = BfLeaf::from_pages(&self.config, &n1_pages, distinct(&n1_pages));
        let mut n2 = BfLeaf::from_pages(&self.config, &n2_pages, distinct(&n2_pages));

        let old = &self.leaves[idx as usize];
        let new_idx = self.leaves.len() as u32;
        n1.prev = old.prev;
        n1.next = Some(new_idx);
        n2.prev = Some(idx);
        n2.next = old.next;
        n1.deleted = old.deleted.iter().copied().filter(|&k| k <= mid).collect();
        n2.deleted = old.deleted.iter().copied().filter(|&k| k > mid).collect();
        let old_next = old.next;

        let n2_min = n2.min_key;
        self.leaves[idx as usize] = n1;
        self.leaves.push(n2);
        if let Some(nn) = old_next {
            self.leaves[nn as usize].prev = Some(new_idx);
        }
        self.upper
            .insert(n2_min, TupleRef::new(new_idx as u64, 0), None);
        true
    }

    /// Split support: re-read the covered data pages and partition
    /// their distinct keys around `mid`.
    fn partition_pages_from_data(
        &self,
        idx: u32,
        mid: u64,
        heap: &HeapFile,
        attr: AttrOffset,
    ) -> SplitSides {
        let l = &self.leaves[idx as usize];
        let mut per_page: Vec<(PageId, Vec<u64>, Vec<u64>)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for pid in l.min_pid..=l.max_pid.min(heap.page_count().saturating_sub(1)) {
            let mut keys: Vec<u64> = (0..heap.tuples_in_page(pid))
                .map(|slot| heap.attr(pid, slot, attr))
                .filter(|k| (l.min_key..=l.max_key).contains(k))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            if self.config.duplicates == DuplicateHandling::FirstPageOnly {
                keys.retain(|k| !seen.contains(k));
                seen.extend(keys.iter().copied());
            }
            let (le, gt): (Vec<u64>, Vec<u64>) = keys.into_iter().partition(|&k| k <= mid);
            per_page.push((pid, le, gt));
        }
        Self::assemble_sides(per_page)
    }

    /// Paper-faithful Algorithm 2: enumerate the (integer) key domain
    /// of the old leaf and probe its filters. Inherits the old filters'
    /// false positives into the new leaves (lossy-exact).
    fn partition_pages_by_probing(&self, idx: u32, mid: u64) -> SplitSides {
        let l = &self.leaves[idx as usize];
        assert!(
            l.max_key - l.min_key <= PROBE_DOMAIN_SPAN_CAP,
            "ProbeDomain split over a span of {} keys; use RebuildFromData",
            l.max_key - l.min_key
        );
        let mut per_page: Vec<(PageId, Vec<u64>, Vec<u64>)> = (l.min_pid..=l.max_pid)
            .map(|pid| (pid, Vec::new(), Vec::new()))
            .collect();
        let mut pages = Vec::new();
        for key in l.min_key..=l.max_key {
            pages.clear();
            l.matching_pages(key, &mut pages);
            for &pid in &pages {
                let entry = &mut per_page[(pid - l.min_pid) as usize];
                if key <= mid {
                    entry.1.push(key);
                } else {
                    entry.2.push(key);
                }
            }
        }
        Self::assemble_sides(per_page)
    }

    /// Build the two sides' contiguous `(pid, keys)` lists per
    /// Algorithm 2 lines 3–6: N1 spans `[min_pid ..= last pid holding a
    /// ≤mid key]`, N2 spans `[first pid holding a >mid key ..= max_pid]`
    /// (the ranges may overlap on one shared boundary page).
    fn assemble_sides(per_page: Vec<(PageId, Vec<u64>, Vec<u64>)>) -> SplitSides {
        let n1_end = per_page.iter().rposition(|(_, le, _)| !le.is_empty());
        let n2_start = per_page.iter().position(|(_, _, gt)| !gt.is_empty());
        let n1 = match n1_end {
            Some(end) => per_page[..=end]
                .iter()
                .map(|(pid, le, _)| (*pid, le.clone()))
                .collect(),
            None => Vec::new(),
        };
        let n2 = match n2_start {
            Some(start) => per_page[start..]
                .iter()
                .map(|(pid, _, gt)| (*pid, gt.clone()))
                .collect(),
            None => Vec::new(),
        };
        (n1, n2)
    }

    /// Logical delete: tombstone `key` in every candidate leaf (§7).
    /// Subsequent probes treat its pages as false reads. Returns the
    /// number of leaves tombstoned.
    pub fn delete(&mut self, key: u64) -> usize {
        let candidates = self.candidate_leaves(key, None);
        let mut n = 0;
        for idx in candidates {
            let leaf = &mut self.leaves[idx as usize];
            if leaf.covers_key(key) && !leaf.is_deleted(key) {
                leaf.deleted.push(key);
                n += 1;
            }
        }
        n
    }

    /// Rebuild leaf `idx`'s filters from the heap ("recalculate the BF
    /// from the beginning when [the deleted-keys] list has reached the
    /// maximum size", §7). Tombstoned keys are dropped from the
    /// filters; the tombstone list is cleared.
    pub fn rebuild_leaf(&mut self, idx: u32, heap: &HeapFile, attr: AttrOffset) {
        let (min_pid, max_pid, deleted) = {
            let l = &self.leaves[idx as usize];
            (l.min_pid, l.max_pid, l.deleted.clone())
        };
        let mut pages: Vec<(PageId, Vec<u64>)> = Vec::new();
        let mut distinct: HashSet<u64> = HashSet::new();
        for pid in min_pid..=max_pid.min(heap.page_count().saturating_sub(1)) {
            let mut keys: Vec<u64> = (0..heap.tuples_in_page(pid))
                .map(|slot| heap.attr(pid, slot, attr))
                .filter(|k| !deleted.contains(k))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            if self.config.duplicates == DuplicateHandling::FirstPageOnly {
                keys.retain(|k| !distinct.contains(k));
            }
            distinct.extend(keys.iter().copied());
            pages.push((pid, keys));
        }
        let old = &self.leaves[idx as usize];
        let mut fresh = BfLeaf::from_pages(&self.config, &pages, distinct.len() as u64);
        fresh.prev = old.prev;
        fresh.next = old.next;
        self.leaves[idx as usize] = fresh;
    }

    /// Validate structural invariants (tests): sibling links form one
    /// chain over all leaves, key ranges are sane, and the upper
    /// structure's own invariants hold.
    pub fn check_invariants(&self) {
        self.upper.check_invariants();
        let mut seen = 0usize;
        let mut idx = Some(self.first_leaf);
        let mut prev: Option<u32> = None;
        while let Some(i) = idx {
            let l = &self.leaves[i as usize];
            assert_eq!(l.prev, prev, "prev link broken at leaf {i}");
            if l.n_keys > 0 {
                assert!(l.min_key <= l.max_key, "key range inverted at leaf {i}");
            }
            assert!(l.min_pid <= l.max_pid, "page range inverted at leaf {i}");
            seen += 1;
            prev = Some(i);
            idx = l.next;
        }
        assert_eq!(seen, self.leaves.len(), "sibling chain misses leaves");
    }
}
