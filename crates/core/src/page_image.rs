//! On-page materialization of a BF-leaf (§4.1: "For simplicity and
//! compatibility with the existing framework, the root, the internal
//! nodes and the leaf nodes have the same size (typically either 4 KB
//! or 8 KB)").
//!
//! [`BfLeaf::to_page_bytes`] lays a leaf out as one fixed-size page:
//! a header carrying the leaf's ranges, `#keys`, sibling pointer, and
//! tombstones, followed by the bit-packed filter block. The page-size
//! invariant is *checked*, not assumed — a leaf whose metadata plus
//! filters exceed the node size is a construction bug, and
//! round-tripping through the image is tested to preserve probe
//! behavior bit-for-bit.
//!
//! Layout (little-endian):
//!
//! ```text
//! [magic u32][version u16][flags u16]
//! [min_key u64][max_key u64][min_pid u64][max_pid u64]
//! [n_keys u64][next u32][prev u32][pages_per_bf u64]
//! [n_deleted u32][deleted u64 × n][group_len u32][group bytes...]
//! [zero padding to page_size]
//! ```

use bftree_bloom::BloomGroup;

use crate::config::BfTreeConfig;
use crate::leaf::BfLeaf;

const MAGIC: u32 = 0xBF1E_AF01;
const VERSION: u16 = 1;
/// Sentinel for "no sibling".
const NO_SIBLING: u32 = u32::MAX;

/// Errors materializing or reading a leaf page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageImageError {
    /// Metadata + filters exceed the node size; the leaf cannot be
    /// stored at this page size (the §4.1 invariant would break).
    Overflow {
        /// Bytes the leaf needs.
        need: usize,
        /// Bytes one node provides.
        page_size: usize,
    },
    /// The bytes do not carry a valid leaf image.
    Corrupt(&'static str),
}

impl std::fmt::Display for PageImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageImageError::Overflow { need, page_size } => {
                write!(
                    f,
                    "leaf needs {need} bytes but the node size is {page_size}"
                )
            }
            PageImageError::Corrupt(what) => write!(f, "corrupt leaf image: {what}"),
        }
    }
}

impl std::error::Error for PageImageError {}

impl BfLeaf {
    /// Serialize into exactly `page_size` bytes.
    pub fn to_page_bytes(&self, page_size: usize) -> Result<Vec<u8>, PageImageError> {
        let group_bytes = self.group().to_bytes();
        let mut out = Vec::with_capacity(page_size);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.min_key.to_le_bytes());
        out.extend_from_slice(&self.max_key.to_le_bytes());
        out.extend_from_slice(&self.min_pid.to_le_bytes());
        out.extend_from_slice(&self.max_pid.to_le_bytes());
        out.extend_from_slice(&self.n_keys.to_le_bytes());
        out.extend_from_slice(&self.next.unwrap_or(NO_SIBLING).to_le_bytes());
        out.extend_from_slice(&self.prev.unwrap_or(NO_SIBLING).to_le_bytes());
        out.extend_from_slice(&self.pages_per_bf().to_le_bytes());
        out.extend_from_slice(&(self.deleted.len() as u32).to_le_bytes());
        for &d in &self.deleted {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&(group_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&group_bytes);
        if out.len() > page_size {
            return Err(PageImageError::Overflow {
                need: out.len(),
                page_size,
            });
        }
        out.resize(page_size, 0);
        Ok(out)
    }

    /// Reconstruct a leaf from a page image written by
    /// [`Self::to_page_bytes`]. `config` supplies the geometry knobs
    /// the image does not carry (it must match the writing tree's).
    pub fn from_page_bytes(data: &[u8], config: &BfTreeConfig) -> Result<Self, PageImageError> {
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], PageImageError> {
            if data.len() < at + n {
                return Err(PageImageError::Corrupt("truncated"));
            }
            let s = &data[at..at + n];
            at += n;
            Ok(s)
        };
        let u32_of = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4 bytes"));
        let u64_of = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8 bytes"));

        if u32_of(take(4)?) != MAGIC {
            return Err(PageImageError::Corrupt("bad magic"));
        }
        let version = u16::from_le_bytes(take(2)?.try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(PageImageError::Corrupt("unknown version"));
        }
        take(2)?; // flags
        let min_key = u64_of(take(8)?);
        let max_key = u64_of(take(8)?);
        let min_pid = u64_of(take(8)?);
        let max_pid = u64_of(take(8)?);
        let n_keys = u64_of(take(8)?);
        let next = u32_of(take(4)?);
        let prev = u32_of(take(4)?);
        let pages_per_bf = u64_of(take(8)?);
        if pages_per_bf == 0 {
            return Err(PageImageError::Corrupt("pages_per_bf = 0"));
        }
        let n_deleted = u32_of(take(4)?) as usize;
        let mut deleted = Vec::with_capacity(n_deleted);
        for _ in 0..n_deleted {
            deleted.push(u64_of(take(8)?));
        }
        let group_len = u32_of(take(4)?) as usize;
        let group = BloomGroup::from_bytes(take(group_len)?)
            .ok_or(PageImageError::Corrupt("filter block"))?;

        let mut leaf = BfLeaf::from_parts(
            min_key,
            max_key,
            min_pid,
            max_pid,
            n_keys,
            group,
            pages_per_bf,
            config,
        );
        leaf.next = (next != NO_SIBLING).then_some(next);
        leaf.prev = (prev != NO_SIBLING).then_some(prev);
        leaf.deleted = deleted;
        Ok(leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bftree_storage::PageId;

    fn sample_leaf(fpp: f64) -> (BfLeaf, BfTreeConfig) {
        let config = BfTreeConfig {
            fpp,
            ..BfTreeConfig::paper_default()
        };
        let pages: Vec<(PageId, Vec<u64>)> = (0..40u64)
            .map(|p| (p + 10, (p * 8..p * 8 + 8).collect()))
            .collect();
        (BfLeaf::from_pages(&config, &pages, 320), config)
    }

    #[test]
    fn round_trip_preserves_probe_behavior() {
        let (mut leaf, config) = sample_leaf(1e-4);
        leaf.next = Some(7);
        leaf.deleted.push(42);
        let bytes = leaf.to_page_bytes(config.page_size).expect("fits");
        assert_eq!(bytes.len(), config.page_size);
        let back = BfLeaf::from_page_bytes(&bytes, &config).expect("valid");
        assert_eq!(back.min_key, leaf.min_key);
        assert_eq!(back.max_key, leaf.max_key);
        assert_eq!((back.min_pid, back.max_pid), (leaf.min_pid, leaf.max_pid));
        assert_eq!(back.n_keys, leaf.n_keys);
        assert_eq!(back.next, Some(7));
        assert!(back.is_deleted(42));
        // Bit-for-bit probe agreement.
        for key in 0..400u64 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            leaf.matching_pages(key, &mut a);
            back.matching_pages(key, &mut b);
            assert_eq!(a, b, "key {key}");
        }
    }

    #[test]
    fn every_leaf_of_a_bulk_tree_fits_one_page() {
        // The §4.1 invariant, end to end: every leaf the tree builds
        // must materialize within the node size.
        use bftree_storage::{HeapFile, TupleLayout};
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for pk in 0..60_000u64 {
            heap.append_record(pk, pk / 11);
        }
        for fpp in [0.2, 1e-3, 1e-9] {
            let config = BfTreeConfig {
                fpp,
                ..BfTreeConfig::ordered_default()
            };
            let tree = crate::BfTree::bulk_build(config, &heap, bftree_storage::tuple::PK_OFFSET);
            for idx in 0..tree.leaf_pages() as u32 {
                let bytes = tree
                    .leaf(idx)
                    .to_page_bytes(config.page_size)
                    .unwrap_or_else(|e| panic!("leaf {idx} at fpp {fpp}: {e}"));
                assert_eq!(bytes.len(), config.page_size);
            }
        }
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let (leaf, config) = sample_leaf(1e-3);
        let bytes = leaf.to_page_bytes(config.page_size).expect("fits");
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            BfLeaf::from_page_bytes(&bad, &config),
            Err(PageImageError::Corrupt(_))
        ));
        // Truncated.
        assert!(BfLeaf::from_page_bytes(&bytes[..40], &config).is_err());
        // Zeroed page.
        assert!(BfLeaf::from_page_bytes(&vec![0u8; config.page_size], &config).is_err());
    }

    #[test]
    fn overflow_is_detected_not_truncated() {
        let (mut leaf, _) = sample_leaf(1e-3);
        // A pathological tombstone list cannot silently spill.
        leaf.deleted = (0..600u64).collect();
        let err = leaf.to_page_bytes(512).expect_err("cannot fit");
        assert!(matches!(err, PageImageError::Overflow { .. }));
        assert!(err.to_string().contains("512"));
    }
}
