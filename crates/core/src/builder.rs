//! Typed, fallible construction of a [`BfTree`].
//!
//! The builder replaces panicking positional construction with a
//! fluent API over a [`Relation`]:
//!
//! ```
//! use bftree::BfTree;
//! use bftree_storage::{Duplicates, HeapFile, Relation, TupleLayout};
//! use bftree_storage::tuple::PK_OFFSET;
//!
//! let mut heap = HeapFile::new(TupleLayout::new(256));
//! for pk in 0..10_000u64 {
//!     heap.append_record(pk, pk / 11);
//! }
//! let relation = Relation::new(heap, PK_OFFSET, Duplicates::Unique)?;
//!
//! let tree = BfTree::builder()
//!     .fpp(1e-3)
//!     .pages_per_bf(4)
//!     .build(&relation)?;
//! assert!(tree.total_pages() < 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use bftree_access::BuildError;
use bftree_storage::{Duplicates, Relation};

use crate::config::{
    BfTreeConfig, BitAllocation, DuplicateHandling, FilterLayout, KStrategy, ProbeOrder,
    SplitStrategy,
};
use crate::tree::BfTree;

/// Fluent builder for [`BfTree`]; obtain one with [`BfTree::builder`].
///
/// Every knob defaults to [`BfTreeConfig::paper_default`]; duplicate
/// handling is derived from the relation at build time (contiguous
/// duplicates get the first-page-only filter loading, scattered
/// duplicates the paper-faithful all-covering-pages semantics) unless
/// pinned with [`BfTreeBuilder::duplicates`].
#[derive(Debug, Clone)]
pub struct BfTreeBuilder {
    config: BfTreeConfig,
    duplicates_pin: Option<DuplicateHandling>,
}

impl Default for BfTreeBuilder {
    fn default() -> Self {
        Self {
            config: BfTreeConfig::paper_default(),
            duplicates_pin: None,
        }
    }
}

impl BfTreeBuilder {
    /// Target false-positive probability per filter (the paper's
    /// central accuracy/size knob).
    pub fn fpp(mut self, fpp: f64) -> Self {
        self.config.fpp = fpp;
        self
    }

    /// Consecutive data pages per Bloom filter (the paper's knob (i)).
    pub fn pages_per_bf(mut self, pages: u64) -> Self {
        self.config.pages_per_bf = pages;
        self
    }

    /// Node (page) size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.config.page_size = bytes;
        self
    }

    /// Hash-count strategy.
    pub fn k_strategy(mut self, k: KStrategy) -> Self {
        self.config.k_strategy = k;
        self
    }

    /// Split strategy for Algorithm 2.
    pub fn split(mut self, split: SplitStrategy) -> Self {
        self.config.split = split;
        self
    }

    /// Candidate-page fetch order for unique probes.
    pub fn probe_order(mut self, order: ProbeOrder) -> Self {
        self.config.probe_order = order;
        self
    }

    /// Per-filter bit budgeting.
    pub fn bit_allocation(mut self, alloc: BitAllocation) -> Self {
        self.config.bit_allocation = alloc;
        self
    }

    /// Probe layout of the leaf filters (standard vs cache-line
    /// blocked; see [`FilterLayout`]).
    pub fn filter_layout(mut self, layout: FilterLayout) -> Self {
        self.config.filter_layout = layout;
        self
    }

    /// Hash seed (filters are deterministic given this).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Pin duplicate handling instead of deriving it from the
    /// relation (ablations).
    pub fn duplicates(mut self, duplicates: DuplicateHandling) -> Self {
        self.duplicates_pin = Some(duplicates);
        self
    }

    /// Start from an explicit full configuration.
    pub fn config(mut self, config: BfTreeConfig) -> Self {
        self.config = config;
        self.duplicates_pin = Some(config.duplicates);
        self
    }

    /// Undo a duplicate-handling pin (including the one implied by
    /// [`BfTreeBuilder::config`]): derive it from the relation again.
    pub fn duplicates_from_relation(mut self) -> Self {
        self.duplicates_pin = None;
        self
    }

    /// The configuration `build` would use for `rel`.
    pub fn config_for(&self, rel: &Relation) -> BfTreeConfig {
        let duplicates = self.duplicates_pin.unwrap_or(match rel.duplicates() {
            // Runs of equal keys are contiguous: only a run's first
            // covering page enters the filters and the realized fpp
            // stays at target (see `DuplicateHandling`).
            Duplicates::Unique | Duplicates::Contiguous => DuplicateHandling::FirstPageOnly,
            Duplicates::Scattered => DuplicateHandling::AllCoveringPages,
        });
        BfTreeConfig {
            duplicates,
            ..self.config
        }
    }

    /// Bulk-load a BF-Tree over `rel` (the paper's two-pass §4.2
    /// load). Fails with a typed error instead of panicking on
    /// invalid parameters.
    pub fn build(&self, rel: &Relation) -> Result<BfTree, BuildError> {
        let config = self.config_for(rel);
        config.try_validate()?;
        Ok(BfTree::bulk_build(config, rel.heap(), rel.attr()))
    }

    /// An empty BF-Tree ready for inserts (§4.2: "The initial node of
    /// the BF-Tree is a BF node"), with duplicate handling derived
    /// from `rel`.
    pub fn empty(&self, rel: &Relation) -> Result<BfTree, BuildError> {
        let config = self.config_for(rel);
        config.try_validate()?;
        Ok(BfTree::new(config))
    }
}

impl BfTree {
    /// Start building a BF-Tree (see [`BfTreeBuilder`]).
    pub fn builder() -> BfTreeBuilder {
        BfTreeBuilder::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
    use bftree_storage::{HeapFile, TupleLayout};

    fn relation(duplicates: Duplicates) -> Relation {
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for pk in 0..5_000u64 {
            heap.append_record(pk, pk / 11);
        }
        let attr = if duplicates == Duplicates::Unique {
            PK_OFFSET
        } else {
            ATT1_OFFSET
        };
        Relation::new(heap, attr, duplicates).unwrap()
    }

    #[test]
    fn builder_builds_and_derives_duplicates() {
        let rel = relation(Duplicates::Unique);
        let tree = BfTree::builder().fpp(1e-3).build(&rel).unwrap();
        assert_eq!(tree.config().duplicates, DuplicateHandling::FirstPageOnly);
        assert!(tree.n_keys() > 0);

        let rel = relation(Duplicates::Scattered);
        let tree = BfTree::builder().fpp(1e-3).build(&rel).unwrap();
        assert_eq!(
            tree.config().duplicates,
            DuplicateHandling::AllCoveringPages
        );
    }

    #[test]
    fn builder_rejects_bad_fpp_with_typed_error() {
        let rel = relation(Duplicates::Unique);
        let err = BfTree::builder().fpp(0.0).build(&rel).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig { what: "fpp", .. }));
        assert!(err.to_string().contains("fpp must be in (0,1)"));
    }

    #[test]
    fn builder_pins_override_derivation() {
        let rel = relation(Duplicates::Unique);
        let tree = BfTree::builder()
            .duplicates(DuplicateHandling::AllCoveringPages)
            .build(&rel)
            .unwrap();
        assert_eq!(
            tree.config().duplicates,
            DuplicateHandling::AllCoveringPages
        );
    }

    #[test]
    fn empty_tree_is_insertable() {
        let rel = relation(Duplicates::Unique);
        let mut tree = BfTree::builder().empty(&rel).unwrap();
        tree.insert(42, 0, Some(rel.heap()), rel.attr());
        assert_eq!(tree.n_keys(), 1);
    }

    #[test]
    fn knobs_reach_the_config() {
        let rel = relation(Duplicates::Unique);
        let tree = BfTree::builder()
            .fpp(1e-2)
            .pages_per_bf(2)
            .seed(7)
            .k_strategy(KStrategy::Fixed(3))
            .probe_order(ProbeOrder::Interpolated)
            .bit_allocation(BitAllocation::Proportional)
            .build(&rel)
            .unwrap();
        let c = tree.config();
        assert_eq!(c.fpp, 1e-2);
        assert_eq!(c.pages_per_bf, 2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.k_strategy, KStrategy::Fixed(3));
        assert_eq!(c.probe_order, ProbeOrder::Interpolated);
        assert_eq!(c.bit_allocation, BitAllocation::Proportional);
    }
}
