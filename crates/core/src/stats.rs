//! Probe result and aggregate statistics (Table 3's "false reads per
//! search").

use bftree_storage::PageId;

/// Outcome of one BF-Tree probe (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct ProbeResult {
    /// Matching tuples as `(page id, slot)`.
    pub matches: Vec<(PageId, usize)>,
    /// Data pages fetched.
    pub pages_read: u64,
    /// Data pages fetched that contained no match (Table 3's metric).
    pub false_reads: u64,
    /// Bloom filters tested.
    pub bfs_probed: u64,
    /// Tuples examined while scanning fetched pages.
    pub tuples_scanned: u64,
    /// Leaves visited (≥ 1 unless the key misses the tree's key range).
    pub leaves_visited: u64,
}

impl ProbeResult {
    /// Whether any tuple matched.
    pub fn found(&self) -> bool {
        !self.matches.is_empty()
    }
}

/// Aggregate over many probes.
#[derive(Debug, Clone, Default)]
pub struct ProbeStats {
    /// Number of probes aggregated.
    pub probes: u64,
    /// Probes with at least one match.
    pub hits: u64,
    /// Total data pages fetched.
    pub pages_read: u64,
    /// Total false reads.
    pub false_reads: u64,
    /// Total filters probed.
    pub bfs_probed: u64,
    /// Total tuples scanned.
    pub tuples_scanned: u64,
}

impl ProbeStats {
    /// Fold one probe into the aggregate.
    pub fn add(&mut self, r: &ProbeResult) {
        self.probes += 1;
        self.hits += u64::from(r.found());
        self.pages_read += r.pages_read;
        self.false_reads += r.false_reads;
        self.bfs_probed += r.bfs_probed;
        self.tuples_scanned += r.tuples_scanned;
    }

    /// Mean false reads per search — Table 3.
    pub fn false_reads_per_search(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.false_reads as f64 / self.probes as f64
    }

    /// Mean data pages fetched per search.
    pub fn pages_per_search(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.pages_read as f64 / self.probes as f64
    }

    /// Hit rate over the aggregated probes.
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.hits as f64 / self.probes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_math() {
        let mut s = ProbeStats::default();
        s.add(&ProbeResult {
            matches: vec![(0, 1)],
            pages_read: 3,
            false_reads: 2,
            bfs_probed: 10,
            tuples_scanned: 48,
            leaves_visited: 1,
        });
        s.add(&ProbeResult::default());
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits, 1);
        assert!((s.false_reads_per_search() - 1.0).abs() < 1e-12);
        assert!((s.pages_per_search() - 1.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ProbeStats::default();
        assert_eq!(s.false_reads_per_search(), 0.0);
        assert_eq!(s.pages_per_search(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }
}
