//! Index intersections (§8, "Complex index operations with BF-Trees"):
//! two BF-Trees over the *same* relation, probed with one key each —
//! only pages that match in **both** indexes are fetched.
//!
//! The payoff is multiplicative accuracy: "the false positive
//! probability for any key after the intersection of two indexes will
//! be the product of the probability for each index, and hence,
//! typically much smaller than both."

use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, PageDevice, PageId};

use crate::stats::ProbeResult;
use crate::tree::BfTree;

/// One side of an intersection: an index on some attribute of the
/// shared relation, plus the key to probe it with.
#[derive(Debug, Clone, Copy)]
pub struct IndexPredicate<'a> {
    /// The BF-Tree over the shared relation.
    pub tree: &'a BfTree,
    /// The attribute it indexes.
    pub attr: AttrOffset,
    /// The equality key to probe.
    pub key: u64,
}

impl IndexPredicate<'_> {
    /// Candidate data pages per this index alone (filters only — no
    /// data access), charging one leaf read per visited leaf.
    fn candidate_pages(&self, idx_dev: Option<&PageDevice>) -> Vec<PageId> {
        let mut pages = Vec::new();
        for leaf_idx in self.tree.candidate_leaves(self.key, idx_dev) {
            let leaf = self.tree.leaf(leaf_idx);
            if let Some(d) = idx_dev {
                d.read_random(BfTree::leaf_page_id(leaf_idx));
            }
            if leaf.covers_key(self.key) && !leaf.is_deleted(self.key) {
                leaf.matching_pages(self.key, &mut pages);
            }
        }
        pages.sort_unstable();
        pages.dedup();
        pages
    }
}

/// Probe the conjunction `a.attr = a.key AND b.attr = b.key` using the
/// page-set intersection of both indexes, then verify tuples on the
/// fetched pages.
///
/// Matching pages are fetched as one sorted batch (adjacent pages at
/// sequential cost), exactly like a single-index probe.
pub fn probe_intersection(
    a: IndexPredicate<'_>,
    b: IndexPredicate<'_>,
    heap: &HeapFile,
    idx_dev: Option<&PageDevice>,
    data_dev: Option<&PageDevice>,
) -> ProbeResult {
    let pa = a.candidate_pages(idx_dev);
    let pb = b.candidate_pages(idx_dev);

    // Sorted-set intersection.
    let mut pages = Vec::with_capacity(pa.len().min(pb.len()));
    let (mut i, mut j) = (0, 0);
    while i < pa.len() && j < pb.len() {
        match pa[i].cmp(&pb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                pages.push(pa[i]);
                i += 1;
                j += 1;
            }
        }
    }

    let mut result = ProbeResult {
        bfs_probed: (pa.len() + pb.len()) as u64, // lower bound: matched filters
        ..ProbeResult::default()
    };
    let mut prev: Option<PageId> = None;
    for pid in pages {
        if pid >= heap.page_count() {
            continue;
        }
        if let Some(d) = data_dev {
            match prev {
                Some(q) if pid == q + 1 => d.read_seq(pid),
                _ => d.read_random(pid),
            }
        }
        prev = Some(pid);
        result.pages_read += 1;
        let mut any = false;
        for slot in 0..heap.tuples_in_page(pid) {
            result.tuples_scanned += 1;
            if heap.attr(pid, slot, a.attr) == a.key && heap.attr(pid, slot, b.attr) == b.key {
                result.matches.push((pid, slot));
                any = true;
            }
        }
        if !any {
            result.false_reads += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BfTreeConfig;
    use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
    use bftree_storage::TupleLayout;

    fn setup() -> (HeapFile, BfTree, BfTree) {
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for pk in 0..20_000u64 {
            heap.append_record(pk, pk / 7);
        }
        let config = BfTreeConfig {
            fpp: 1e-3,
            ..BfTreeConfig::ordered_default()
        };
        let a = BfTree::bulk_build(config, &heap, PK_OFFSET);
        let b = BfTree::bulk_build(config, &heap, ATT1_OFFSET);
        (heap, a, b)
    }

    #[test]
    fn consistent_conjunction_finds_the_tuple() {
        let (heap, a, b) = setup();
        let pk = 10_003u64;
        let r = probe_intersection(
            IndexPredicate {
                tree: &a,
                attr: PK_OFFSET,
                key: pk,
            },
            IndexPredicate {
                tree: &b,
                attr: ATT1_OFFSET,
                key: pk / 7,
            },
            &heap,
            None,
            None,
        );
        assert_eq!(r.matches.len(), 1);
        let (pid, slot) = r.matches[0];
        assert_eq!(heap.attr(pid, slot, PK_OFFSET), pk);
    }

    #[test]
    fn contradictory_conjunction_matches_nothing() {
        let (heap, a, b) = setup();
        // pk 100 has ATT1 = 14, so pairing it with ATT1 = 999 is empty.
        let r = probe_intersection(
            IndexPredicate {
                tree: &a,
                attr: PK_OFFSET,
                key: 100,
            },
            IndexPredicate {
                tree: &b,
                attr: ATT1_OFFSET,
                key: 999,
            },
            &heap,
            None,
            None,
        );
        assert!(r.matches.is_empty());
    }

    #[test]
    fn intersection_reads_no_more_pages_than_either_side() {
        let (heap, a, b) = setup();
        let pk = 7_777u64;
        let single = a.probe_impl(
            pk,
            &heap,
            PK_OFFSET,
            None,
            None,
            false,
            &mut crate::tree::ProbeScratch::default(),
        );
        let both = probe_intersection(
            IndexPredicate {
                tree: &a,
                attr: PK_OFFSET,
                key: pk,
            },
            IndexPredicate {
                tree: &b,
                attr: ATT1_OFFSET,
                key: pk / 7,
            },
            &heap,
            None,
            None,
        );
        assert!(both.pages_read <= single.pages_read.max(1));
        assert_eq!(both.matches.len(), 1);
    }

    #[test]
    fn device_charging_is_bounded_by_page_count() {
        use bftree_storage::DeviceKind;
        let (heap, a, b) = setup();
        let data = PageDevice::cold(DeviceKind::Ssd);
        let r = probe_intersection(
            IndexPredicate {
                tree: &a,
                attr: PK_OFFSET,
                key: 5,
            },
            IndexPredicate {
                tree: &b,
                attr: ATT1_OFFSET,
                key: 0,
            },
            &heap,
            None,
            Some(&data),
        );
        assert_eq!(data.snapshot().device_reads(), r.pages_read);
    }
}
