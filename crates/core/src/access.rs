//! [`AccessMethod`] implementation: the BF-Tree behind the unified
//! index interface.

use std::cell::RefCell;

use bftree_access::{
    check_relation, AccessMethod, BuildError, Continuation, FirstMatch, IndexStats, MatchSink,
    Probe, ProbeError, ProbeIo, RangeCursor,
};
use bftree_storage::{IoContext, PageId, Relation};

use crate::builder::BfTreeBuilder;
use crate::scan::BfRangeCursor;
use crate::stats::ProbeResult;
use crate::tree::{BfTree, ProbeScratch};

impl From<ProbeResult> for Probe {
    fn from(r: ProbeResult) -> Self {
        Probe {
            matches: r.matches,
            pages_read: r.pages_read,
            false_reads: r.false_reads,
        }
    }
}

std::thread_local! {
    /// One probe scratch per thread: the trait's probe signatures take
    /// `&self`, so reuse lives here — every scalar or batched probe on
    /// this thread runs allocation-free once the buffers are warm.
    static SCRATCH: RefCell<ProbeScratch> = RefCell::new(ProbeScratch::default());
}

fn with_scratch<R>(f: impl FnOnce(&mut ProbeScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

impl AccessMethod for BfTree {
    fn name(&self) -> &'static str {
        "bf-tree"
    }

    fn build(&mut self, rel: &Relation) -> Result<(), BuildError> {
        // Re-derive duplicate handling from the relation: it is a
        // property of the data, not of the old tree.
        let rebuilt = BfTreeBuilder::default()
            .config(*self.config())
            .duplicates_from_relation()
            .build(rel)?;
        *self = rebuilt;
        Ok(())
    }

    fn probe_into(
        &self,
        key: u64,
        rel: &Relation,
        io: &IoContext,
        sink: &mut dyn MatchSink,
    ) -> Result<ProbeIo, ProbeError> {
        check_relation(rel)?;
        let r = with_scratch(|scratch| {
            self.probe_sink_impl(
                key,
                rel.heap(),
                rel.attr(),
                Some(&io.index),
                Some(&io.data),
                false,
                scratch,
                sink,
            )
        });
        Ok(ProbeIo {
            pages_read: r.pages_read,
            false_reads: r.false_reads,
        })
    }

    /// Override: the paper's first-match shortcut also switches the
    /// candidate-page order to interpolated distance (near-uniform
    /// ordered data puts the true page first), which only pays when
    /// the probe stops at the first hit — the generic
    /// [`FirstMatch`]-sink default cannot know to do that.
    fn probe_first(&self, key: u64, rel: &Relation, io: &IoContext) -> Result<Probe, ProbeError> {
        let _span = bftree_obs::span(bftree_obs::SpanKind::Probe);
        check_relation(rel)?;
        let mut first = FirstMatch::default();
        let r = with_scratch(|scratch| {
            self.probe_sink_impl(
                key,
                rel.heap(),
                rel.attr(),
                Some(&io.index),
                Some(&io.data),
                true,
                scratch,
                &mut first,
            )
        });
        Ok(Probe {
            matches: first.found.into_iter().collect(),
            pages_read: r.pages_read,
            false_reads: r.false_reads,
        })
    }

    fn probe_batch(
        &self,
        keys: &[u64],
        rel: &Relation,
        io: &IoContext,
    ) -> Result<Vec<Probe>, ProbeError> {
        let mut span = bftree_obs::span(bftree_obs::SpanKind::BatchProbe);
        span.set_detail(keys.len() as u64);
        check_relation(rel)?;
        let mut out: Vec<Probe> = Vec::with_capacity(keys.len());
        out.resize_with(keys.len(), Probe::default);
        with_scratch(|scratch| {
            self.probe_batch_each(
                keys,
                rel.heap(),
                rel.attr(),
                Some(&io.index),
                Some(&io.data),
                scratch,
                |slot, result| out[slot] = result.into(),
            )
        });
        Ok(out)
    }

    fn range_cursor<'c>(
        &'c self,
        lo: u64,
        hi: u64,
        rel: &'c Relation,
        io: &'c IoContext,
    ) -> Result<Box<dyn RangeCursor + 'c>, ProbeError> {
        check_relation(rel)?;
        if lo > hi {
            return Err(ProbeError::InvertedRange { lo, hi });
        }
        Ok(Box::new(BfRangeCursor::open(self, lo, hi, rel, io)))
    }

    fn resume_range_cursor<'c>(
        &'c self,
        cont: &Continuation,
        rel: &'c Relation,
        io: &'c IoContext,
    ) -> Result<Box<dyn RangeCursor + 'c>, ProbeError> {
        check_relation(rel)?;
        Ok(Box::new(BfRangeCursor::resume(self, cont, rel, io)))
    }

    fn insert(&mut self, key: u64, loc: (PageId, usize), rel: &Relation) -> Result<(), ProbeError> {
        check_relation(rel)?;
        BfTree::insert(self, key, loc.0, Some(rel.heap()), rel.attr());
        Ok(())
    }

    fn insert_batch(
        &mut self,
        entries: &[(u64, (PageId, usize))],
        rel: &Relation,
    ) -> Result<(), ProbeError> {
        check_relation(rel)?;
        let batch: Vec<(u64, PageId)> = entries.iter().map(|&(key, (pid, _))| (key, pid)).collect();
        BfTree::insert_batch(self, &batch, Some(rel.heap()), rel.attr());
        Ok(())
    }

    fn delete(&mut self, key: u64, rel: &Relation) -> Result<u64, ProbeError> {
        check_relation(rel)?;
        Ok(BfTree::delete(self, key) as u64)
    }

    fn size_bytes(&self) -> u64 {
        BfTree::size_bytes(self)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            pages: self.total_pages(),
            bytes: BfTree::size_bytes(self),
            height: self.height(),
            entries: self.n_keys(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bftree_storage::tuple::PK_OFFSET;
    use bftree_storage::{Duplicates, HeapFile, TupleLayout};

    fn relation() -> Relation {
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for pk in 0..5_000u64 {
            heap.append_record(pk, pk / 11);
        }
        Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap()
    }

    #[test]
    fn trait_probe_matches_inherent() {
        let rel = relation();
        let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
        let io = IoContext::unmetered();
        let am: &dyn AccessMethod = &tree;
        let hit = am.probe(4_242, &rel, &io).unwrap();
        assert_eq!(hit.matches.len(), 1);
        let miss = am.probe(99_999_999, &rel, &io).unwrap();
        assert!(!miss.found());
    }

    #[test]
    fn trait_build_rebuilds_in_place() {
        let rel = relation();
        let mut tree = BfTree::builder().fpp(1e-3).empty(&rel).unwrap();
        let am: &mut dyn AccessMethod = &mut tree;
        am.build(&rel).unwrap();
        assert!(am.stats().entries == 5_000);
    }

    #[test]
    fn trait_range_scan_rejects_inverted_ranges() {
        let rel = relation();
        let tree = BfTree::builder().build(&rel).unwrap();
        let io = IoContext::unmetered();
        let err = AccessMethod::range_scan(&tree, 10, 5, &rel, &io).unwrap_err();
        assert_eq!(err, ProbeError::InvertedRange { lo: 10, hi: 5 });
    }
}
