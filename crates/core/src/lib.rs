//! # BF-Tree: Approximate Tree Indexing
//!
//! From-scratch reproduction of the BF-Tree of Athanassoulis & Ailamaki
//! (PVLDB 7(14), VLDB 2014): a tree index whose leaves hold **Bloom
//! filters over page ranges** instead of exact `⟨key, pointer⟩` pairs,
//! trading a parameterizable amount of indexing accuracy (false
//! positive probability, *fpp*) for a drastically smaller index —
//! 2.2×–48× smaller than a B+-Tree in the paper's experiments.
//!
//! A BF-Tree assumes the data file is *ordered or partitioned* on the
//! indexed attribute (the paper's "implicit clustering"): each BF-leaf
//! covers a contiguous page range `[min_pid, max_pid]` and key range
//! `[min_key, max_key]`, and stores `S` Bloom filters, one per page (or
//! per group of `c` consecutive pages). A probe routes through ordinary
//! B+-Tree internal nodes to a BF-leaf, tests all its filters, and
//! fetches only the matching pages.
//!
//! ```
//! use bftree::BfTree;
//! use bftree_access::AccessMethod;
//! use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, TupleLayout};
//! use bftree_storage::tuple::PK_OFFSET;
//!
//! // A small relation ordered on its primary key.
//! let mut heap = HeapFile::new(TupleLayout::new(256));
//! for pk in 0..10_000u64 {
//!     heap.append_record(pk, pk / 11);
//! }
//! let relation = Relation::new(heap, PK_OFFSET, Duplicates::Unique)?;
//!
//! let tree = BfTree::builder().fpp(1e-3).build(&relation)?;
//!
//! let index: &dyn AccessMethod = &tree;
//! let probe = index.probe(4242, &relation, &IoContext::unmetered())?;
//! assert_eq!(probe.matches.len(), 1);
//! assert!(tree.total_pages() < 100); // far smaller than a B+-Tree
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Modules:
//! * [`config`] — tuning knobs: fpp, pages-per-BF granularity, hash
//!   strategy, split strategy.
//! * [`builder`] — typed, fallible construction over a
//!   [`bftree_storage::Relation`].
//! * [`access`] — the [`bftree_access::AccessMethod`] implementation.
//! * [`leaf`] — the BF-leaf (§4.1).
//! * [`tree`] — bulk load, Algorithm 1 (search), Algorithm 3 (insert),
//!   Algorithm 2 (split), deletes.
//! * [`scan`] — range scans over partitions (§7, Figure 13): the
//!   pull-based [`scan::BfRangeCursor`] core plus the §7
//!   boundary-probing scan.
//! * [`stats`] — probe statistics: false reads, pages fetched, BFs
//!   probed (Table 3).

#![warn(missing_docs)]

pub mod access;
pub mod builder;
pub mod config;
pub mod intersect;
pub mod leaf;
pub mod page_image;
pub mod scan;
pub mod stats;
pub mod tree;

pub use bftree_access::{AccessMethod, BuildError, IndexStats, Probe, ProbeError, RangeScan};
pub use builder::BfTreeBuilder;
pub use config::{
    BfTreeConfig, BitAllocation, DuplicateHandling, FilterLayout, KStrategy, ProbeOrder,
    SplitStrategy,
};
pub use intersect::{probe_intersection, IndexPredicate};
pub use leaf::BfLeaf;
pub use page_image::PageImageError;
pub use stats::{ProbeResult, ProbeStats};
pub use tree::{BfTree, ProbeScratch};
