//! The BF-leaf (§4.1): Bloom filters over a page range.

use bftree_bloom::hash::KeyFingerprint;
use bftree_bloom::BloomGroup;
use bftree_storage::PageId;

use crate::config::BfTreeConfig;

/// A BF-Tree leaf node.
///
/// Covers data pages `[min_pid, max_pid]` and keys
/// `[min_key, max_key]`, holding one Bloom filter per group of
/// `pages_per_bf` consecutive pages. The filters share the leaf page's
/// bit budget evenly (Property 1 keeps the fpp unchanged under that
/// split). `#keys` tracks how many distinct keys the leaf has indexed
/// so the tree can split it before the target fpp erodes.
#[derive(Debug, Clone)]
pub struct BfLeaf {
    /// Smallest indexed key.
    pub min_key: u64,
    /// Largest indexed key.
    pub max_key: u64,
    /// First covered data page.
    pub min_pid: PageId,
    /// Last covered data page.
    pub max_pid: PageId,
    /// The paper's `#keys`: distinct keys indexed.
    pub n_keys: u64,
    /// Right sibling (leaf arena index).
    pub next: Option<u32>,
    /// Left sibling (needed when a duplicate run spans leaves).
    pub prev: Option<u32>,
    /// Tombstones for logically deleted keys (§7's deleted-keys list).
    pub deleted: Vec<u64>,
    group: BloomGroup,
    pages_per_bf: u64,
}

impl BfLeaf {
    /// Build a leaf from per-page distinct key lists.
    ///
    /// `pages` holds `(pid, distinct keys in that page)` for a
    /// contiguous ascending pid range; `n_distinct` is the number of
    /// distinct keys across the whole leaf (a key spanning pages counts
    /// once, but is inserted into every page's filter, as Algorithm 2
    /// lines 20–29 prescribe).
    pub fn from_pages(
        config: &BfTreeConfig,
        pages: &[(PageId, Vec<u64>)],
        n_distinct: u64,
    ) -> Self {
        assert!(!pages.is_empty(), "leaf must cover at least one page");
        let min_pid = pages[0].0;
        let max_pid = pages[pages.len() - 1].0;
        debug_assert!(
            pages.windows(2).all(|w| w[1].0 == w[0].0 + 1),
            "pids must be contiguous"
        );

        let s = Self::buckets_for(min_pid, max_pid, config.pages_per_bf);
        let total_bits = config.leaf_filter_bits();
        let mut group = match config.bit_allocation {
            crate::config::BitAllocation::Uniform => {
                let per_filter_keys = (n_distinct.max(1)).div_ceil(s as u64);
                let k = config.k_for((total_bits / s as u64).max(1), per_filter_keys);
                BloomGroup::new_with_layout(total_bits, s, k, config.seed, config.filter_layout)
            }
            crate::config::BitAllocation::Proportional => {
                // Weight each bucket by the keys it will receive, so
                // bits-per-key (and the fpp) stay uniform across
                // buckets regardless of per-page skew.
                let mut weights = vec![0u64; s];
                for (pid, keys) in pages {
                    weights[((pid - min_pid) / config.pages_per_bf) as usize] += keys.len() as u64;
                }
                // The global bits-per-key ratio sets k (Equation 1).
                let k = config.k_for(total_bits, n_distinct.max(1));
                BloomGroup::new_weighted_with_layout(
                    total_bits,
                    &weights,
                    k,
                    config.seed,
                    config.filter_layout,
                )
            }
        };

        let mut min_key = u64::MAX;
        let mut max_key = 0u64;
        for (pid, keys) in pages {
            let bucket = ((pid - min_pid) / config.pages_per_bf) as usize;
            for &key in keys {
                group.insert(bucket, &key);
                min_key = min_key.min(key);
                max_key = max_key.max(key);
            }
        }
        if min_key == u64::MAX {
            // Leaf over empty pages: degenerate but legal.
            min_key = 0;
            max_key = 0;
        }

        Self {
            min_key,
            max_key,
            min_pid,
            max_pid,
            n_keys: n_distinct,
            next: None,
            prev: None,
            deleted: Vec::new(),
            group,
            pages_per_bf: config.pages_per_bf,
        }
    }

    /// An empty leaf anchored at page `pid` (the initial node of a
    /// freshly created BF-Tree, §4.2).
    pub fn empty(config: &BfTreeConfig, pid: PageId) -> Self {
        let total_bits = config.leaf_filter_bits();
        let k = config.k_for(total_bits, config.max_keys_per_leaf());
        Self {
            min_key: u64::MAX,
            max_key: 0,
            min_pid: pid,
            max_pid: pid,
            n_keys: 0,
            next: None,
            prev: None,
            deleted: Vec::new(),
            group: BloomGroup::new_with_layout(total_bits, 1, k, config.seed, config.filter_layout),
            pages_per_bf: config.pages_per_bf,
        }
    }

    fn buckets_for(min_pid: PageId, max_pid: PageId, pages_per_bf: u64) -> usize {
        ((max_pid - min_pid + 1).div_ceil(pages_per_bf)) as usize
    }

    /// Number of Bloom filters `S`.
    pub fn n_filters(&self) -> usize {
        self.group.len()
    }

    /// Number of data pages covered.
    pub fn n_pages(&self) -> u64 {
        if self.n_keys == 0 && self.min_key > self.max_key {
            0
        } else {
            self.max_pid - self.min_pid + 1
        }
    }

    /// Whether `key` falls into this leaf's key range (Algorithm 1,
    /// line 4).
    pub fn covers_key(&self, key: u64) -> bool {
        self.n_keys > 0 && (self.min_key..=self.max_key).contains(&key)
    }

    /// Whether `pid` falls into this leaf's page range.
    pub fn covers_pid(&self, pid: PageId) -> bool {
        (self.min_pid..=self.max_pid).contains(&pid)
    }

    /// Bucket (filter index) of data page `pid`.
    pub fn bucket_of(&self, pid: PageId) -> usize {
        debug_assert!(self.covers_pid(pid));
        ((pid - self.min_pid) / self.pages_per_bf) as usize
    }

    /// Whether `key` is tombstoned.
    pub fn is_deleted(&self, key: u64) -> bool {
        self.deleted.contains(&key)
    }

    /// Probe all `S` filters with `key` and append the candidate data
    /// pages (expanded from matching buckets) to `out`, in ascending
    /// pid order. Returns the number of filters probed.
    pub fn matching_pages(&self, key: u64, out: &mut Vec<PageId>) -> u64 {
        let fp = KeyFingerprint::new(&key, self.group.seed());
        let mut buckets = Vec::new();
        self.matching_pages_fp(&fp, out, &mut buckets)
    }

    /// [`Self::matching_pages`] over a precomputed fingerprint and a
    /// caller-provided bucket buffer — the allocation-free entry the
    /// probe pipeline uses: a batched probe hashes each key once and
    /// sweeps every candidate leaf with the same fingerprint (probe
    /// positions depend only on member geometry, and all leaves share
    /// the tree's hash seed).
    pub fn matching_pages_fp(
        &self,
        fp: &KeyFingerprint,
        out: &mut Vec<PageId>,
        buckets: &mut Vec<usize>,
    ) -> u64 {
        buckets.clear();
        self.group.matching_buckets_fp_into(fp, buckets);
        bftree_obs::note_filter_probes(self.group.len() as u64);
        for &b in buckets.iter() {
            let start = self.min_pid + b as u64 * self.pages_per_bf;
            let end = (start + self.pages_per_bf - 1).min(self.max_pid);
            for pid in start..=end {
                out.push(pid);
            }
        }
        self.group.len() as u64
    }

    /// Parallel variant of [`Self::matching_pages`] (§8: "These probes
    /// can be parallelized if there are enough CPU resources
    /// available"): `n_threads` workers sweep disjoint bucket ranges.
    /// Results are identical to the serial sweep, in the same
    /// ascending-pid order.
    pub fn matching_pages_parallel(
        &self,
        key: u64,
        out: &mut Vec<PageId>,
        n_threads: usize,
    ) -> u64 {
        let s = self.group.len();
        let threads = n_threads.clamp(1, s.max(1));
        if threads <= 1 || s < 2 * threads {
            return self.matching_pages(key, out);
        }
        let chunk = s.div_ceil(threads);
        let parts: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let group = &self.group;
                    scope.spawn(move || {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(s);
                        let mut local = Vec::new();
                        group.matching_buckets_range_into(&key, lo, hi, &mut local);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("probe worker panicked"))
                .collect()
        });
        for bucket in parts.into_iter().flatten() {
            let start = self.min_pid + bucket as u64 * self.pages_per_bf;
            let end = (start + self.pages_per_bf - 1).min(self.max_pid);
            for pid in start..=end {
                out.push(pid);
            }
        }
        // Attribute the workers' probes to the calling thread: op
        // counters are thread-local and the open span lives here.
        bftree_obs::note_filter_probes(s as u64);
        s as u64
    }

    /// Insert `key` residing on page `pid` (Algorithm 3 lines 2–6):
    /// extends the key range, extends the page range (growing the
    /// filter group) if needed, sets the filter bits and bumps `#keys`.
    pub fn insert(&mut self, key: u64, pid: PageId) {
        if pid > self.max_pid {
            self.max_pid = pid;
            self.group.extend_to(Self::buckets_for(
                self.min_pid,
                self.max_pid,
                self.pages_per_bf,
            ));
        }
        assert!(
            pid >= self.min_pid,
            "cannot extend a leaf's page range downward"
        );
        if self.n_keys == 0 {
            self.min_key = key;
            self.max_key = key;
        } else {
            self.min_key = self.min_key.min(key);
            self.max_key = self.max_key.max(key);
        }
        let bucket = self.bucket_of(pid);
        self.group.insert(bucket, &key);
        self.n_keys += 1;
        self.deleted.retain(|&d| d != key); // re-inserted key is live again
    }

    /// Direct access to the filter group (used by `ProbeDomain` splits
    /// and the test suite).
    pub fn group(&self) -> &BloomGroup {
        &self.group
    }

    /// Indexing granularity: consecutive data pages per filter.
    pub fn pages_per_bf(&self) -> u64 {
        self.pages_per_bf
    }

    /// Reassemble a leaf from its stored parts (page-image
    /// deserialization); `config` is consulted only for validation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        min_key: u64,
        max_key: u64,
        min_pid: PageId,
        max_pid: PageId,
        n_keys: u64,
        group: BloomGroup,
        pages_per_bf: u64,
        config: &BfTreeConfig,
    ) -> Self {
        config.validate();
        Self {
            min_key,
            max_key,
            min_pid,
            max_pid,
            n_keys,
            next: None,
            prev: None,
            deleted: Vec::new(),
            group,
            pages_per_bf,
        }
    }

    /// Estimated *current* fpp of the leaf's filters, from their fill
    /// ratios — this is what drifts upward under inserts (Figure 14).
    pub fn current_fpp(&self) -> f64 {
        if self.group.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.group.len())
            .map(|b| self.group.current_fpp(b))
            .sum();
        sum / self.group.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BfTreeConfig {
        BfTreeConfig {
            fpp: 1e-3,
            ..BfTreeConfig::paper_default()
        }
    }

    fn leaf_over(pages: &[(PageId, Vec<u64>)]) -> BfLeaf {
        let distinct: std::collections::HashSet<u64> = pages
            .iter()
            .flat_map(|(_, ks)| ks.iter().copied())
            .collect();
        BfLeaf::from_pages(&cfg(), pages, distinct.len() as u64)
    }

    #[test]
    fn covers_and_ranges() {
        let l = leaf_over(&[(10, vec![100, 101]), (11, vec![102, 103]), (12, vec![104])]);
        assert_eq!(l.n_filters(), 3);
        assert_eq!(l.n_pages(), 3);
        assert!(l.covers_key(102));
        assert!(!l.covers_key(99));
        assert!(!l.covers_key(105));
        assert!(l.covers_pid(11));
        assert!(!l.covers_pid(13));
        assert_eq!((l.min_key, l.max_key), (100, 104));
    }

    #[test]
    fn matching_pages_finds_home_page() {
        let pages: Vec<(PageId, Vec<u64>)> = (0..50u64)
            .map(|p| (p + 100, (p * 10..p * 10 + 10).collect()))
            .collect();
        let l = leaf_over(&pages);
        let mut out = Vec::new();
        for key in 0..500u64 {
            out.clear();
            let probed = l.matching_pages(key, &mut out);
            assert_eq!(probed, 50);
            assert!(
                out.contains(&(key / 10 + 100)),
                "key {key} home page missing"
            );
        }
    }

    #[test]
    fn spanning_key_matches_every_covering_page() {
        // Key 7 lives on pages 0,1,2.
        let l = leaf_over(&[(0, vec![7]), (1, vec![7]), (2, vec![7, 8])]);
        let mut out = Vec::new();
        l.matching_pages(7, &mut out);
        assert!(out.contains(&0) && out.contains(&1) && out.contains(&2));
    }

    #[test]
    fn coarser_granularity_reduces_filters_but_widens_fetches() {
        let config = BfTreeConfig {
            pages_per_bf: 4,
            ..cfg()
        };
        let pages: Vec<(PageId, Vec<u64>)> =
            (0..8u64).map(|p| (p, vec![p * 2, p * 2 + 1])).collect();
        let l = BfLeaf::from_pages(&config, &pages, 16);
        assert_eq!(l.n_filters(), 2);
        let mut out = Vec::new();
        l.matching_pages(0, &mut out);
        // Bucket 0 expands to its whole 4-page group.
        assert!(out.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(out.contains(&0) && out.contains(&3));
    }

    #[test]
    fn insert_extends_ranges_and_filters() {
        let mut l = BfLeaf::empty(&cfg(), 5);
        l.insert(42, 5);
        assert!(l.covers_key(42));
        assert_eq!(l.n_keys, 1);
        l.insert(50, 7); // extends page range by two pages
        assert_eq!(l.n_filters(), 3);
        assert!(l.covers_pid(7));
        let mut out = Vec::new();
        l.matching_pages(50, &mut out);
        assert!(out.contains(&7));
        assert_eq!((l.min_key, l.max_key), (42, 50));
    }

    #[test]
    #[should_panic(expected = "downward")]
    fn insert_below_min_pid_panics() {
        let mut l = BfLeaf::empty(&cfg(), 5);
        l.insert(1, 4);
    }

    #[test]
    fn tombstones() {
        let mut l = BfLeaf::empty(&cfg(), 0);
        l.insert(9, 0);
        l.deleted.push(9);
        assert!(l.is_deleted(9));
        l.insert(9, 0);
        assert!(!l.is_deleted(9), "re-insert revives the key");
    }

    #[test]
    fn current_fpp_grows_with_load() {
        let mut l = BfLeaf::empty(&cfg(), 0);
        let before = l.current_fpp();
        for k in 0..5_000u64 {
            l.insert(k, 0);
        }
        assert!(l.current_fpp() > before);
    }

    #[test]
    fn empty_leaf_covers_nothing() {
        let l = BfLeaf::empty(&cfg(), 3);
        assert!(!l.covers_key(0));
        assert_eq!(l.n_keys, 0);
    }
}
