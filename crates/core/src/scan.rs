//! Range scans over BF-Tree partitions (§7, Figure 13).
//!
//! A BF-leaf corresponds to one partition of the main data. A range
//! scan touches *middle* partitions entirely and *boundary* partitions
//! partially; reading boundary partitions whole is the overhead
//! Figure 13 measures. The §7 optimization — enumerate the boundary
//! values and probe the BFs to fetch only useful pages — is
//! implemented as [`BfTree::scan_range_probing`].
//!
//! The scan core itself is the pull-based [`BfRangeCursor`]: the
//! partition walk paused between data pages, with a resumable
//! continuation frontier. `AccessMethod::range_scan` is its full
//! drain.

use bftree_access::{scan_page_in_range, Continuation, RangeCursor, ScanIo};
use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, IoContext, PageDevice, PageId, Relation};

use crate::tree::BfTree;

/// Outcome of a range scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeScanResult {
    /// Matching tuples as `(page id, slot)`, in page order.
    pub matches: Vec<(PageId, usize)>,
    /// Data pages read.
    pub pages_read: u64,
    /// Data pages read that contained no tuple in range (the boundary
    /// overhead).
    pub overhead_pages: u64,
    /// Leaves (partitions) visited.
    pub leaves_visited: u64,
}

/// The BF-Tree's native [`RangeCursor`]: the partition walk of the old
/// materializing scan, paused between data pages.
///
/// Creation charges the index descent to the first overlapping leaf;
/// each [`RangeCursor::next_page_matches`] charges exactly one data
/// page (plus the leaf read whenever the walk enters the next
/// partition), so early termination — a `limit(k)` pagination pull —
/// stops the scan's I/O at a bounded prefix of the range. A full
/// drain performs, charge for charge in the same order, what the
/// materializing `AccessMethod::range_scan` wrapper reports.
///
/// The continuation frontier is `(leaf min key, next data page)`;
/// resuming re-descends to that leaf and re-enters the page walk at
/// exactly the frontier page, so the consumed prefix of the range is
/// never re-read from the data device.
#[must_use]
pub struct BfRangeCursor<'c> {
    tree: &'c BfTree,
    rel: &'c Relation,
    io: &'c IoContext,
    lo: u64,
    hi: u64,
    /// Next leaf to enter (not yet charged).
    pending: Option<u32>,
    /// Entered leaf: `(arena idx, next page, last page)`.
    current: Option<(u32, PageId, PageId)>,
    /// Cross-leaf page dedup frontier (overlapping leaf ranges), also
    /// the resume frontier: pages below it are never read.
    frontier: Option<PageId>,
    /// Sub-page resume point: skip slots below it on that one page.
    resume: Option<(PageId, usize)>,
    buf: Vec<(PageId, usize)>,
    loaded: bool,
    done: bool,
    counters: ScanIo,
}

impl<'c> BfRangeCursor<'c> {
    pub(crate) fn open(
        tree: &'c BfTree,
        lo: u64,
        hi: u64,
        rel: &'c Relation,
        io: &'c IoContext,
    ) -> Self {
        Self::with_frontier(tree, lo, lo, hi, rel, io, None)
    }

    pub(crate) fn resume(
        tree: &'c BfTree,
        cont: &Continuation,
        rel: &'c Relation,
        io: &'c IoContext,
    ) -> Self {
        Self::with_frontier(
            tree,
            cont.key(),
            cont.lo(),
            cont.hi(),
            rel,
            io,
            Some((cont.page(), cont.slot())),
        )
    }

    fn with_frontier(
        tree: &'c BfTree,
        entry_key: u64,
        lo: u64,
        hi: u64,
        rel: &'c Relation,
        io: &'c IoContext,
        resume: Option<(PageId, usize)>,
    ) -> Self {
        let pending = tree.first_overlapping_leaf(entry_key, Some(&io.index));
        Self {
            tree,
            rel,
            io,
            lo,
            hi,
            pending,
            current: None,
            frontier: resume.map(|(page, _)| page),
            resume,
            buf: Vec::new(),
            loaded: false,
            done: pending.is_none(),
            counters: ScanIo::default(),
        }
    }

    /// Fetch page `pid`: one sequential read (the partition walk is a
    /// sequential sweep, exactly as the materializing scan charged it).
    fn read_page(&mut self, pid: PageId) {
        self.io.data.read_seq(pid);
        self.counters.pages_read += 1;
        self.buf.clear();
        let any = scan_page_in_range(
            self.rel.heap(),
            self.rel.attr(),
            pid,
            self.lo,
            self.hi,
            self.resume,
            &mut self.buf,
        );
        if !any {
            self.counters.overhead_pages += 1;
        }
    }
}

impl RangeCursor for BfRangeCursor<'_> {
    fn next_page_matches(&mut self) -> Option<&[(PageId, usize)]> {
        if self.done {
            return None;
        }
        if self.loaded {
            return Some(&self.buf);
        }
        loop {
            if let Some((leaf_idx, next, last)) = self.current {
                if next <= last {
                    self.read_page(next);
                    self.loaded = true;
                    return Some(&self.buf);
                }
                // Partition exhausted: move to the right sibling. The
                // frontier only ever advances — on a resume whose
                // descent landed left of the token's partition (a
                // duplicate run spanning a leaf boundary), the token's
                // page frontier is AHEAD of this leaf's range and must
                // survive the skip, or already-delivered pages would
                // be re-read and re-delivered.
                let leaf = self.tree.leaf(leaf_idx);
                self.frontier = Some(
                    self.frontier
                        .map_or(leaf.max_pid + 1, |f| f.max(leaf.max_pid + 1)),
                );
                self.pending = leaf.next;
                self.current = None;
            }
            let Some(i) = self.pending.take() else {
                self.done = true;
                return None;
            };
            let leaf = self.tree.leaf(i);
            if leaf.n_keys > 0 && leaf.min_key > self.hi {
                self.done = true;
                return None;
            }
            self.io.index.read_random(BfTree::leaf_page_id(i));
            let from = self.frontier.map_or(leaf.min_pid, |n| n.max(leaf.min_pid));
            let last = leaf
                .max_pid
                .min(self.rel.heap().page_count().saturating_sub(1));
            self.current = Some((i, from, last));
        }
    }

    fn advance(&mut self) {
        if !self.loaded {
            return;
        }
        self.loaded = false;
        self.buf.clear();
        if let Some((_, next, _)) = &mut self.current {
            *next += 1;
        }
    }

    fn continuation(&self) -> Option<Continuation> {
        if self.done {
            return None;
        }
        let (leaf_idx, page) = match (self.current, self.pending) {
            // Mid-partition: resume at the next unconsumed page.
            (Some((i, next, last)), _) if next <= last => (i, next),
            // Partition drained: resume past its page range (never
            // behind the standing frontier — see the monotone update
            // in `next_page_matches`).
            (Some((i, _, _)), _) => (
                i,
                self.frontier.map_or(self.tree.leaf(i).max_pid + 1, |f| {
                    f.max(self.tree.leaf(i).max_pid + 1)
                }),
            ),
            // Not yet entered (fresh or between leaves).
            (None, Some(i)) => (
                i,
                self.frontier.map_or(self.tree.leaf(i).min_pid, |n| {
                    n.max(self.tree.leaf(i).min_pid)
                }),
            ),
            (None, None) => return None,
        };
        let leaf = self.tree.leaf(leaf_idx);
        let key = leaf.min_key.max(self.lo).min(self.hi);
        let slot = match self.resume {
            Some((p, s)) if p == page => s,
            _ => 0,
        };
        Some(Continuation::from_parts(self.lo, self.hi, key, page, slot))
    }

    fn io(&self) -> ScanIo {
        self.counters
    }
}

impl BfTree {
    /// The §7 boundary-probing range scan over the new handle API:
    /// like `AccessMethod::range_scan`, but boundary partitions are
    /// probed per value (capped at `max_enumeration` enumerated keys
    /// per boundary leaf) instead of read whole.
    pub fn scan_range_probing(
        &self,
        lo: u64,
        hi: u64,
        rel: &Relation,
        io: &IoContext,
        max_enumeration: u64,
    ) -> RangeScanResult {
        self.range_scan_probing_impl(
            lo,
            hi,
            rel.heap(),
            rel.attr(),
            Some(&io.index),
            Some(&io.data),
            max_enumeration,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn range_scan_probing_impl(
        &self,
        lo: u64,
        hi: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&PageDevice>,
        data_dev: Option<&PageDevice>,
        max_enumeration: u64,
    ) -> RangeScanResult {
        assert!(lo <= hi);
        let mut result = RangeScanResult::default();
        let Some(start) = self.first_overlapping_leaf(lo, idx_dev) else {
            return result;
        };
        let mut next_pid: Option<PageId> = None;
        let mut idx = Some(start);
        while let Some(i) = idx {
            let leaf = self.leaf(i);
            if leaf.n_keys > 0 && leaf.min_key > hi {
                break;
            }
            if let Some(d) = idx_dev {
                d.read_random(Self::leaf_page_id(i));
            }
            result.leaves_visited += 1;

            let is_boundary = leaf.min_key < lo || leaf.max_key > hi;
            let enum_lo = lo.max(leaf.min_key);
            let enum_hi = hi.min(leaf.max_key);
            let enumerable = enum_hi.saturating_sub(enum_lo) < max_enumeration;

            let last_pid = leaf.max_pid.min(heap.page_count().saturating_sub(1));
            let from = next_pid.map_or(leaf.min_pid, |n| n.max(leaf.min_pid));
            if is_boundary && enumerable {
                // Probe the filters per value; union the candidate pages.
                let mut pages: Vec<PageId> = Vec::new();
                for key in enum_lo..=enum_hi {
                    leaf.matching_pages(key, &mut pages);
                }
                pages.sort_unstable();
                pages.dedup();
                pages.retain(|&pid| pid >= from && pid <= last_pid);
                // Under FirstPageOnly only a run's first page is in the
                // filters; a page ending with an in-range key implies
                // the run may spill into its successor, so pull that
                // page in too.
                let follow_runs =
                    self.config().duplicates == crate::config::DuplicateHandling::FirstPageOnly;
                let mut i = 0;
                while i < pages.len() {
                    let pid = pages[i];
                    self.scan_data_page(pid, lo, hi, heap, attr, data_dev, &mut result);
                    if follow_runs && pid < last_pid && pages.get(i + 1) != Some(&(pid + 1)) {
                        let n = heap.tuples_in_page(pid);
                        if n > 0 {
                            let last = heap.attr(pid, n - 1, attr);
                            if last >= lo && last <= hi {
                                pages.insert(i + 1, pid + 1);
                            }
                        }
                    }
                    i += 1;
                }
            } else {
                for pid in from..=last_pid {
                    self.scan_data_page(pid, lo, hi, heap, attr, data_dev, &mut result);
                }
            }
            next_pid = Some(leaf.max_pid + 1);
            idx = leaf.next;
        }
        result
    }

    fn first_overlapping_leaf(&self, lo: u64, idx_dev: Option<&PageDevice>) -> Option<u32> {
        let candidates = self.candidate_leaves(lo, idx_dev);
        match candidates.first() {
            Some(&first) => Some(first),
            // lo precedes every leaf's min key: start at the leftmost.
            None => {
                let mut idx = 0u32;
                while self.leaf(idx).prev.is_some() {
                    idx = self.leaf(idx).prev.expect("checked");
                }
                Some(idx)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_data_page(
        &self,
        pid: PageId,
        lo: u64,
        hi: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        data_dev: Option<&PageDevice>,
        result: &mut RangeScanResult,
    ) {
        if let Some(d) = data_dev {
            d.read_seq(pid);
        }
        result.pages_read += 1;
        let mut any = false;
        for slot in 0..heap.tuples_in_page(pid) {
            let v = heap.attr(pid, slot, attr);
            if v >= lo && v <= hi {
                result.matches.push((pid, slot));
                any = true;
            }
        }
        if !any {
            result.overhead_pages += 1;
        }
    }
}

/// The exact number of data pages containing at least one tuple in
/// `[lo, hi]` — the I/O a B+-Tree range scan performs, Figure 13's
/// denominator.
pub fn exact_range_pages(heap: &HeapFile, attr: AttrOffset, lo: u64, hi: u64) -> u64 {
    let mut n = 0;
    for pid in 0..heap.page_count() {
        let has = (0..heap.tuples_in_page(pid)).any(|slot| {
            let v = heap.attr(pid, slot, attr);
            v >= lo && v <= hi
        });
        n += u64::from(has);
    }
    n
}
