//! Range scans over BF-Tree partitions (§7, Figure 13).
//!
//! A BF-leaf corresponds to one partition of the main data. A range
//! scan touches *middle* partitions entirely and *boundary* partitions
//! partially; reading boundary partitions whole is the overhead
//! Figure 13 measures. The §7 optimization — enumerate the boundary
//! values and probe the BFs to fetch only useful pages — is
//! implemented as [`BfTree::scan_range_probing`].

use bftree_storage::tuple::AttrOffset;
use bftree_storage::{HeapFile, IoContext, PageId, Relation, SimDevice};

use crate::tree::BfTree;

/// Outcome of a range scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeScanResult {
    /// Matching tuples as `(page id, slot)`, in page order.
    pub matches: Vec<(PageId, usize)>,
    /// Data pages read.
    pub pages_read: u64,
    /// Data pages read that contained no tuple in range (the boundary
    /// overhead).
    pub overhead_pages: u64,
    /// Leaves (partitions) visited.
    pub leaves_visited: u64,
}

impl BfTree {
    pub(crate) fn range_scan_impl(
        &self,
        lo: u64,
        hi: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&SimDevice>,
        data_dev: Option<&SimDevice>,
    ) -> RangeScanResult {
        assert!(lo <= hi);
        let mut result = RangeScanResult::default();
        let Some(start) = self.first_overlapping_leaf(lo, idx_dev) else {
            return result;
        };
        let mut next_pid: Option<PageId> = None; // dedup overlapping leaf ranges
        let mut idx = Some(start);
        while let Some(i) = idx {
            let leaf = self.leaf(i);
            if leaf.n_keys > 0 && leaf.min_key > hi {
                break;
            }
            if let Some(d) = idx_dev {
                d.read_random(Self::leaf_page_id(i));
            }
            result.leaves_visited += 1;
            let from = next_pid.map_or(leaf.min_pid, |n| n.max(leaf.min_pid));
            for pid in from..=leaf.max_pid.min(heap.page_count().saturating_sub(1)) {
                self.scan_data_page(pid, lo, hi, heap, attr, data_dev, &mut result);
            }
            next_pid = Some(leaf.max_pid + 1);
            idx = leaf.next;
        }
        result
    }

    /// The §7 boundary-probing range scan over the new handle API:
    /// like `AccessMethod::range_scan`, but boundary partitions are
    /// probed per value (capped at `max_enumeration` enumerated keys
    /// per boundary leaf) instead of read whole.
    pub fn scan_range_probing(
        &self,
        lo: u64,
        hi: u64,
        rel: &Relation,
        io: &IoContext,
        max_enumeration: u64,
    ) -> RangeScanResult {
        self.range_scan_probing_impl(
            lo,
            hi,
            rel.heap(),
            rel.attr(),
            Some(&io.index),
            Some(&io.data),
            max_enumeration,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn range_scan_probing_impl(
        &self,
        lo: u64,
        hi: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        idx_dev: Option<&SimDevice>,
        data_dev: Option<&SimDevice>,
        max_enumeration: u64,
    ) -> RangeScanResult {
        assert!(lo <= hi);
        let mut result = RangeScanResult::default();
        let Some(start) = self.first_overlapping_leaf(lo, idx_dev) else {
            return result;
        };
        let mut next_pid: Option<PageId> = None;
        let mut idx = Some(start);
        while let Some(i) = idx {
            let leaf = self.leaf(i);
            if leaf.n_keys > 0 && leaf.min_key > hi {
                break;
            }
            if let Some(d) = idx_dev {
                d.read_random(Self::leaf_page_id(i));
            }
            result.leaves_visited += 1;

            let is_boundary = leaf.min_key < lo || leaf.max_key > hi;
            let enum_lo = lo.max(leaf.min_key);
            let enum_hi = hi.min(leaf.max_key);
            let enumerable = enum_hi.saturating_sub(enum_lo) < max_enumeration;

            let last_pid = leaf.max_pid.min(heap.page_count().saturating_sub(1));
            let from = next_pid.map_or(leaf.min_pid, |n| n.max(leaf.min_pid));
            if is_boundary && enumerable {
                // Probe the filters per value; union the candidate pages.
                let mut pages: Vec<PageId> = Vec::new();
                for key in enum_lo..=enum_hi {
                    leaf.matching_pages(key, &mut pages);
                }
                pages.sort_unstable();
                pages.dedup();
                pages.retain(|&pid| pid >= from && pid <= last_pid);
                // Under FirstPageOnly only a run's first page is in the
                // filters; a page ending with an in-range key implies
                // the run may spill into its successor, so pull that
                // page in too.
                let follow_runs =
                    self.config().duplicates == crate::config::DuplicateHandling::FirstPageOnly;
                let mut i = 0;
                while i < pages.len() {
                    let pid = pages[i];
                    self.scan_data_page(pid, lo, hi, heap, attr, data_dev, &mut result);
                    if follow_runs && pid < last_pid && pages.get(i + 1) != Some(&(pid + 1)) {
                        let n = heap.tuples_in_page(pid);
                        if n > 0 {
                            let last = heap.attr(pid, n - 1, attr);
                            if last >= lo && last <= hi {
                                pages.insert(i + 1, pid + 1);
                            }
                        }
                    }
                    i += 1;
                }
            } else {
                for pid in from..=last_pid {
                    self.scan_data_page(pid, lo, hi, heap, attr, data_dev, &mut result);
                }
            }
            next_pid = Some(leaf.max_pid + 1);
            idx = leaf.next;
        }
        result
    }

    fn first_overlapping_leaf(&self, lo: u64, idx_dev: Option<&SimDevice>) -> Option<u32> {
        let candidates = self.candidate_leaves(lo, idx_dev);
        match candidates.first() {
            Some(&first) => Some(first),
            // lo precedes every leaf's min key: start at the leftmost.
            None => {
                let mut idx = 0u32;
                while self.leaf(idx).prev.is_some() {
                    idx = self.leaf(idx).prev.expect("checked");
                }
                Some(idx)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_data_page(
        &self,
        pid: PageId,
        lo: u64,
        hi: u64,
        heap: &HeapFile,
        attr: AttrOffset,
        data_dev: Option<&SimDevice>,
        result: &mut RangeScanResult,
    ) {
        if let Some(d) = data_dev {
            d.read_seq(pid);
        }
        result.pages_read += 1;
        let mut any = false;
        for slot in 0..heap.tuples_in_page(pid) {
            let v = heap.attr(pid, slot, attr);
            if v >= lo && v <= hi {
                result.matches.push((pid, slot));
                any = true;
            }
        }
        if !any {
            result.overhead_pages += 1;
        }
    }
}

/// The exact number of data pages containing at least one tuple in
/// `[lo, hi]` — the I/O a B+-Tree range scan performs, Figure 13's
/// denominator.
pub fn exact_range_pages(heap: &HeapFile, attr: AttrOffset, lo: u64, hi: u64) -> u64 {
    let mut n = 0;
    for pid in 0..heap.page_count() {
        let has = (0..heap.tuples_in_page(pid)).any(|slot| {
            let v = heap.attr(pid, slot, attr);
            v >= lo && v <= hi
        });
        n += u64::from(has);
    }
    n
}
