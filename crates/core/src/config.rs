//! BF-Tree tuning knobs.

use bftree_access::BuildError;
use bftree_bloom::math;
pub use bftree_bloom::FilterLayout;

/// How many hash functions each Bloom filter uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KStrategy {
    /// `k = (m/n)·ln 2` per filter, the information-theoretic optimum
    /// assumed by the paper's Equation 1 and required to reach the very
    /// low fpps of its sweeps (10⁻¹⁵).
    Optimal,
    /// A fixed `k`. The paper's prototype fixes `k = 3`, which is
    /// near-optimal only for fpp ≳ 10⁻²; we expose both.
    Fixed(u32),
}

/// How duplicate occurrences of a key map into the per-page filters.
///
/// The choice resolves a tension in the paper: Algorithm 2 inserts a
/// key "in BFs corresponding to all pids", but Equations 5–6 size each
/// leaf by *distinct* keys — with non-unique attributes (ATT1's
/// avg. cardinality 11, TPCH's 2 400) all-pages insertion loads the
/// filters several-fold beyond Equation 5's budget and the realized
/// fpp drifts far above target. Both semantics are supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicateHandling {
    /// Paper-faithful: every page holding an occurrence of the key gets
    /// the key in its filter. Required when the data is merely
    /// *partitioned* on the key (duplicates may scatter inside the
    /// partition); the realized fpp exceeds the target by roughly
    /// `fpp^(1/spanning_factor)` (Equation 14 with the extra load as
    /// the insert ratio).
    AllCoveringPages,
    /// Ordered-data optimization: only the *first* covering page gets
    /// the key; probes scan forward through the contiguous duplicate
    /// run. Keeps filter load exactly at Equation 5's budget, so the
    /// realized fpp matches the target; invalid if duplicates are not
    /// contiguous.
    FirstPageOnly,
}

/// How the leaf's bit budget is divided among its per-page filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitAllocation {
    /// Property 1's even split: every filter gets `total/S` bits. The
    /// realized fpp matches the target only when keys spread evenly
    /// over pages ("as long as the distribution of keys is not highly
    /// skewed", §4.1).
    Uniform,
    /// Bits proportional to each page's distinct-key count, measured at
    /// bulk-load time. Keeps bits-per-key — and therefore fpp — uniform
    /// across filters even when most pages hold no new keys (high
    /// per-key cardinality), at the cost of storing S+1 offsets per
    /// leaf. Empty pages' filters reject for free.
    Proportional,
}

/// The order in which a unique-key probe fetches its candidate pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOrder {
    /// Ascending page order (the natural batch the paper's Equation 13
    /// charges at sequential cost).
    PageOrder,
    /// Distance from the *interpolated* position of the key within the
    /// leaf's `[min_key, max_key] -> [min_pid, max_pid]` mapping. For
    /// near-uniform ordered data the true page is checked first and a
    /// probe-with-early-out pays ~zero false reads instead of
    /// `fpp . S/2` (cf. the paper's §7 interpolation-search
    /// discussion). Only consulted by first-match probes
    /// (`AccessMethod::probe_first`).
    Interpolated,
}

/// How Algorithm 2 rebuilds the filters of a splitting leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Paper-faithful Algorithm 2: probe the old node's filters for
    /// every key in the leaf's (integer) key range. Only computable for
    /// domains of bounded span; splits are lossy-exact — the new
    /// filters inherit the old filters' false positives.
    ProbeDomain,
    /// Re-read the covered data pages and rebuild both new leaves
    /// exactly. Needs heap access at split time but works for any
    /// domain and resets accumulated false positives.
    RebuildFromData,
}

/// Full configuration of a BF-Tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfTreeConfig {
    /// Node (page) size in bytes; the whole page's bit budget backs the
    /// leaf's filters, as the paper's Equation 5 assumes.
    pub page_size: usize,
    /// Target false-positive probability per filter.
    pub fpp: f64,
    /// Indexing granularity: consecutive data pages per Bloom filter
    /// (the paper's knob (i); 1 = one BF per page, "which gives the
    /// best results").
    pub pages_per_bf: u64,
    /// Key size in bytes (internal-node fanout, Equation 2).
    pub key_size: usize,
    /// Pointer size in bytes (internal-node fanout, Equation 2).
    pub ptr_size: usize,
    /// Hash-count strategy.
    pub k_strategy: KStrategy,
    /// Split strategy for Algorithm 2.
    pub split: SplitStrategy,
    /// Duplicate-occurrence handling (see [`DuplicateHandling`]).
    pub duplicates: DuplicateHandling,
    /// Candidate-page fetch order for unique probes.
    pub probe_order: ProbeOrder,
    /// Per-filter bit budgeting (see [`BitAllocation`]).
    pub bit_allocation: BitAllocation,
    /// Probe layout of the leaf filters:
    /// [`FilterLayout::Standard`] scatters each key's `k` probes over
    /// the whole member filter; [`FilterLayout::Blocked`] confines them
    /// to one 512-bit cache-line block (one miss per filter test, at
    /// the analytic fpp penalty of `bftree_bloom::math::blocked_fpp`).
    /// Members no larger than one block — the common case at tight
    /// fpps with one filter per page — behave identically either way.
    pub filter_layout: FilterLayout,
    /// Bytes of each leaf page reserved for the header (ranges,
    /// `#keys`, sibling pointer, tombstone slack); the filters share
    /// the remainder. Equation 5 idealizes the whole page as filter
    /// bits — materializing leaves as real fixed-size nodes
    /// ([`crate::BfLeaf::to_page_bytes`]) needs this reserve, costing
    /// ~3 % of leaf capacity at the default 4 KB/128 B.
    pub leaf_header_reserve: usize,
    /// Hash seed (filters are deterministic given this).
    pub seed: u64,
}

impl BfTreeConfig {
    /// The paper's defaults: 4 KB pages, one BF per data page, 8 B keys
    /// and pointers, optimal k, fpp 10⁻³.
    pub fn paper_default() -> Self {
        Self {
            page_size: 4096,
            fpp: 1e-3,
            pages_per_bf: 1,
            key_size: 8,
            ptr_size: 8,
            k_strategy: KStrategy::Optimal,
            split: SplitStrategy::RebuildFromData,
            duplicates: DuplicateHandling::AllCoveringPages,
            probe_order: ProbeOrder::PageOrder,
            bit_allocation: BitAllocation::Uniform,
            filter_layout: FilterLayout::Standard,
            leaf_header_reserve: 128,
            seed: 0x5F1D_BF7E,
        }
    }

    /// [`Self::paper_default`] with the ordered-data duplicate
    /// optimization ([`DuplicateHandling::FirstPageOnly`]) — the right
    /// choice for relations fully *ordered* on the indexed attribute,
    /// like the paper's relation R, TPCH-on-shipdate and SHD datasets.
    pub fn ordered_default() -> Self {
        Self {
            duplicates: DuplicateHandling::FirstPageOnly,
            ..Self::paper_default()
        }
    }

    /// Equation 5: distinct keys one BF-leaf may index at the target
    /// fpp. The paper assumes the whole page's bits back the filters;
    /// here the header reserve is subtracted first so leaves really
    /// fit their fixed-size node.
    pub fn max_keys_per_leaf(&self) -> u64 {
        math::capacity_for(self.leaf_filter_bits(), self.fpp).max(1)
    }

    /// Bits available to a leaf's filter block.
    pub fn leaf_filter_bits(&self) -> u64 {
        ((self.page_size - self.leaf_header_reserve) * 8) as u64
    }

    /// Equation 2: internal-node fanout.
    pub fn fanout(&self) -> usize {
        self.page_size / (self.key_size + self.ptr_size)
    }

    /// Hash count for a filter of `m` bits expected to hold `n` keys.
    pub fn k_for(&self, m_bits: u64, n_keys: u64) -> u32 {
        match self.k_strategy {
            KStrategy::Optimal => math::optimal_k(m_bits, n_keys.max(1)),
            KStrategy::Fixed(k) => k,
        }
    }

    /// Validate parameter sanity, returning a typed error — the
    /// checked entry point [`crate::BfTreeBuilder`] uses.
    pub fn try_validate(&self) -> Result<(), BuildError> {
        let invalid =
            |what: &'static str, detail: String| Err(BuildError::InvalidConfig { what, detail });
        if self.page_size < 512 {
            return invalid("page_size", "page size too small".into());
        }
        if !(self.fpp > 0.0 && self.fpp < 1.0) {
            return invalid("fpp", format!("fpp must be in (0,1), got {}", self.fpp));
        }
        if self.pages_per_bf < 1 {
            return invalid("pages_per_bf", "pages_per_bf must be >= 1".into());
        }
        if self.leaf_header_reserve + 64 > self.page_size {
            return invalid(
                "leaf_header_reserve",
                "header reserve leaves no room for filters".into(),
            );
        }
        if let KStrategy::Fixed(k) = self.k_strategy {
            if k < 1 {
                return invalid("k_strategy", "need at least one hash function".into());
            }
        }
        Ok(())
    }

    /// Validate parameter sanity; called by the tree constructors.
    /// Panics where [`Self::try_validate`] returns an error.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_matches_paper_table2_leaf_capacities() {
        // fpp 0.2 -> 9785 keys/leaf; 4M distinct PKs -> ~409 leaves,
        // matching Table 2's 406 (which also counts internal pages).
        let c = BfTreeConfig {
            fpp: 0.2,
            ..BfTreeConfig::paper_default()
        };
        let keys = c.max_keys_per_leaf();
        // 9785 by pure Eq 5; ~3% lower with the header reserve.
        assert!((9400..=9850).contains(&keys), "keys = {keys}");
        let leaves = 4_000_000u64.div_ceil(keys);
        assert!((405..=430).contains(&leaves), "leaves = {leaves}");

        // fpp 1e-15 -> ~455 keys/leaf -> ~8780 leaves vs Table 2's 8565.
        let c = BfTreeConfig {
            fpp: 1e-15,
            ..BfTreeConfig::paper_default()
        };
        let keys = c.max_keys_per_leaf();
        assert!((435..=462).contains(&keys), "keys = {keys}");
    }

    #[test]
    fn fanout_matches_eq2() {
        assert_eq!(BfTreeConfig::paper_default().fanout(), 256);
    }

    #[test]
    fn k_strategies() {
        let c = BfTreeConfig::paper_default();
        assert_eq!(c.k_for(1000, 100), 7);
        let f = BfTreeConfig {
            k_strategy: KStrategy::Fixed(3),
            ..c
        };
        assert_eq!(f.k_for(1000, 100), 3);
    }

    #[test]
    #[should_panic(expected = "fpp must be in (0,1)")]
    fn validate_rejects_bad_fpp() {
        BfTreeConfig {
            fpp: 0.0,
            ..BfTreeConfig::paper_default()
        }
        .validate();
    }
}
