//! Bloom-filter sizing identities used throughout the paper.
//!
//! Section 3 of the paper works from the standard approximation
//! (its Equation 1):
//!
//! ```text
//! n = -m · ln²(2) / ln(p)
//! ```
//!
//! relating capacity `n`, bit budget `m` and false-positive
//! probability `p` under an optimal number of hash functions
//! `k = (m/n)·ln 2`. Section 7 derives the fpp drift under inserts
//! (its Equation 14), reproduced here as [`fpp_after_inserts`].

/// ln²(2) ≈ 0.4805, the constant of Equation 1.
pub const LN2_SQUARED: f64 = core::f64::consts::LN_2 * core::f64::consts::LN_2;

/// Equation 1 solved for `n`: how many distinct keys a filter of `m`
/// bits can hold at false-positive probability `p`.
///
/// This is also the paper's Equation 5 when `m` is a page's bit budget
/// (`BFkeysperpage`).
pub fn capacity_for(m_bits: u64, p: f64) -> u64 {
    assert!(p > 0.0 && p < 1.0, "fpp must be in (0,1), got {p}");
    let n = -(m_bits as f64) * LN2_SQUARED / p.ln();
    n.floor() as u64
}

/// Equation 1 solved for `m`: bits needed to hold `n` keys at
/// false-positive probability `p`.
pub fn bits_for(n_keys: u64, p: f64) -> u64 {
    assert!(p > 0.0 && p < 1.0, "fpp must be in (0,1), got {p}");
    if n_keys == 0 {
        return 0;
    }
    let m = -(n_keys as f64) * p.ln() / LN2_SQUARED;
    m.ceil() as u64
}

/// Equation 1 solved for `p`: the design false-positive probability of
/// a filter with `m` bits holding `n` keys (optimal `k` assumed).
pub fn fpp_for(m_bits: u64, n_keys: u64) -> f64 {
    if n_keys == 0 {
        return 0.0;
    }
    assert!(m_bits > 0, "zero-bit filter cannot hold keys");
    (-(m_bits as f64) * LN2_SQUARED / n_keys as f64).exp()
}

/// The optimal number of hash functions `k = (m/n)·ln 2`, clamped to
/// at least 1.
pub fn optimal_k(m_bits: u64, n_keys: u64) -> u32 {
    if n_keys == 0 {
        return 1;
    }
    let k = (m_bits as f64 / n_keys as f64) * core::f64::consts::LN_2;
    (k.round() as u32).max(1)
}

/// The exact expected false-positive rate of a filter with `m` bits,
/// `k` hashes and `n` inserted keys: `(1 - e^{-kn/m})^k`.
///
/// Unlike [`fpp_for`] this does not assume the optimal `k`, so it is
/// what the empirical experiments (Figure 14) are checked against.
pub fn expected_fpp(m_bits: u64, k: u32, n_keys: u64) -> f64 {
    if n_keys == 0 {
        return 0.0;
    }
    assert!(m_bits > 0 && k > 0);
    let exponent = -(k as f64) * (n_keys as f64) / (m_bits as f64);
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Expected false-positive rate of a **cache-line-blocked** filter
/// (Putze et al.): `m` bits in blocks of `block_bits`, `k` hashes, `n`
/// keys, each key assigned to one uniformly chosen block.
///
/// Block loads are Binomial(n, 1/B) ≈ Poisson(λ = n/B) for `B` blocks,
/// and a negative query hits a uniformly chosen block, so
///
/// ```text
/// fpp_blocked = Σ_j  Pois_λ(j) · (1 - e^{-kj/block_bits})^k
/// ```
///
/// — the Poisson mixture of per-block standard rates. Because the
/// per-block rate is convex in the load, this always upper-bounds the
/// same-geometry standard filter's [`expected_fpp`]; the gap is the
/// price of touching one cache line per test. Filters no larger than
/// one block have nothing to mix and fall back to [`expected_fpp`].
pub fn blocked_fpp(m_bits: u64, block_bits: u64, k: u32, n_keys: u64) -> f64 {
    assert!(block_bits > 0 && k > 0);
    if n_keys == 0 {
        return 0.0;
    }
    assert!(m_bits > 0, "zero-bit filter cannot hold keys");
    let n_blocks = m_bits.div_ceil(block_bits);
    if n_blocks <= 1 {
        return expected_fpp(m_bits, k, n_keys);
    }
    let lambda = n_keys as f64 / n_blocks as f64;
    // Sum the Poisson mixture out to λ + 10σ (+ a floor for small λ);
    // the truncated tail is below 1e-12 of the mass.
    let j_max = (lambda + 10.0 * lambda.sqrt()).ceil() as u64 + 16;
    let mut pois = (-lambda).exp(); // P(j = 0)
    let mut fpp = 0.0;
    for j in 0..=j_max {
        if j > 0 {
            pois *= lambda / j as f64;
        }
        if j > 0 {
            fpp += pois * expected_fpp(block_bits, k, j);
        }
    }
    fpp.min(1.0)
}

/// Equation 14: the false-positive probability after inserting
/// `insert_ratio · n` additional keys into a filter designed for fpp
/// `initial_fpp`:
///
/// ```text
/// new_fpp = fpp^(1 / (1 + insert_ratio))
/// ```
///
/// Notably independent of both the filter size and the absolute number
/// of keys.
pub fn fpp_after_inserts(initial_fpp: f64, insert_ratio: f64) -> f64 {
    assert!(initial_fpp > 0.0 && initial_fpp < 1.0);
    assert!(insert_ratio >= 0.0);
    initial_fpp.powf(1.0 / (1.0 + insert_ratio))
}

/// Section 7's delete rule: removing a fraction `delete_ratio` of the
/// entries without rebuilding adds that fraction of artificial false
/// positives: `new_fpp = fpp + delete_ratio`.
pub fn fpp_after_deletes(initial_fpp: f64, delete_ratio: f64) -> f64 {
    assert!((0.0..=1.0).contains(&delete_ratio));
    (initial_fpp + delete_ratio).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_bits_are_inverse() {
        for &p in &[0.1, 0.01, 1e-4, 1e-8] {
            let m = 4096 * 8;
            let n = capacity_for(m, p);
            let m_back = bits_for(n, p);
            // Rounding means m_back <= m but close.
            assert!(m_back <= m);
            assert!(m_back as f64 >= m as f64 * 0.999, "p={p}: {m_back} vs {m}");
        }
    }

    #[test]
    fn paper_example_4kb_page() {
        // A 4 KB page has 32768 bits. At fpp = 0.01 Equation 1 gives
        // n = 32768 * 0.4805 / 4.605 ≈ 3419.
        let n = capacity_for(4096 * 8, 0.01);
        assert!((3400..=3440).contains(&n), "n = {n}");
    }

    #[test]
    fn fpp_for_inverts_capacity() {
        let m = 1 << 15;
        let n = capacity_for(m, 1e-3);
        let p = fpp_for(m, n);
        assert!((p.log10() - (-3.0)).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn lower_fpp_needs_logarithmically_more_bits() {
        // Property 2 of Section 3: decreasing p has a logarithmic effect.
        let n = 10_000;
        let m3 = bits_for(n, 1e-3);
        let m6 = bits_for(n, 1e-6);
        let m9 = bits_for(n, 1e-9);
        let d1 = m6 - m3;
        let d2 = m9 - m6;
        // Equal increments of -log10(p) cost equal increments of bits.
        assert!(((d1 as f64) - (d2 as f64)).abs() < 0.01 * d1 as f64);
    }

    #[test]
    fn optimal_k_examples() {
        // m/n = 10 bits per key -> k ≈ 6.93 -> 7.
        assert_eq!(optimal_k(10_000, 1000), 7);
        // m/n ≈ 4.8 (fpp 0.1) -> k ≈ 3.3 -> 3.
        let n = capacity_for(32768, 0.1);
        assert_eq!(optimal_k(32768, n), 3);
        assert_eq!(optimal_k(100, 0), 1);
    }

    #[test]
    fn expected_fpp_matches_design_at_optimal_k() {
        let m = 1 << 16;
        let p = 1e-3;
        let n = capacity_for(m, p);
        let k = optimal_k(m, n);
        let e = expected_fpp(m, k, n);
        // Within a factor ~2 (k is rounded to an integer).
        assert!(e < p * 2.0 && e > p / 2.0, "e = {e}");
    }

    #[test]
    fn eq14_paper_examples() {
        // Paper: fpp=0.01%, 1% more elements -> ≈ 0.011%.
        let f = fpp_after_inserts(1e-4, 0.01);
        assert!((f - 1.095e-4).abs() < 5e-6, "f = {f}");
        // Paper: fpp=0.01%, 10% more -> ≈ 0.23%... (text says 0.23%, the
        // formula gives 1e-4^(1/1.1) = 10^(-4/1.1) = 10^-3.636 ≈ 2.3e-4).
        let f = fpp_after_inserts(1e-4, 0.10);
        assert!((f - 2.31e-4).abs() < 2e-5, "f = {f}");
    }

    #[test]
    fn eq14_is_size_independent_and_monotone() {
        let base = fpp_after_inserts(1e-3, 0.0);
        assert!((base - 1e-3).abs() < 1e-12);
        let mut prev = base;
        for step in 1..=20 {
            let r = step as f64 * 0.05;
            let f = fpp_after_inserts(1e-3, r);
            assert!(f > prev);
            prev = f;
        }
        // Converges towards 1 for huge insert ratios.
        assert!(fpp_after_inserts(1e-3, 1e6) > 0.99);
    }

    #[test]
    fn deletes_add_linear_fpp() {
        assert!((fpp_after_deletes(1e-3, 0.10) - 0.101).abs() < 1e-9);
        assert_eq!(fpp_after_deletes(0.5, 0.9), 1.0);
    }

    #[test]
    #[should_panic(expected = "fpp must be in (0,1)")]
    fn rejects_invalid_fpp() {
        capacity_for(1024, 1.5);
    }

    #[test]
    fn blocked_fpp_bounds_standard_from_above() {
        // The Poisson mixture over block loads is always at least the
        // same-geometry standard rate (convexity), and converges to it
        // as blocks grow toward the whole filter.
        let n = 10_000u64;
        let m = bits_for(n, 0.01);
        let k = optimal_k(m, n);
        let std = expected_fpp(m, k, n);
        let b512 = blocked_fpp(m, 512, k, n);
        assert!(b512 > std, "blocked {b512} must exceed standard {std}");
        assert!(b512 < std * 4.0, "penalty at 512-bit blocks is modest");
        let coarse = blocked_fpp(m, m, k, n);
        assert!((coarse - std).abs() < std * 1e-9, "one block == standard");
    }

    #[test]
    fn blocked_fpp_edge_cases() {
        assert_eq!(blocked_fpp(1 << 16, 512, 3, 0), 0.0);
        // Tiny filters fall back to the standard formula.
        assert_eq!(blocked_fpp(256, 512, 3, 10), expected_fpp(256, 3, 10));
        // Heavily overloaded blocks saturate at 1.
        assert!(blocked_fpp(1024, 512, 2, 1 << 20) <= 1.0);
    }
}
