//! Counting Bloom filter: 4-bit counters instead of bits, supporting
//! deletes — one of the delete-capable variants Section 7 of the paper
//! points at for keeping the fpp stable under deletions.

use crate::hash::{BloomKey, KeyFingerprint};
use crate::math;

/// A counting Bloom filter with saturating 4-bit counters.
///
/// `insert` increments the `k` counters of a key, `remove` decrements
/// them, `contains` tests that all are non-zero. A counter that reaches
/// 15 saturates and is never decremented again (the standard soundness
/// rule: decrementing a saturated counter could create false
/// negatives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloomFilter {
    /// Two counters per byte, low nibble = even slot.
    counters: Vec<u8>,
    m: u64,
    k: u32,
    seed: u64,
    n_items: u64,
}

const SATURATED: u8 = 0xF;

impl CountingBloomFilter {
    /// Create a filter with `m_slots` counters and `k` hash functions.
    pub fn new(m_slots: u64, k: u32, seed: u64) -> Self {
        assert!(m_slots > 0 && k > 0);
        let m = m_slots.next_multiple_of(2);
        Self {
            counters: vec![0u8; (m / 2) as usize],
            m,
            k,
            seed,
            n_items: 0,
        }
    }

    /// Size the filter for `n` keys at false-positive probability `p`
    /// (same slot count as a plain filter's bit count; 4x the bytes).
    pub fn with_capacity(n: u64, p: f64, seed: u64) -> Self {
        let m = math::bits_for(n.max(1), p).max(64);
        let k = math::optimal_k(m, n.max(1));
        Self::new(m, k, seed)
    }

    /// Number of counter slots.
    #[inline]
    pub fn m_slots(&self) -> u64 {
        self.m
    }

    /// Number of hash functions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Net number of items (inserts minus successful removes).
    #[inline]
    pub fn n_items(&self) -> u64 {
        self.n_items
    }

    #[inline]
    fn get(&self, slot: u64) -> u8 {
        let byte = self.counters[(slot / 2) as usize];
        if slot.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    #[inline]
    fn set(&mut self, slot: u64, value: u8) {
        debug_assert!(value <= SATURATED);
        let byte = &mut self.counters[(slot / 2) as usize];
        if slot.is_multiple_of(2) {
            *byte = (*byte & 0xF0) | value;
        } else {
            *byte = (*byte & 0x0F) | (value << 4);
        }
    }

    /// Insert `key`, incrementing its `k` counters (saturating at 15).
    pub fn insert<K: BloomKey>(&mut self, key: &K) {
        let fp = KeyFingerprint::new(key, self.seed);
        for i in 0..self.k {
            let slot = fp.probe(i, self.m);
            let c = self.get(slot);
            if c < SATURATED {
                self.set(slot, c + 1);
            }
        }
        self.n_items += 1;
    }

    /// Membership test.
    pub fn contains<K: BloomKey>(&self, key: &K) -> bool {
        let fp = KeyFingerprint::new(key, self.seed);
        (0..self.k).all(|i| self.get(fp.probe(i, self.m)) > 0)
    }

    /// Remove `key`. Returns `false` (and does nothing) if the key is
    /// definitely absent. Saturated counters are left untouched.
    pub fn remove<K: BloomKey>(&mut self, key: &K) -> bool {
        if !self.contains(key) {
            return false;
        }
        let fp = KeyFingerprint::new(key, self.seed);
        for i in 0..self.k {
            let slot = fp.probe(i, self.m);
            let c = self.get(slot);
            if c > 0 && c < SATURATED {
                self.set(slot, c - 1);
            }
        }
        self.n_items = self.n_items.saturating_sub(1);
        true
    }

    /// Fraction of non-zero counters.
    pub fn fill_ratio(&self) -> f64 {
        let nonzero: u64 = (0..self.m).filter(|&s| self.get(s) > 0).count() as u64;
        nonzero as f64 / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut cbf = CountingBloomFilter::with_capacity(1_000, 0.01, 0);
        for key in 0u64..1_000 {
            cbf.insert(&key);
        }
        for key in 0u64..1_000 {
            assert!(cbf.contains(&key));
        }
    }

    #[test]
    fn remove_restores_absence() {
        let mut cbf = CountingBloomFilter::with_capacity(1_000, 1e-4, 1);
        for key in 0u64..100 {
            cbf.insert(&key);
        }
        for key in 0u64..50 {
            assert!(cbf.remove(&key));
        }
        // Removed keys should now (almost always, at fpp 1e-4) be absent;
        // retained keys must still be present.
        let still_present = (0u64..50).filter(|k| cbf.contains(k)).count();
        assert!(still_present <= 2, "{still_present} ghosts after remove");
        for key in 50u64..100 {
            assert!(cbf.contains(&key), "false negative for retained {key}");
        }
    }

    #[test]
    fn remove_absent_key_is_noop() {
        let mut cbf = CountingBloomFilter::with_capacity(100, 1e-6, 2);
        cbf.insert(&1u64);
        assert!(!cbf.remove(&999_999u64));
        assert!(cbf.contains(&1u64));
        assert_eq!(cbf.n_items(), 1);
    }

    #[test]
    fn duplicate_inserts_need_matching_removes() {
        let mut cbf = CountingBloomFilter::with_capacity(100, 1e-6, 3);
        cbf.insert(&7u64);
        cbf.insert(&7u64);
        assert!(cbf.remove(&7u64));
        // Still present: one copy remains.
        assert!(cbf.contains(&7u64));
        assert!(cbf.remove(&7u64));
        assert!(!cbf.contains(&7u64));
    }

    #[test]
    fn counters_saturate_without_false_negatives() {
        let mut cbf = CountingBloomFilter::new(64, 2, 0);
        // Hammer one key far past the 4-bit max.
        for _ in 0..100 {
            cbf.insert(&42u64);
        }
        assert!(cbf.contains(&42u64));
        // Removing many times must not produce a false negative for a
        // saturated counter.
        for _ in 0..100 {
            cbf.remove(&42u64);
        }
        assert!(
            cbf.contains(&42u64),
            "saturated counters must never be decremented"
        );
    }

    #[test]
    fn nibble_packing_is_isolated() {
        let mut cbf = CountingBloomFilter::new(16, 1, 0);
        // Directly exercise set/get on adjacent slots.
        cbf.set(4, 9);
        cbf.set(5, 3);
        assert_eq!(cbf.get(4), 9);
        assert_eq!(cbf.get(5), 3);
        cbf.set(4, 0);
        assert_eq!(cbf.get(5), 3);
    }
}
