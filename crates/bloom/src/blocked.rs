//! Cache-line-blocked Bloom filters (Putze, Sanders & Singler,
//! "Cache-, Hash- and Space-Efficient Bloom Filters", WEA 2007).
//!
//! A standard Bloom filter pays up to `k` cache misses per membership
//! test: its `k` probe positions scatter over the whole bit array. The
//! blocked variant spends the *first* hash choosing one 512-bit
//! (cache-line-sized) block and keeps the remaining probes inside it,
//! so a test touches exactly one cache line. The price is accuracy:
//! keys Poisson-distribute over blocks, and overloaded blocks run a
//! locally higher false-positive rate — [`crate::math::blocked_fpp`]
//! quantifies the penalty analytically, and the seeded measurement
//! tests pin the implementation against it.

use crate::hash::{BloomKey, KeyFingerprint};
use crate::math;

/// Bits per block: one 64-byte cache line.
pub const BLOCK_BITS: u64 = 512;

/// How a filter (or each member of a [`crate::BloomGroup`]) lays its
/// probe positions out in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FilterLayout {
    /// All `k` probes range over the whole bit array (Bloom 1970).
    /// Best accuracy; up to `k` cache misses per test.
    #[default]
    Standard,
    /// The first hash selects one [`BLOCK_BITS`]-bit block, the
    /// remaining probes stay inside it: one cache miss per test, at
    /// the fpp penalty of [`crate::math::blocked_fpp`]. Regions no
    /// larger than one block behave identically to [`Self::Standard`].
    Blocked,
}

impl FilterLayout {
    /// Stable lowercase label ("standard" / "blocked") for reports.
    pub fn label(self) -> &'static str {
        match self {
            FilterLayout::Standard => "standard",
            FilterLayout::Blocked => "blocked",
        }
    }

    /// Probe geometry for a bit region of `m` bits: the offset of the
    /// selected block within the region and the modulus the `k` probe
    /// positions range over. [`FilterLayout::Standard`] (and any
    /// region that fits one block) uses the whole region.
    #[inline]
    pub fn probe_window(self, fp: &KeyFingerprint, m: u64) -> (u64, u64) {
        match self {
            FilterLayout::Standard => (0, m),
            FilterLayout::Blocked => {
                let n_blocks = m.div_ceil(BLOCK_BITS);
                if n_blocks <= 1 {
                    (0, m)
                } else {
                    let start = fp.block(n_blocks) * BLOCK_BITS;
                    (start, (m - start).min(BLOCK_BITS))
                }
            }
        }
    }
}

/// A register-blocked Bloom filter over `m` bits: every key's `k`
/// probes land in one 512-bit block.
///
/// Same construction surface as [`crate::BloomFilter`] — geometry
/// (`m`, `k`, seed) plus inserts determine the bits exactly.
///
/// ```
/// use bftree_bloom::BlockedBloomFilter;
///
/// let mut bf = BlockedBloomFilter::with_capacity(1_000, 0.01, 0);
/// bf.insert(&42u64);
/// assert!(bf.contains(&42u64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedBloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    seed: u64,
    n_inserted: u64,
}

impl BlockedBloomFilter {
    /// Create a filter with `m_bits` bits (rounded up to a multiple of
    /// 64) and `k` hash functions.
    pub fn new(m_bits: u64, k: u32, seed: u64) -> Self {
        assert!(m_bits > 0, "filter must have at least one bit");
        assert!(k > 0, "filter needs at least one hash function");
        let words = m_bits.div_ceil(64) as usize;
        Self {
            bits: vec![0u64; words],
            m: words as u64 * 64,
            k,
            seed,
            n_inserted: 0,
        }
    }

    /// Create a filter sized for `n` keys at *standard-layout*
    /// false-positive probability `p` with the optimal `k`. The
    /// realized rate is the slightly larger
    /// [`math::blocked_fpp`]`(m, 512, k, n)`; use
    /// [`Self::design_fpp`] to read it.
    pub fn with_capacity(n: u64, p: f64, seed: u64) -> Self {
        let m = math::bits_for(n.max(1), p).max(64);
        let k = math::optimal_k(m, n.max(1));
        Self::new(m, k, seed)
    }

    /// Number of bits `m`.
    #[inline]
    pub fn m_bits(&self) -> u64 {
        self.m
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of insert operations performed (duplicates count).
    #[inline]
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// The analytic expected false-positive rate at the current load
    /// ([`math::blocked_fpp`] with this filter's geometry).
    pub fn design_fpp(&self) -> f64 {
        math::blocked_fpp(self.m, BLOCK_BITS, self.k, self.n_inserted)
    }

    #[inline]
    fn set_bit(&mut self, bit: u64) {
        self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn get_bit(&self, bit: u64) -> bool {
        self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Insert `key`.
    #[inline]
    pub fn insert<K: BloomKey>(&mut self, key: &K) {
        self.insert_fingerprint(KeyFingerprint::new(key, self.seed));
    }

    /// Insert a precomputed fingerprint.
    pub fn insert_fingerprint(&mut self, fp: KeyFingerprint) {
        let (base, window) = FilterLayout::Blocked.probe_window(&fp, self.m);
        for i in 0..self.k {
            self.set_bit(base + fp.probe(i, window));
        }
        self.n_inserted += 1;
    }

    /// Membership test for `key`.
    #[inline]
    pub fn contains<K: BloomKey>(&self, key: &K) -> bool {
        self.contains_fingerprint(KeyFingerprint::new(key, self.seed))
    }

    /// Membership test for a precomputed fingerprint.
    pub fn contains_fingerprint(&self, fp: KeyFingerprint) -> bool {
        let (base, window) = FilterLayout::Blocked.probe_window(&fp, self.m);
        (0..self.k).all(|i| self.get_bit(base + fp.probe(i, window)))
    }

    /// Number of set bits.
    pub fn ones(&self) -> u64 {
        self.bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.ones() as f64 / self.m as f64
    }

    /// Clear all bits and reset the insert counter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.n_inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BlockedBloomFilter::with_capacity(10_000, 0.01, 3);
        for key in 0u64..10_000 {
            bf.insert(&key);
        }
        for key in 0u64..10_000 {
            assert!(bf.contains(&key), "false negative for {key}");
        }
    }

    #[test]
    fn probes_stay_within_one_block() {
        // Every key's set bits must span less than BLOCK_BITS.
        for key in 0u64..200 {
            let mut bf = BlockedBloomFilter::new(1 << 16, 7, 11);
            bf.insert(&key);
            let set: Vec<u64> = (0..bf.m_bits()).filter(|&b| bf.get_bit(b)).collect();
            let span = set.last().unwrap() - set.first().unwrap();
            assert!(span < BLOCK_BITS, "key {key} spans {span} bits");
            // And inside the block the hash selected.
            let fp = KeyFingerprint::new(&key, 11);
            let block = fp.block(bf.m_bits() / BLOCK_BITS);
            assert_eq!(set.first().unwrap() / BLOCK_BITS, block);
        }
    }

    #[test]
    fn single_block_filter_matches_standard_layout() {
        // m <= 512: blocked degenerates to the classic filter, bit for
        // bit (same probes mod m).
        let mut blocked = BlockedBloomFilter::new(512, 5, 9);
        let mut standard = crate::BloomFilter::new(512, 5, 9);
        for key in 0u64..60 {
            blocked.insert(&key);
            standard.insert(&key);
        }
        for key in 0u64..2_000 {
            assert_eq!(blocked.contains(&key), standard.contains(&key), "{key}");
        }
    }

    #[test]
    fn measured_fpp_within_analytic_bound() {
        let n = 20_000u64;
        let mut bf = BlockedBloomFilter::with_capacity(n, 0.01, 7);
        for key in 0..n {
            bf.insert(&key);
        }
        let trials = 100_000u64;
        let fps = (n..n + trials).filter(|k| bf.contains(k)).count();
        let measured = fps as f64 / trials as f64;
        let bound = bf.design_fpp();
        assert!(
            measured < bound * 1.5,
            "measured {measured} vs analytic {bound}"
        );
        // And the penalty is real but bounded: worse than the standard
        // design point, not wildly so.
        assert!(bound > 0.01 && bound < 0.1, "bound = {bound}");
    }

    #[test]
    fn clear_and_counters() {
        let mut bf = BlockedBloomFilter::new(1024, 3, 0);
        bf.insert(&1u64);
        assert_eq!(bf.n_inserted(), 1);
        assert!(bf.fill_ratio() > 0.0);
        bf.clear();
        assert_eq!(bf.n_inserted(), 0);
        assert_eq!(bf.ones(), 0);
    }

    #[test]
    fn layout_labels() {
        assert_eq!(FilterLayout::Standard.label(), "standard");
        assert_eq!(FilterLayout::Blocked.label(), "blocked");
        assert_eq!(FilterLayout::default(), FilterLayout::Standard);
    }
}
