//! From-scratch 64-bit hash functions used by every filter in this crate.
//!
//! Two independent families are provided:
//!
//! * [`xxh64`] — an implementation of the XXH64 algorithm, used as the
//!   primary hash.
//! * [`fnv1a64`] — seeded FNV-1a with a final avalanche, used as the
//!   secondary hash for double hashing.
//!
//! [`KeyFingerprint`] combines the two via the Kirsch–Mitzenmacher
//! construction `g_i(x) = h1(x) + i * h2(x)`, which the Bloom-filter
//! literature shows preserves the asymptotic false-positive behaviour
//! while needing only two real hash computations per key.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh64_round(mut acc: u64, input: u64) -> u64 {
    acc = acc.wrapping_add(input.wrapping_mul(PRIME64_2));
    acc = acc.rotate_left(31);
    acc.wrapping_mul(PRIME64_1)
}

#[inline]
fn xxh64_merge_round(mut hash: u64, acc: u64) -> u64 {
    hash ^= xxh64_round(0, acc);
    hash.wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline]
fn xxh64_avalanche(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(PRIME64_2);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(PRIME64_3);
    hash ^= hash >> 32;
    hash
}

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

/// XXH64 hash of `data` under `seed`.
///
/// Matches the canonical xxHash specification; the empty-input /
/// zero-seed vector `0xEF46DB3751D8E999` is asserted in the tests.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut hash: u64;
    let mut at = 0usize;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while at + 32 <= len {
            v1 = xxh64_round(v1, read_u64(data, at));
            v2 = xxh64_round(v2, read_u64(data, at + 8));
            v3 = xxh64_round(v3, read_u64(data, at + 16));
            v4 = xxh64_round(v4, read_u64(data, at + 24));
            at += 32;
        }
        hash = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        hash = xxh64_merge_round(hash, v1);
        hash = xxh64_merge_round(hash, v2);
        hash = xxh64_merge_round(hash, v3);
        hash = xxh64_merge_round(hash, v4);
    } else {
        hash = seed.wrapping_add(PRIME64_5);
    }

    hash = hash.wrapping_add(len as u64);

    while at + 8 <= len {
        hash ^= xxh64_round(0, read_u64(data, at));
        hash = hash
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        at += 8;
    }
    if at + 4 <= len {
        hash ^= u64::from(read_u32(data, at)).wrapping_mul(PRIME64_1);
        hash = hash
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        at += 4;
    }
    while at < len {
        hash ^= u64::from(data[at]).wrapping_mul(PRIME64_5);
        hash = hash.rotate_left(11).wrapping_mul(PRIME64_1);
        at += 1;
    }

    xxh64_avalanche(hash)
}

/// Seeded FNV-1a over `data`, strengthened with a splitmix64-style
/// finalizer so that short integer keys avalanche well.
pub fn fnv1a64(data: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET ^ seed.wrapping_mul(PRIME64_1);
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer
    hash = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key that can be fed to the filters in this crate.
///
/// Keys are hashed via their little-endian byte representation, so
/// hashes are stable across platforms and process restarts.
pub trait BloomKey {
    /// Write the canonical byte representation into `buf` and return
    /// the number of bytes written. `buf` is at least 16 bytes.
    fn write_bytes(&self, buf: &mut [u8; 16]) -> usize;
}

impl BloomKey for u64 {
    #[inline]
    fn write_bytes(&self, buf: &mut [u8; 16]) -> usize {
        buf[..8].copy_from_slice(&self.to_le_bytes());
        8
    }
}

impl BloomKey for i64 {
    #[inline]
    fn write_bytes(&self, buf: &mut [u8; 16]) -> usize {
        buf[..8].copy_from_slice(&self.to_le_bytes());
        8
    }
}

impl BloomKey for u32 {
    #[inline]
    fn write_bytes(&self, buf: &mut [u8; 16]) -> usize {
        buf[..4].copy_from_slice(&self.to_le_bytes());
        4
    }
}

impl BloomKey for u128 {
    #[inline]
    fn write_bytes(&self, buf: &mut [u8; 16]) -> usize {
        buf.copy_from_slice(&self.to_le_bytes());
        16
    }
}

/// The two base hashes of a key, from which all `k` probe positions
/// are derived by double hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyFingerprint {
    h1: u64,
    h2: u64,
}

impl KeyFingerprint {
    /// Compute the fingerprint of `key` under `seed`.
    #[inline]
    pub fn new<K: BloomKey>(key: &K, seed: u64) -> Self {
        let mut buf = [0u8; 16];
        let len = key.write_bytes(&mut buf);
        Self::from_bytes(&buf[..len], seed)
    }

    /// Compute the fingerprint of raw `bytes` under `seed`.
    #[inline]
    pub fn from_bytes(bytes: &[u8], seed: u64) -> Self {
        let h1 = xxh64(bytes, seed);
        // Force h2 odd so that successive probes never collapse onto a
        // single bit even when m is a power of two.
        let h2 = fnv1a64(bytes, seed) | 1;
        Self { h1, h2 }
    }

    /// Select one of `n_blocks` cache-line blocks for this key — the
    /// "first hash" of a blocked Bloom filter (Putze et al.).
    ///
    /// Derived from a mix of `h1` and `h2` that no probe position uses
    /// (probes mix `h1 + i·h2`), so the block choice is independent of
    /// the in-block bit positions.
    #[inline]
    pub fn block(&self, n_blocks: u64) -> u64 {
        debug_assert!(n_blocks > 0);
        mix64(self.h1.rotate_left(32) ^ self.h2) % n_blocks
    }

    /// The `i`-th probe position modulo `m`.
    ///
    /// Kirsch–Mitzenmacher double hashing (`h1 + i·h2 mod m`) is *not*
    /// used directly: taken mod a small `m`, its positions depend only
    /// on `(h1 mod m, h2 mod m)`, so distinct keys collide on entire
    /// probe sets with probability ~`2/m²`. BF-leaves split a page's
    /// bits into one filter per data page — often under 100 bits each —
    /// where that floor (~10⁻³) dwarfs any target fpp below it. Mixing
    /// the combined 64-bit value through a finalizer before the modulo
    /// restores full 64-bit entropy per probe; whole-set collisions
    /// then require full `(h1, h2)` equality (~2⁻¹²⁸).
    #[inline]
    pub fn probe(&self, i: u32, m: u64) -> u64 {
        debug_assert!(m > 0);
        mix64(self.h1.wrapping_add(u64::from(i).wrapping_mul(self.h2))) % m
    }
}

/// `splitmix64` finalizer: a 64-bit bijection with strong avalanche.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Iterator over the `k` probe positions of a fingerprint.
#[derive(Debug, Clone)]
pub struct ProbeSequence {
    fp: KeyFingerprint,
    m: u64,
    k: u32,
    next: u32,
}

impl ProbeSequence {
    /// Probe positions of `fp` within a table of `m` bits using `k` hashes.
    #[inline]
    pub fn new(fp: KeyFingerprint, m: u64, k: u32) -> Self {
        Self { fp, m, k, next: 0 }
    }
}

impl Iterator for ProbeSequence {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.next >= self.k {
            return None;
        }
        let bit = self.fp.probe(self.next, self.m);
        self.next += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.k - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ProbeSequence {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xxh64_empty_matches_reference_vector() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn xxh64_is_seed_sensitive() {
        let a = xxh64(b"bf-tree", 0);
        let b = xxh64(b"bf-tree", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn xxh64_covers_all_length_classes() {
        // Exercise the <4, <8, <32 and >=32 byte paths; values must be
        // deterministic and pairwise distinct.
        let inputs: Vec<Vec<u8>> = vec![
            vec![1u8; 1],
            vec![2u8; 5],
            vec![3u8; 9],
            vec![4u8; 31],
            vec![5u8; 32],
            vec![6u8; 67],
        ];
        let hashes: Vec<u64> = inputs.iter().map(|v| xxh64(v, 7)).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "inputs {i} and {j} collided");
            }
            assert_eq!(hashes[i], xxh64(&inputs[i], 7), "not deterministic");
        }
    }

    #[test]
    fn fnv_finalizer_avalanches_small_ints() {
        // Consecutive integers should not hash to consecutive values.
        let h0 = fnv1a64(&0u64.to_le_bytes(), 0);
        let h1 = fnv1a64(&1u64.to_le_bytes(), 0);
        let diff = (h0 ^ h1).count_ones();
        assert!(diff >= 16, "poor avalanche: {diff} differing bits");
    }

    #[test]
    fn fingerprint_h2_is_odd() {
        for key in 0u64..256 {
            let fp = KeyFingerprint::new(&key, 42);
            assert_eq!(fp.h2 & 1, 1);
        }
    }

    #[test]
    fn probe_sequence_yields_k_probes_in_range() {
        let fp = KeyFingerprint::new(&123u64, 9);
        let m = 1000;
        let probes: Vec<u64> = ProbeSequence::new(fp, m, 7).collect();
        assert_eq!(probes.len(), 7);
        assert!(probes.iter().all(|&p| p < m));
    }

    #[test]
    fn probe_positions_spread_over_table() {
        // With m = 2^20 and 3 probes per key, 1000 distinct keys should
        // touch a large number of distinct bits.
        let m = 1 << 20;
        let mut seen = std::collections::HashSet::new();
        for key in 0u64..1000 {
            let fp = KeyFingerprint::new(&key, 1);
            for p in ProbeSequence::new(fp, m, 3) {
                seen.insert(p);
            }
        }
        assert!(seen.len() > 2900, "only {} distinct bits", seen.len());
    }

    #[test]
    fn u32_and_u128_keys_hash() {
        let fp32 = KeyFingerprint::new(&7u32, 0);
        let fp128 = KeyFingerprint::new(&7u128, 0);
        // Different byte lengths must produce different fingerprints.
        assert_ne!(fp32, fp128);
    }
}
