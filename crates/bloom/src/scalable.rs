//! Scalable Bloom filter (Almeida et al., 2007) — `[2]` in the paper's
//! Section 2: a series of plain filters with geometrically tightening
//! false-positive probabilities, so the *compound* fpp stays below a
//! target no matter how many keys arrive.

use crate::filter::BloomFilter;
use crate::hash::BloomKey;

/// A scalable Bloom filter.
///
/// New keys go to the newest slice; when the slice reaches its design
/// capacity, a new slice is opened with `growth` times the capacity and
/// `tightening` times the fpp of the previous one. The compound fpp is
/// bounded by `p0 / (1 - tightening)`.
#[derive(Debug, Clone)]
pub struct ScalableBloomFilter {
    slices: Vec<Slice>,
    initial_capacity: u64,
    initial_fpp: f64,
    growth: f64,
    tightening: f64,
    seed: u64,
}

#[derive(Debug, Clone)]
struct Slice {
    filter: BloomFilter,
    capacity: u64,
}

impl ScalableBloomFilter {
    /// Standard parameters: slice growth 2x, fpp tightening 0.5x.
    pub fn new(initial_capacity: u64, initial_fpp: f64, seed: u64) -> Self {
        Self::with_parameters(initial_capacity, initial_fpp, 2.0, 0.5, seed)
    }

    /// Fully parameterized construction.
    pub fn with_parameters(
        initial_capacity: u64,
        initial_fpp: f64,
        growth: f64,
        tightening: f64,
        seed: u64,
    ) -> Self {
        assert!(initial_capacity > 0);
        assert!(initial_fpp > 0.0 && initial_fpp < 1.0);
        assert!(growth >= 1.0);
        assert!(tightening > 0.0 && tightening < 1.0);
        let first = Slice {
            filter: BloomFilter::with_capacity(
                initial_capacity,
                initial_fpp * (1.0 - tightening),
                seed,
            ),
            capacity: initial_capacity,
        };
        Self {
            slices: vec![first],
            initial_capacity,
            initial_fpp,
            growth,
            tightening,
            seed,
        }
    }

    /// Number of slices currently allocated.
    pub fn n_slices(&self) -> usize {
        self.slices.len()
    }

    /// Total keys inserted.
    pub fn n_inserted(&self) -> u64 {
        self.slices.iter().map(|s| s.filter.n_inserted()).sum()
    }

    /// Upper bound on the compound false-positive probability:
    /// `p0 · (1-t) · Σ tⁱ  <  p0`.
    pub fn compound_fpp_bound(&self) -> f64 {
        self.initial_fpp
    }

    /// Total bits across all slices.
    pub fn total_bits(&self) -> u64 {
        self.slices.iter().map(|s| s.filter.m_bits()).sum()
    }

    /// Insert `key`, opening a new slice if the current one is full.
    pub fn insert<K: BloomKey>(&mut self, key: &K) {
        let need_new = {
            let last = self.slices.last().expect("at least one slice");
            last.filter.n_inserted() >= last.capacity
        };
        if need_new {
            let i = self.slices.len() as u32;
            let capacity =
                (self.initial_capacity as f64 * self.growth.powi(i as i32)).ceil() as u64;
            let fpp = self.initial_fpp * (1.0 - self.tightening) * self.tightening.powi(i as i32);
            let fpp = fpp.max(1e-12);
            // A fresh seed per slice keeps slices independent.
            let slice_seed = self
                .seed
                .wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9));
            self.slices.push(Slice {
                filter: BloomFilter::with_capacity(capacity, fpp, slice_seed),
                capacity,
            });
        }
        self.slices
            .last_mut()
            .expect("at least one slice")
            .filter
            .insert(key);
    }

    /// Membership test: present if any slice contains the key.
    pub fn contains<K: BloomKey>(&self, key: &K) -> bool {
        self.slices.iter().any(|s| s.filter.contains(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_past_initial_capacity_without_false_negatives() {
        let mut sbf = ScalableBloomFilter::new(1_000, 0.01, 0);
        for key in 0u64..20_000 {
            sbf.insert(&key);
        }
        assert!(sbf.n_slices() > 1, "should have grown");
        for key in 0u64..20_000 {
            assert!(sbf.contains(&key), "false negative for {key}");
        }
    }

    #[test]
    fn compound_fpp_stays_bounded_after_growth() {
        let p0 = 0.01;
        let mut sbf = ScalableBloomFilter::new(1_000, p0, 7);
        for key in 0u64..16_000 {
            sbf.insert(&key);
        }
        let trials = 100_000u64;
        let fps = (1_000_000..1_000_000 + trials)
            .filter(|k| sbf.contains(k))
            .count();
        let measured = fps as f64 / trials as f64;
        assert!(
            measured <= p0 * 1.5,
            "compound fpp {measured} exceeds bound {p0}"
        );
    }

    #[test]
    fn slice_capacities_grow_geometrically() {
        let mut sbf = ScalableBloomFilter::new(100, 0.05, 1);
        for key in 0u64..1_000 {
            sbf.insert(&key);
        }
        let caps: Vec<u64> = sbf.slices.iter().map(|s| s.capacity).collect();
        for w in caps.windows(2) {
            assert!(w[1] >= w[0] * 2, "capacities {caps:?} not doubling");
        }
    }

    #[test]
    fn empty_filter_contains_nothing_surely() {
        let sbf = ScalableBloomFilter::new(10, 0.001, 0);
        let hits = (0u64..10_000).filter(|k| sbf.contains(k)).count();
        assert_eq!(hits, 0);
    }
}
