//! Deletable Bloom filter (Rothenberg et al., 2010) — the `[39]` of the
//! paper's Section 7: a plain bit-array filter that can *sometimes*
//! delete, by remembering which regions of the bit array are
//! collision-free.
//!
//! The bit array is split into `r` regions. A small auxiliary bitmap
//! marks regions where some bit was set by two different insertions.
//! A key may be deleted iff at least one of its `k` bits falls in a
//! collision-free region — resetting that bit cannot create a false
//! negative for any other key.

use crate::hash::{BloomKey, KeyFingerprint};
use crate::math;

/// A deletable Bloom filter with `r` collision-tracking regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletableBloomFilter {
    bits: Vec<u64>,
    collided: Vec<bool>,
    m: u64,
    k: u32,
    r: u32,
    seed: u64,
}

impl DeletableBloomFilter {
    /// Create a filter with `m_bits` bits, `k` hashes and `r` regions.
    pub fn new(m_bits: u64, k: u32, r: u32, seed: u64) -> Self {
        assert!(m_bits > 0 && k > 0 && r > 0);
        let words = m_bits.div_ceil(64) as usize;
        let m = words as u64 * 64;
        Self {
            bits: vec![0u64; words],
            collided: vec![false; r as usize],
            m,
            k,
            r,
            seed,
        }
    }

    /// Size for `n` keys at fpp `p`, defaulting to `r = 64` regions.
    pub fn with_capacity(n: u64, p: f64, seed: u64) -> Self {
        let m = math::bits_for(n.max(1), p).max(64);
        let k = math::optimal_k(m, n.max(1));
        Self::new(m, k, 64, seed)
    }

    #[inline]
    fn region_of(&self, bit: u64) -> usize {
        ((bit as u128 * self.r as u128) / self.m as u128) as usize
    }

    #[inline]
    fn get_bit(&self, bit: u64) -> bool {
        self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    #[inline]
    fn set_bit(&mut self, bit: u64) {
        self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn clear_bit(&mut self, bit: u64) {
        self.bits[(bit / 64) as usize] &= !(1u64 << (bit % 64));
    }

    /// Insert `key`, recording collisions per region.
    pub fn insert<K: BloomKey>(&mut self, key: &K) {
        let fp = KeyFingerprint::new(key, self.seed);
        for i in 0..self.k {
            let bit = fp.probe(i, self.m);
            if self.get_bit(bit) {
                // Bit already set by some earlier insertion (possibly of
                // this same key): the region is no longer collision-free.
                let region = self.region_of(bit);
                self.collided[region] = true;
            } else {
                self.set_bit(bit);
            }
        }
    }

    /// Membership test (standard Bloom semantics).
    pub fn contains<K: BloomKey>(&self, key: &K) -> bool {
        let fp = KeyFingerprint::new(key, self.seed);
        (0..self.k).all(|i| self.get_bit(fp.probe(i, self.m)))
    }

    /// Attempt to delete `key`. Returns `true` if at least one of its
    /// bits lay in a collision-free region and was reset (so subsequent
    /// `contains` returns `false`); `false` if the key is not deletable.
    pub fn remove<K: BloomKey>(&mut self, key: &K) -> bool {
        if !self.contains(key) {
            return false;
        }
        let fp = KeyFingerprint::new(key, self.seed);
        let mut deleted = false;
        for i in 0..self.k {
            let bit = fp.probe(i, self.m);
            if !self.collided[self.region_of(bit)] {
                self.clear_bit(bit);
                deleted = true;
            }
        }
        deleted
    }

    /// Fraction of regions still collision-free (the filter's remaining
    /// delete capacity).
    pub fn deletable_fraction(&self) -> f64 {
        let free = self.collided.iter().filter(|c| !**c).count();
        free as f64 / self.r as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_filter_supports_deletes() {
        // Far below capacity almost every region is collision-free.
        let mut dbf = DeletableBloomFilter::new(1 << 16, 3, 128, 0);
        for key in 0u64..50 {
            dbf.insert(&key);
        }
        let mut deleted = 0;
        for key in 0u64..50 {
            if dbf.remove(&key) {
                deleted += 1;
                assert!(!dbf.contains(&key), "deleted key {key} still present");
            }
        }
        assert!(
            deleted >= 45,
            "only {deleted}/50 deletable in sparse filter"
        );
    }

    #[test]
    fn deletes_never_create_false_negatives_for_others() {
        let mut dbf = DeletableBloomFilter::new(1 << 12, 3, 64, 1);
        for key in 0u64..300 {
            dbf.insert(&key);
        }
        // Delete even keys where possible.
        for key in (0u64..300).step_by(2) {
            dbf.remove(&key);
        }
        // Odd keys must all still be present.
        for key in (1u64..300).step_by(2) {
            assert!(dbf.contains(&key), "false negative for surviving key {key}");
        }
    }

    #[test]
    fn deletable_fraction_decreases_with_load() {
        let mut dbf = DeletableBloomFilter::new(1 << 12, 3, 64, 2);
        let f0 = dbf.deletable_fraction();
        assert_eq!(f0, 1.0);
        for key in 0u64..2_000 {
            dbf.insert(&key);
        }
        assert!(dbf.deletable_fraction() < 0.5);
    }

    #[test]
    fn remove_absent_returns_false() {
        let mut dbf = DeletableBloomFilter::new(1 << 12, 3, 64, 3);
        dbf.insert(&5u64);
        assert!(!dbf.remove(&1_000_000u64));
    }

    #[test]
    fn regions_partition_bits() {
        let dbf = DeletableBloomFilter::new(1 << 10, 3, 7, 0);
        let mut counts = vec![0u64; 7];
        for bit in 0..dbf.m {
            counts[dbf.region_of(bit)] += 1;
        }
        let total: u64 = counts.iter().sum();
        assert_eq!(total, dbf.m);
        // Regions are near-equal (within one rounding unit of m/r).
        let ideal = dbf.m as f64 / 7.0;
        for c in counts {
            assert!(
                (c as f64 - ideal).abs() <= 1.0,
                "region size {c}, ideal {ideal}"
            );
        }
    }
}
