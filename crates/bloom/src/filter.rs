//! The classic Bloom filter (Bloom, 1970) with double hashing.

use crate::hash::{BloomKey, KeyFingerprint, ProbeSequence};
use crate::math;

/// A standard Bloom filter over `m` bits with `k` hash functions.
///
/// Supports insertion and membership tests; never yields false
/// negatives, and yields false positives with a probability governed by
/// Equation 1 of the paper. Filters are deterministic given the seed.
///
/// ```
/// use bftree_bloom::BloomFilter;
///
/// let mut bf = BloomFilter::with_capacity(1_000, 0.01, 0);
/// bf.insert(&42u64);
/// assert!(bf.contains(&42u64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    seed: u64,
    n_inserted: u64,
}

impl BloomFilter {
    /// Create a filter with exactly `m_bits` bits and `k` hash
    /// functions. `m_bits` is rounded up to a multiple of 64.
    pub fn new(m_bits: u64, k: u32, seed: u64) -> Self {
        assert!(m_bits > 0, "filter must have at least one bit");
        assert!(k > 0, "filter needs at least one hash function");
        let words = m_bits.div_ceil(64) as usize;
        Self {
            bits: vec![0u64; words],
            m: words as u64 * 64,
            k,
            seed,
            n_inserted: 0,
        }
    }

    /// Create a filter sized for `n` keys at false-positive probability
    /// `p` with the optimal number of hash functions (Equation 1).
    pub fn with_capacity(n: u64, p: f64, seed: u64) -> Self {
        let m = math::bits_for(n.max(1), p).max(64);
        let k = math::optimal_k(m, n.max(1));
        Self::new(m, k, seed)
    }

    /// Number of bits `m`.
    #[inline]
    pub fn m_bits(&self) -> u64 {
        self.m
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of insert operations performed (duplicates count).
    #[inline]
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// Size of the bit array in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.bits.len() * 8
    }

    #[inline]
    fn set_bit(&mut self, bit: u64) {
        self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn get_bit(&self, bit: u64) -> bool {
        self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Insert `key`.
    #[inline]
    pub fn insert<K: BloomKey>(&mut self, key: &K) {
        self.insert_fingerprint(KeyFingerprint::new(key, self.seed));
    }

    /// Insert a precomputed fingerprint (lets callers hash once and
    /// probe many filters, as BF-leaves do).
    #[inline]
    pub fn insert_fingerprint(&mut self, fp: KeyFingerprint) {
        for i in 0..self.k {
            self.set_bit(fp.probe(i, self.m));
        }
        self.n_inserted += 1;
    }

    /// Membership test for `key`.
    #[inline]
    pub fn contains<K: BloomKey>(&self, key: &K) -> bool {
        self.contains_fingerprint(KeyFingerprint::new(key, self.seed))
    }

    /// Membership test for a precomputed fingerprint.
    #[inline]
    pub fn contains_fingerprint(&self, fp: KeyFingerprint) -> bool {
        for i in 0..self.k {
            if !self.get_bit(fp.probe(i, self.m)) {
                return false;
            }
        }
        true
    }

    /// Probe positions a key maps to (exposed for the counting /
    /// deletable variants and for tests).
    pub fn probes<K: BloomKey>(&self, key: &K) -> ProbeSequence {
        ProbeSequence::new(KeyFingerprint::new(key, self.seed), self.m, self.k)
    }

    /// Number of set bits.
    pub fn ones(&self) -> u64 {
        self.bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.ones() as f64 / self.m as f64
    }

    /// Expected false-positive rate given the current fill ratio:
    /// `fill^k`. This tracks the *actual* state of the filter, so it
    /// reflects insert-driven degradation (Figure 14).
    pub fn current_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Clear all bits and reset the insert counter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.n_inserted = 0;
    }

    /// Bitwise union with a filter of identical geometry (`m`, `k`,
    /// seed). The union contains every key either filter contains.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.m, other.m, "m mismatch");
        assert_eq!(self.k, other.k, "k mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.n_inserted += other.n_inserted;
    }

    /// Serialize the filter into a byte buffer:
    /// `[m: u64][k: u32][seed: u64][n: u64][bits...]` (little endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.bits.len() * 8);
        out.extend_from_slice(&self.m.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.n_inserted.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize a filter previously written by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 28 {
            return None;
        }
        let m = u64::from_le_bytes(data[0..8].try_into().ok()?);
        let k = u32::from_le_bytes(data[8..12].try_into().ok()?);
        let seed = u64::from_le_bytes(data[12..20].try_into().ok()?);
        let n = u64::from_le_bytes(data[20..28].try_into().ok()?);
        let words = (m / 64) as usize;
        if data.len() < 28 + words * 8 || m % 64 != 0 || k == 0 {
            return None;
        }
        let bits = data[28..28 + words * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Some(Self {
            bits,
            m,
            k,
            seed,
            n_inserted: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_capacity(10_000, 0.01, 3);
        for key in 0u64..10_000 {
            bf.insert(&key);
        }
        for key in 0u64..10_000 {
            assert!(bf.contains(&key), "false negative for {key}");
        }
    }

    #[test]
    fn empirical_fpp_close_to_design() {
        let p = 0.01;
        let n = 20_000u64;
        let mut bf = BloomFilter::with_capacity(n, p, 7);
        for key in 0..n {
            bf.insert(&key);
        }
        let trials = 100_000u64;
        let fps = (n..n + trials).filter(|k| bf.contains(k)).count();
        let measured = fps as f64 / trials as f64;
        assert!(
            measured < p * 1.5 && measured > p * 0.5,
            "measured fpp {measured}, designed {p}"
        );
    }

    #[test]
    fn fill_ratio_near_half_at_capacity() {
        // At design capacity with optimal k the fill ratio approaches 50%.
        let mut bf = BloomFilter::with_capacity(5_000, 1e-3, 0);
        for key in 0u64..5_000 {
            bf.insert(&key);
        }
        let fill = bf.fill_ratio();
        assert!((0.44..0.55).contains(&fill), "fill = {fill}");
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::new(4096, 3, 5);
        let mut b = BloomFilter::new(4096, 3, 5);
        for k in 0u64..100 {
            a.insert(&k);
        }
        for k in 100u64..200 {
            b.insert(&k);
        }
        a.union_with(&b);
        for k in 0u64..200 {
            assert!(a.contains(&k));
        }
        assert_eq!(a.n_inserted(), 200);
    }

    #[test]
    #[should_panic(expected = "m mismatch")]
    fn union_rejects_mismatched_geometry() {
        let mut a = BloomFilter::new(4096, 3, 5);
        let b = BloomFilter::new(8192, 3, 5);
        a.union_with(&b);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut bf = BloomFilter::new(1 << 14, 5, 99);
        for key in 0u64..1000 {
            bf.insert(&(key * 31));
        }
        let bytes = bf.to_bytes();
        let back = BloomFilter::from_bytes(&bytes).expect("deserialize");
        assert_eq!(bf, back);
    }

    #[test]
    fn from_bytes_rejects_truncation_and_garbage() {
        let bf = BloomFilter::new(4096, 3, 1);
        let bytes = bf.to_bytes();
        assert!(BloomFilter::from_bytes(&bytes[..10]).is_none());
        assert!(BloomFilter::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(BloomFilter::from_bytes(&[]).is_none());
    }

    #[test]
    fn clear_empties_filter() {
        let mut bf = BloomFilter::new(256, 3, 0);
        bf.insert(&1u64);
        assert!(!bf.is_empty());
        bf.clear();
        assert!(bf.is_empty());
        assert_eq!(bf.n_inserted(), 0);
    }

    #[test]
    fn current_fpp_grows_with_inserts() {
        let mut bf = BloomFilter::with_capacity(1_000, 1e-4, 0);
        let mut last = bf.current_fpp();
        for chunk in 0..5 {
            for key in (chunk * 1000)..((chunk + 1) * 1000u64) {
                bf.insert(&key);
            }
            let now = bf.current_fpp();
            assert!(now > last);
            last = now;
        }
    }

    #[test]
    fn seeds_give_independent_filters() {
        let mut a = BloomFilter::new(1 << 12, 3, 1);
        let mut b = BloomFilter::new(1 << 12, 3, 2);
        for k in 0u64..200 {
            a.insert(&k);
            b.insert(&k);
        }
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
