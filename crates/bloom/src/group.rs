//! Property 1 of Section 3: splitting one Bloom filter into `S`
//! smaller ones.
//!
//! *"If a BF with size M bits can store the membership information of N
//! elements with false positive p, then S BFs with size M/S bits each
//! can store the membership information of N/S elements each with the
//! same p."*
//!
//! [`BloomGroup`] packages exactly that: a total bit budget divided
//! evenly across `S` member filters, each covering one *bucket* (in the
//! BF-Tree, one data page or one group of consecutive pages). It is the
//! in-memory shape of a BF-leaf's filter block.
//!
//! Members are **bit-packed into one shared array**: member `b` owns
//! bits `[b·per, (b+1)·per)`. This matters because a BF-leaf's budget
//! is one fixed page — with thousands of pages per leaf at loose fpps,
//! members are only a handful of bits each, and rounding every member
//! up to a word would silently inflate the node ~10× past its page
//! budget (and understate the measured false-positive rate just as
//! much).

use crate::blocked::FilterLayout;
use crate::hash::{BloomKey, KeyFingerprint};

/// `S` Bloom filters bit-packed into one shared budget — equally sized
/// ([`Self::new`]) or sized proportionally to each member's expected
/// load ([`Self::new_weighted`]), each member laid out
/// [`FilterLayout::Standard`] or cache-line-[`FilterLayout::Blocked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomGroup {
    words: Vec<u64>,
    /// Uniform fast path: bits per member. 0 when weighted.
    per_filter_bits: u64,
    /// Weighted layout: member `b` owns bits `[starts[b], starts[b+1])`.
    /// Empty for the uniform layout.
    starts: Vec<u64>,
    s: usize,
    k: u32,
    n_inserted: u64,
    seed: u64,
    /// Per-member probe layout. Blocked members confine a key's `k`
    /// probes to one 512-bit block of the member's range; members that
    /// fit a single block behave identically under both layouts.
    layout: FilterLayout,
}

impl BloomGroup {
    /// Divide `total_bits` evenly across `s` member filters, each with
    /// `k` hash functions, in the [`FilterLayout::Standard`] layout.
    ///
    /// The division is honest: members get `total_bits / s` bits even
    /// when that is tiny — loose-fpp BF-leaves over long page ranges
    /// really do run filters of a few bits; that *is* the accuracy
    /// being traded away. The only floor is 1 bit per member.
    pub fn new(total_bits: u64, s: usize, k: u32, seed: u64) -> Self {
        Self::new_with_layout(total_bits, s, k, seed, FilterLayout::Standard)
    }

    /// [`Self::new`] with an explicit per-member probe layout.
    pub fn new_with_layout(
        total_bits: u64,
        s: usize,
        k: u32,
        seed: u64,
        layout: FilterLayout,
    ) -> Self {
        assert!(s > 0, "group needs at least one filter");
        assert!(k >= 1, "need at least one hash function");
        let per = (total_bits / s as u64).max(1);
        let words = vec![0u64; (per * s as u64).div_ceil(64) as usize];
        Self {
            words,
            per_filter_bits: per,
            starts: Vec::new(),
            s,
            k,
            n_inserted: 0,
            seed,
            layout,
        }
    }

    /// Divide `total_bits` across `weights.len()` members
    /// proportionally to `weights` (each member's expected key count).
    ///
    /// Property 1 preserves the fpp only when keys split *evenly*
    /// across members; when the per-page key distribution is skewed —
    /// high-cardinality attributes leave most pages' filters empty
    /// while a few carry several keys — a uniform split lets the
    /// loaded members' fpp blow up (fpp is convex in load).
    /// Proportional allocation keeps bits-per-key, and therefore the
    /// realized fpp, constant across members. Zero-weight members get
    /// one bit that is never set, so they reject every probe for free.
    pub fn new_weighted(total_bits: u64, weights: &[u64], k: u32, seed: u64) -> Self {
        Self::new_weighted_with_layout(total_bits, weights, k, seed, FilterLayout::Standard)
    }

    /// [`Self::new_weighted`] with an explicit per-member probe layout.
    pub fn new_weighted_with_layout(
        total_bits: u64,
        weights: &[u64],
        k: u32,
        seed: u64,
        layout: FilterLayout,
    ) -> Self {
        assert!(!weights.is_empty(), "group needs at least one filter");
        assert!(k >= 1, "need at least one hash function");
        let s = weights.len();
        let total_weight: u64 = weights.iter().sum::<u64>().max(1);
        // Reserve the 1-bit floors, spread the rest by weight.
        let spare = total_bits.saturating_sub(s as u64);
        let mut starts = Vec::with_capacity(s + 1);
        let mut acc = 0u64;
        let mut carry = 0u64; // running share in weight units
        starts.push(0);
        for &w in weights {
            carry += w * spare;
            let share = carry / total_weight;
            carry %= total_weight;
            acc += 1 + share;
            starts.push(acc);
        }
        let words = vec![0u64; acc.div_ceil(64) as usize];
        Self {
            words,
            per_filter_bits: 0,
            starts,
            s,
            k,
            n_inserted: 0,
            seed,
            layout,
        }
    }

    /// Member `b`'s bit range `(base, len)`.
    #[inline]
    fn member_range(&self, b: usize) -> (u64, u64) {
        if self.starts.is_empty() {
            (b as u64 * self.per_filter_bits, self.per_filter_bits)
        } else {
            (self.starts[b], self.starts[b + 1] - self.starts[b])
        }
    }

    /// Bits owned by member `b`.
    pub fn member_bits(&self, b: usize) -> u64 {
        self.member_range(b).1
    }

    /// Number of member filters `S`.
    #[inline]
    pub fn len(&self) -> usize {
        self.s
    }

    /// True if the group has no member filters (never constructed so).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.s == 0
    }

    /// Bits per member filter (uniform layout; for the weighted layout
    /// this is the mean — use [`Self::member_bits`] per member).
    #[inline]
    pub fn bits_per_filter(&self) -> u64 {
        if self.starts.is_empty() {
            self.per_filter_bits
        } else {
            self.total_bits() / self.s as u64
        }
    }

    /// Whether members are sized proportionally to their load.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.starts.is_empty()
    }

    /// Per-member probe layout.
    #[inline]
    pub fn layout(&self) -> FilterLayout {
        self.layout
    }

    /// Total bits across members.
    pub fn total_bits(&self) -> u64 {
        if self.starts.is_empty() {
            self.per_filter_bits * self.s as u64
        } else {
            *self.starts.last().expect("starts non-empty")
        }
    }

    /// Hash count per member.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Shared hash seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn set_bit(&mut self, bit: u64) {
        self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn get_bit(&self, bit: u64) -> bool {
        self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Insert `key` into the filter of `bucket`.
    #[inline]
    pub fn insert<K: BloomKey>(&mut self, bucket: usize, key: &K) {
        assert!(
            bucket < self.s,
            "bucket {bucket} out of range (S = {})",
            self.s
        );
        let fp = KeyFingerprint::new(key, self.seed);
        let (base, m) = self.member_range(bucket);
        let (off, window) = self.layout.probe_window(&fp, m);
        for i in 0..self.k {
            let bit = base + off + fp.probe(i, window);
            self.set_bit(bit);
        }
        self.n_inserted += 1;
    }

    /// Test `key` against a single bucket.
    #[inline]
    pub fn contains<K: BloomKey>(&self, bucket: usize, key: &K) -> bool {
        let fp = KeyFingerprint::new(key, self.seed);
        self.contains_fp(bucket, &fp)
    }

    #[inline]
    fn contains_fp(&self, bucket: usize, fp: &KeyFingerprint) -> bool {
        let (base, m) = self.member_range(bucket);
        let (off, window) = self.layout.probe_window(fp, m);
        (0..self.k).all(|i| self.get_bit(base + off + fp.probe(i, window)))
    }

    /// Probe all buckets, appending matches to a caller-provided
    /// buffer (the hot path avoids per-probe allocation). The key is
    /// hashed once; its `k` in-filter offsets are then tested against
    /// every bucket's bit range.
    pub fn matching_buckets_into<K: BloomKey>(&self, key: &K, out: &mut Vec<usize>) {
        let fp = KeyFingerprint::new(key, self.seed);
        self.matching_buckets_fp_range_into(&fp, 0, self.s, out)
    }

    /// [`Self::matching_buckets_into`] over a precomputed fingerprint —
    /// batched probes hash each key once and sweep many groups with the
    /// same fingerprint (probe positions depend only on each member's
    /// geometry, not on which group is being swept).
    pub fn matching_buckets_fp_into(&self, fp: &KeyFingerprint, out: &mut Vec<usize>) {
        self.matching_buckets_fp_range_into(fp, 0, self.s, out)
    }

    /// [`Self::matching_buckets_into`] restricted to buckets in
    /// `lo..hi` — the unit of work for §8's parallel probing, where
    /// each worker sweeps a disjoint bucket range.
    pub fn matching_buckets_range_into<K: BloomKey>(
        &self,
        key: &K,
        lo: usize,
        hi: usize,
        out: &mut Vec<usize>,
    ) {
        let fp = KeyFingerprint::new(key, self.seed);
        self.matching_buckets_fp_range_into(&fp, lo, hi, out)
    }

    /// [`Self::matching_buckets_range_into`] over a precomputed
    /// fingerprint.
    pub fn matching_buckets_fp_range_into(
        &self,
        fp: &KeyFingerprint,
        lo: usize,
        hi: usize,
        out: &mut Vec<usize>,
    ) {
        assert!(
            lo <= hi && hi <= self.s,
            "bucket range {lo}..{hi} out of 0..{}",
            self.s
        );
        let k = self.k.min(64) as usize;
        if self.starts.is_empty() {
            // Uniform fast path: members share one geometry, so the
            // block choice and probe-offset set are computed once and
            // serve every bucket. Under the blocked layout all k
            // offsets land inside one 512-bit window of each member.
            let (off, window) = self.layout.probe_window(fp, self.per_filter_bits);
            let mut offsets = [0u64; 64];
            for (i, slot) in offsets.iter_mut().take(k).enumerate() {
                *slot = off + fp.probe(i as u32, window);
            }
            // Pad to four probes so the pre-test below needs no length
            // branch; re-testing a bit is a no-op.
            for i in k..4 {
                offsets[i] = offsets[i % k];
            }
            let w = self.words.as_slice();
            // Every probed bit lies below `hi · per` ≤ `s · per`, and
            // the words vector was sized to `ceil(s · per / 64)` at
            // construction (and only ever grows), so the word index of
            // any probe is in bounds — asserted once here so the hot
            // loop can skip per-load bounds checks.
            let max_bit = hi as u64 * self.per_filter_bits;
            assert!(
                max_bit.div_ceil(64) as usize <= w.len(),
                "probe range exceeds backing words"
            );
            #[inline(always)]
            fn bit64(w: &[u64], bit: u64) -> u64 {
                // SAFETY: `bit < max_bit` and the assertion above
                // guarantees `bit / 64 < w.len()`.
                (unsafe { *w.get_unchecked((bit >> 6) as usize) }) >> (bit & 63)
            }
            // Branchless 4-probe pre-test, two buckets per iteration.
            // A plain early-exit scan branches on every probe, and at
            // ~50% fill those branches are coin flips the predictor
            // cannot learn — the mispredicts dominate the whole sweep.
            // ANDing the first four probes' bits gives one
            // data-dependent branch per bucket that is taken for ~6%
            // of buckets; processing two buckets per iteration lets
            // the core overlap the two pre-tests' loads. Together this
            // measures ~3x faster across the sweep.
            let (o0, o1, o2, o3) = (offsets[0], offsets[1], offsets[2], offsets[3]);
            let rest = &offsets[4..k.max(4)];
            let per = self.per_filter_bits;
            let pre4 = |base: u64| {
                bit64(w, base + o0)
                    & bit64(w, base + o1)
                    & bit64(w, base + o2)
                    & bit64(w, base + o3)
                    & 1
            };
            let tail = |base: u64| rest.iter().all(|&o| bit64(w, base + o) & 1 != 0);
            let mut b = lo;
            let mut base = lo as u64 * per;
            while b + 1 < hi {
                let pre_a = pre4(base);
                let pre_b = pre4(base + per);
                if pre_a != 0 && tail(base) {
                    out.push(b);
                }
                if pre_b != 0 && tail(base + per) {
                    out.push(b + 1);
                }
                b += 2;
                base += 2 * per;
            }
            if b < hi && pre4(base) != 0 && tail(base) {
                out.push(b);
            }
        } else {
            // Weighted layout: member sizes differ, so probe positions
            // must be reduced per member.
            for b in lo..hi {
                if self.contains_fp(b, fp) {
                    out.push(b);
                }
            }
        }
    }

    /// Grow the group to `s` member filters (same geometry), e.g. when
    /// an insert lands on a page beyond the leaf's current page range
    /// (Algorithm 3's range extension). No-op if `s ≤ len`.
    pub fn extend_to(&mut self, s: usize) {
        if s <= self.s {
            return;
        }
        if self.starts.is_empty() {
            self.s = s;
            let need = (self.per_filter_bits * s as u64).div_ceil(64) as usize;
            if self.words.len() < need {
                self.words.resize(need, 0);
            }
        } else {
            // Weighted layout: append mean-sized members.
            let mean = (self.total_bits() / self.s as u64).max(1);
            let mut acc = self.total_bits();
            while self.s < s {
                acc += mean;
                self.starts.push(acc);
                self.s += 1;
            }
            let need = acc.div_ceil(64) as usize;
            if self.words.len() < need {
                self.words.resize(need, 0);
            }
        }
    }

    /// Total inserts across all members.
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// Set bits within member `bucket`'s range.
    pub fn ones(&self, bucket: usize) -> u64 {
        let (base, m) = self.member_range(bucket);
        (base..base + m).filter(|&b| self.get_bit(b)).count() as u64
    }

    /// Fill ratio of member `bucket`.
    pub fn fill_ratio(&self, bucket: usize) -> f64 {
        let (_, m) = self.member_range(bucket);
        self.ones(bucket) as f64 / m as f64
    }

    /// Estimated current false-positive probability of member `bucket`
    /// from its fill ratio: `fill^k`.
    pub fn current_fpp(&self, bucket: usize) -> f64 {
        self.fill_ratio(bucket).powi(self.k as i32)
    }

    /// Bit 31 of the serialized `s` word flags the blocked probe
    /// layout (member counts never approach 2³¹; groups written before
    /// the flag existed deserialize as `Standard`).
    const BLOCKED_FLAG: u32 = 1 << 31;

    /// Serialize:
    /// `[s: u32][k: u32][per: u64][seed: u64][n: u64][n_starts: u32]
    /// [starts...][words...]` — `n_starts` is 0 for the uniform bit
    /// division; bit 31 of `s` carries the probe layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(36 + self.starts.len() * 8 + self.words.len() * 8);
        let s_word = self.s as u32
            | match self.layout {
                FilterLayout::Standard => 0,
                FilterLayout::Blocked => Self::BLOCKED_FLAG,
            };
        out.extend_from_slice(&s_word.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.per_filter_bits.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.n_inserted.to_le_bytes());
        out.extend_from_slice(&(self.starts.len() as u32).to_le_bytes());
        for v in &self.starts {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize a group written by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 36 {
            return None;
        }
        let s_word = u32::from_le_bytes(data[0..4].try_into().ok()?);
        let layout = if s_word & Self::BLOCKED_FLAG != 0 {
            FilterLayout::Blocked
        } else {
            FilterLayout::Standard
        };
        let s = (s_word & !Self::BLOCKED_FLAG) as usize;
        let k = u32::from_le_bytes(data[4..8].try_into().ok()?);
        let per = u64::from_le_bytes(data[8..16].try_into().ok()?);
        let seed = u64::from_le_bytes(data[16..24].try_into().ok()?);
        let n_inserted = u64::from_le_bytes(data[24..32].try_into().ok()?);
        let n_starts = u32::from_le_bytes(data[32..36].try_into().ok()?) as usize;
        if s == 0 || k == 0 {
            return None;
        }
        if n_starts != 0 && n_starts != s + 1 {
            return None;
        }
        let mut at = 36;
        if data.len() < at + n_starts * 8 {
            return None;
        }
        let starts: Vec<u64> = data[at..at + n_starts * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        at += n_starts * 8;
        let total = if starts.is_empty() {
            if per == 0 {
                return None;
            }
            per * s as u64
        } else {
            *starts.last().expect("non-empty")
        };
        let n_words = total.div_ceil(64) as usize;
        let body = &data[at..];
        if body.len() != n_words * 8 {
            return None;
        }
        let words = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Some(Self {
            words,
            per_filter_bits: per,
            starts,
            s,
            k,
            n_inserted,
            seed,
            layout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math;

    #[test]
    fn routing_is_exact_per_bucket() {
        let mut g = BloomGroup::new(1 << 16, 8, 3, 0);
        for key in 0u64..800 {
            g.insert((key % 8) as usize, &key);
        }
        for key in 0u64..800 {
            assert!(g.contains((key % 8) as usize, &key));
        }
        assert_eq!(g.n_inserted(), 800);
    }

    #[test]
    fn property_1_split_preserves_fpp() {
        // One big filter with N keys at p vs. S filters with N/S keys
        // each: the measured fpp must agree within noise.
        let p = 0.01;
        let n = 32_000u64;
        let s = 16usize;
        let total_bits = math::bits_for(n, p);

        let mut big = crate::BloomFilter::new(total_bits, 3, 1);
        for key in 0..n {
            big.insert(&key);
        }

        let mut group = BloomGroup::new(total_bits, s, 3, 1);
        for key in 0..n {
            group.insert((key % s as u64) as usize, &key);
        }

        let trials = 50_000u64;
        let fp_big = (n..n + trials).filter(|k| big.contains(k)).count() as f64 / trials as f64;
        // For the group, measure per-bucket fpp (a key absent everywhere).
        let mut fp_group = 0usize;
        let mut probes = 0usize;
        for key in n..n + trials / 10 {
            for b in 0..s {
                probes += 1;
                if group.contains(b, &key) {
                    fp_group += 1;
                }
            }
        }
        let fp_group = fp_group as f64 / probes as f64;
        assert!(
            (fp_big - fp_group).abs() < 0.01,
            "big {fp_big} vs group {fp_group}"
        );
    }

    #[test]
    fn matching_buckets_finds_home_bucket() {
        let mut g = BloomGroup::new(1 << 18, 32, 3, 9);
        for key in 0u64..3_200 {
            g.insert((key % 32) as usize, &key);
        }
        let mut matches = Vec::new();
        for key in 0u64..3_200 {
            matches.clear();
            g.matching_buckets_into(&key, &mut matches);
            assert!(matches.contains(&((key % 32) as usize)));
        }
    }

    #[test]
    fn matching_buckets_into_matches_per_bucket_contains() {
        let mut g = BloomGroup::new(1 << 14, 10, 3, 2);
        for key in 0u64..500 {
            g.insert((key % 10) as usize, &key);
        }
        let mut buf = Vec::new();
        for key in 0u64..600 {
            buf.clear();
            g.matching_buckets_into(&key, &mut buf);
            let reference: Vec<usize> = (0..g.len()).filter(|&b| g.contains(b, &key)).collect();
            assert_eq!(buf, reference);
        }
    }

    #[test]
    fn fingerprint_sweep_matches_keyed_sweep() {
        use crate::hash::KeyFingerprint;
        let mut g = BloomGroup::new(1 << 14, 12, 3, 5);
        for key in 0u64..600 {
            g.insert((key % 12) as usize, &key);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for key in 0u64..800 {
            a.clear();
            b.clear();
            g.matching_buckets_into(&key, &mut a);
            let fp = KeyFingerprint::new(&key, g.seed());
            g.matching_buckets_fp_into(&fp, &mut b);
            assert_eq!(a, b, "key {key}");
        }
    }

    #[test]
    fn blocked_group_has_no_false_negatives_and_roundtrips() {
        let mut g = BloomGroup::new_with_layout(1 << 16, 8, 4, 3, FilterLayout::Blocked);
        assert_eq!(g.layout(), FilterLayout::Blocked);
        for key in 0u64..800 {
            g.insert((key % 8) as usize, &key);
        }
        for key in 0u64..800 {
            assert!(g.contains((key % 8) as usize, &key), "false neg {key}");
        }
        let back = BloomGroup::from_bytes(&g.to_bytes()).expect("roundtrip");
        assert_eq!(g, back);
        assert_eq!(back.layout(), FilterLayout::Blocked);
    }

    #[test]
    fn blocked_probes_confined_to_one_block_per_member() {
        // 8192-bit members = 16 blocks each: a single insert must set
        // bits spanning < 512 bits.
        let mut g = BloomGroup::new_with_layout(1 << 16, 8, 5, 7, FilterLayout::Blocked);
        g.insert(3, &99u64);
        let m = g.member_bits(3);
        let base = 3 * m;
        let set: Vec<u64> = (0..m).filter(|&b| g.get_bit(base + b)).collect();
        assert!(!set.is_empty());
        let span = set.last().unwrap() - set.first().unwrap();
        assert!(span < 512, "probe span {span} exceeds one block");
    }

    #[test]
    fn small_member_blocked_equals_standard() {
        // Members of <= 512 bits have a single block: both layouts
        // produce bit-identical groups.
        let mut std_g = BloomGroup::new(4096, 16, 3, 1); // 256 bits per member
        let mut blk_g = BloomGroup::new_with_layout(4096, 16, 3, 1, FilterLayout::Blocked);
        for key in 0u64..200 {
            std_g.insert((key % 16) as usize, &key);
            blk_g.insert((key % 16) as usize, &key);
        }
        for key in 0u64..1_000 {
            for b in 0..16 {
                assert_eq!(std_g.contains(b, &key), blk_g.contains(b, &key));
            }
        }
    }

    #[test]
    fn weighted_blocked_group_routes_exactly() {
        let weights = [10u64, 0, 40, 5, 120];
        let mut g =
            BloomGroup::new_weighted_with_layout(1 << 15, &weights, 3, 2, FilterLayout::Blocked);
        for key in 0u64..500 {
            g.insert((key % 5) as usize, &key);
        }
        for key in 0u64..500 {
            assert!(g.contains((key % 5) as usize, &key));
        }
        let back = BloomGroup::from_bytes(&g.to_bytes()).expect("roundtrip");
        assert_eq!(g, back);
    }

    #[test]
    fn group_serialization_roundtrip() {
        let mut g = BloomGroup::new(1 << 15, 7, 4, 11);
        for key in 0u64..700 {
            g.insert((key % 7) as usize, &(key * 13));
        }
        let bytes = g.to_bytes();
        let back = BloomGroup::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(g, back);
    }

    #[test]
    fn group_from_bytes_rejects_truncation() {
        let g = BloomGroup::new(1 << 12, 4, 3, 0);
        let bytes = g.to_bytes();
        for cut in [0, 5, 11, bytes.len() - 3] {
            assert!(BloomGroup::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn division_is_honest_even_when_tiny() {
        // 32768 bits over 6800 members: ~4 bits each, physically packed
        // — the whole group still fits the page budget it was given.
        let g = BloomGroup::new(32_768, 6_800, 2, 0);
        assert_eq!(g.bits_per_filter(), 4);
        assert!(g.total_bits() <= 32_768);
        assert_eq!(BloomGroup::new(10, 40, 1, 0).bits_per_filter(), 1);
    }

    #[test]
    fn buckets_are_isolated() {
        // A key inserted in bucket 3 of a roomy group must not appear
        // in the other buckets (beyond fpp noise, which at 2^14 bits
        // per member and one key is ~0).
        let mut g = BloomGroup::new(1 << 18, 16, 5, 4);
        g.insert(3, &42u64);
        assert!(g.contains(3, &42u64));
        for b in (0..16).filter(|&b| b != 3) {
            assert!(!g.contains(b, &42u64), "leaked into bucket {b}");
        }
    }

    #[test]
    fn extend_to_grows_without_disturbing_existing_bits() {
        let mut g = BloomGroup::new(1 << 10, 4, 3, 0);
        g.insert(1, &7u64);
        g.extend_to(9);
        assert_eq!(g.len(), 9);
        assert!(g.contains(1, &7u64));
        g.insert(8, &9u64);
        assert!(g.contains(8, &9u64));
    }

    #[test]
    fn fill_and_fpp_estimates() {
        let mut g = BloomGroup::new(1 << 12, 2, 3, 0);
        assert_eq!(g.fill_ratio(0), 0.0);
        assert_eq!(g.current_fpp(0), 0.0);
        for key in 0u64..200 {
            g.insert(0, &key);
        }
        assert!(g.fill_ratio(0) > 0.0);
        assert!(g.fill_ratio(1) == 0.0, "bucket 1 untouched");
        assert!(g.current_fpp(0) > g.current_fpp(1));
    }
}
