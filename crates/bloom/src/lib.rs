//! Bloom filter substrate for the BF-Tree reproduction.
//!
//! This crate implements, from scratch, everything the BF-Tree paper
//! (Athanassoulis & Ailamaki, VLDB 2014) needs from the Bloom-filter
//! literature:
//!
//! * [`BloomFilter`] — the classic Bloom filter of Bloom \[8\], with
//!   double hashing (Kirsch–Mitzenmacher) over two independent 64-bit
//!   hash functions implemented in [`hash`].
//! * [`math`] — the sizing identities of the paper's Section 3
//!   (Equation 1) and Section 7 (Equation 14, fpp under inserts).
//! * [`BloomGroup`] — Property 1 of Section 3: a bit budget divided
//!   into `S` equal filters preserves the false-positive probability.
//!   This is the building block of a BF-leaf.
//! * [`BlockedBloomFilter`] and [`FilterLayout`] — cache-line-blocked
//!   probing (Putze et al.): the first hash picks one 512-bit block
//!   and the remaining probes stay inside it, trading a little
//!   accuracy ([`math::blocked_fpp`]) for one cache miss per test.
//! * [`CountingBloomFilter`] and [`DeletableBloomFilter`] — the
//!   delete-capable variants the paper's Section 7 points at (\[7\], \[39\]).
//! * [`ScalableBloomFilter`] — Almeida et al.'s scalable Bloom filter
//!   \[2\], referenced in Section 2.
//!
//! All filters are deterministic: the same seed and the same inserts
//! produce bit-identical filters, which the storage layer relies on
//! when persisting BF-leaves.

#![warn(missing_docs)]

pub mod blocked;
pub mod counting;
pub mod deletable;
pub mod filter;
pub mod group;
pub mod hash;
pub mod math;
pub mod scalable;

pub use blocked::{BlockedBloomFilter, FilterLayout, BLOCK_BITS};
pub use counting::CountingBloomFilter;
pub use deletable::DeletableBloomFilter;
pub use filter::BloomFilter;
pub use group::BloomGroup;
pub use scalable::ScalableBloomFilter;
