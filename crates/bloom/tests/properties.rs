//! Property-based tests over the Bloom-filter substrate.

use bftree_bloom::{math, BloomFilter, BloomGroup, CountingBloomFilter, ScalableBloomFilter};
use proptest::prelude::*;

proptest! {
    /// The fundamental Bloom guarantee: zero false negatives, for any
    /// key set, geometry and seed.
    #[test]
    fn no_false_negatives(
        keys in proptest::collection::vec(any::<u64>(), 1..500),
        m_exp in 8u32..16,
        k in 1u32..8,
        seed in any::<u64>(),
    ) {
        let mut bf = BloomFilter::new(1u64 << m_exp, k, seed);
        for key in &keys {
            bf.insert(key);
        }
        for key in &keys {
            prop_assert!(bf.contains(key));
        }
    }

    /// Serialization is lossless for arbitrary filters.
    #[test]
    fn filter_roundtrip(
        keys in proptest::collection::vec(any::<u64>(), 0..200),
        m_exp in 6u32..14,
        k in 1u32..6,
        seed in any::<u64>(),
    ) {
        let mut bf = BloomFilter::new(1u64 << m_exp, k, seed);
        for key in &keys {
            bf.insert(key);
        }
        let back = BloomFilter::from_bytes(&bf.to_bytes()).expect("roundtrip");
        prop_assert_eq!(bf, back);
    }

    /// Union is an upper bound of both operands.
    #[test]
    fn union_superset(
        left in proptest::collection::vec(any::<u64>(), 0..200),
        right in proptest::collection::vec(any::<u64>(), 0..200),
        seed in any::<u64>(),
    ) {
        let mut a = BloomFilter::new(1 << 12, 3, seed);
        let mut b = BloomFilter::new(1 << 12, 3, seed);
        for key in &left { a.insert(key); }
        for key in &right { b.insert(key); }
        a.union_with(&b);
        for key in left.iter().chain(&right) {
            prop_assert!(a.contains(key));
        }
    }

    /// Equation 1 inverse identities hold across the whole useful range.
    #[test]
    fn eq1_inverses(n in 1u64..1_000_000, neg_log_p in 1u32..15) {
        let p = 10f64.powi(-(neg_log_p as i32));
        let m = math::bits_for(n, p);
        let n_back = math::capacity_for(m, p);
        // Ceil then floor: n_back >= n, within one key of exact.
        prop_assert!(n_back >= n);
        prop_assert!(n_back <= n + (n / 1000) + 2);
    }

    /// Equation 14 is monotone in the insert ratio and anchored at the
    /// initial fpp.
    #[test]
    fn eq14_monotone(neg_log_p in 1u32..10, r1 in 0.0f64..5.0, r2 in 0.0f64..5.0) {
        let p = 10f64.powi(-(neg_log_p as i32));
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let f_lo = math::fpp_after_inserts(p, lo);
        let f_hi = math::fpp_after_inserts(p, hi);
        prop_assert!(f_lo <= f_hi + 1e-15);
        prop_assert!(math::fpp_after_inserts(p, 0.0) >= p * 0.999);
        prop_assert!(f_hi < 1.0);
    }

    /// BloomGroup routing: every key is found in its home bucket via
    /// matching_buckets, regardless of distribution.
    #[test]
    fn group_finds_home_bucket(
        keys in proptest::collection::vec(any::<u64>(), 1..300),
        s in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut g = BloomGroup::new(1 << 16, s, 3, seed);
        for (i, key) in keys.iter().enumerate() {
            g.insert(i % s, key);
        }
        for (i, key) in keys.iter().enumerate() {
            let m = g.matching_buckets(key);
            prop_assert!(m.contains(&(i % s)));
        }
    }

    /// Counting filter: insert/remove round-trips leave other keys intact.
    #[test]
    fn counting_remove_is_safe(
        keys in proptest::collection::hash_set(any::<u64>(), 2..100),
        seed in any::<u64>(),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut cbf = CountingBloomFilter::with_capacity(keys.len() as u64, 1e-6, seed);
        for key in &keys {
            cbf.insert(key);
        }
        // Remove the first half.
        let half = keys.len() / 2;
        for key in &keys[..half] {
            cbf.remove(key);
        }
        // Second half must remain present (no false negatives).
        for key in &keys[half..] {
            prop_assert!(cbf.contains(key));
        }
    }

    /// Scalable filter never loses keys as it grows.
    #[test]
    fn scalable_no_false_negatives(
        n in 1u64..3_000,
        cap in 8u64..256,
        seed in any::<u64>(),
    ) {
        let mut sbf = ScalableBloomFilter::new(cap, 0.02, seed);
        for key in 0..n {
            sbf.insert(&key);
        }
        for key in 0..n {
            prop_assert!(sbf.contains(&key));
        }
    }
}

/// Deterministic check that the measured fpp tracks Equation 14 as keys
/// are inserted beyond capacity — the empirical backbone of Figure 14.
#[test]
fn fpp_degradation_tracks_eq14() {
    let p0 = 0.01;
    let n = 20_000u64;
    let m = math::bits_for(n, p0);
    let k = math::optimal_k(m, n);
    let mut bf = BloomFilter::new(m, k, 123);
    for key in 0..n {
        bf.insert(&key);
    }

    let measure = |bf: &BloomFilter| -> f64 {
        let trials = 200_000u64;
        let fp = (10_000_000..10_000_000 + trials)
            .filter(|key| bf.contains(key))
            .count();
        fp as f64 / trials as f64
    };

    let baseline = measure(&bf);
    assert!((baseline - p0).abs() < p0 * 0.5, "baseline {baseline}");

    // Insert 10% more keys; Eq. 14 predicts p0^(1/1.1).
    for key in n..(n + n / 10) {
        bf.insert(&key);
    }
    let degraded = measure(&bf);
    let predicted = math::fpp_after_inserts(p0, 0.10);
    assert!(
        degraded > baseline,
        "fpp should grow: {baseline} -> {degraded}"
    );
    assert!(
        (degraded - predicted).abs() < predicted,
        "measured {degraded}, Eq.14 predicts {predicted}"
    );
}
