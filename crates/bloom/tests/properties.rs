//! Property-based tests over the Bloom-filter substrate.
//!
//! Deterministic seeded random cases stand in for proptest (the build
//! is dependency-free); failures reproduce exactly from the seed.

use bftree_bloom::{math, BloomFilter, BloomGroup, CountingBloomFilter, ScalableBloomFilter};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

const CASES: u64 = 32;

fn keys(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<u64> {
    let n = rng.random_range(lo..hi);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// The fundamental Bloom guarantee: zero false negatives, for any
/// key set, geometry and seed.
#[test]
fn no_false_negatives() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB100 + case);
        let keys = keys(&mut rng, 1, 500);
        let m_exp = rng.random_range(8u32..16);
        let k = rng.random_range(1u32..8);
        let mut bf = BloomFilter::new(1u64 << m_exp, k, rng.next_u64());
        for key in &keys {
            bf.insert(key);
        }
        for key in &keys {
            assert!(bf.contains(key), "case {case}");
        }
    }
}

/// Serialization is lossless for arbitrary filters.
#[test]
fn filter_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB200 + case);
        let keys = keys(&mut rng, 1, 200);
        let m_exp = rng.random_range(6u32..14);
        let k = rng.random_range(1u32..6);
        let mut bf = BloomFilter::new(1u64 << m_exp, k, rng.next_u64());
        for key in &keys {
            bf.insert(key);
        }
        let back = BloomFilter::from_bytes(&bf.to_bytes()).expect("roundtrip");
        assert_eq!(bf, back, "case {case}");
    }
}

/// Union is an upper bound of both operands.
#[test]
fn union_superset() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB300 + case);
        let left = keys(&mut rng, 1, 200);
        let right = keys(&mut rng, 1, 200);
        let seed = rng.next_u64();
        let mut a = BloomFilter::new(1 << 12, 3, seed);
        let mut b = BloomFilter::new(1 << 12, 3, seed);
        for key in &left {
            a.insert(key);
        }
        for key in &right {
            b.insert(key);
        }
        a.union_with(&b);
        for key in left.iter().chain(&right) {
            assert!(a.contains(key), "case {case}");
        }
    }
}

/// Equation 1 inverse identities hold across the whole useful range.
#[test]
fn eq1_inverses() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB400 + case);
        let n = rng.random_range(1u64..1_000_000);
        let p = 10f64.powi(-(rng.random_range(1u32..15) as i32));
        let m = math::bits_for(n, p);
        let n_back = math::capacity_for(m, p);
        // Ceil then floor: n_back >= n, within one key of exact.
        assert!(n_back >= n, "case {case}");
        assert!(n_back <= n + (n / 1000) + 2, "case {case}");
    }
}

/// Equation 14 is monotone in the insert ratio and anchored at the
/// initial fpp.
#[test]
fn eq14_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB500 + case);
        let p = 10f64.powi(-(rng.random_range(1u32..10) as i32));
        let r1 = rng.random_range(0.0..5.0);
        let r2 = rng.random_range(0.0..5.0);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let f_lo = math::fpp_after_inserts(p, lo);
        let f_hi = math::fpp_after_inserts(p, hi);
        assert!(f_lo <= f_hi + 1e-15, "case {case}");
        assert!(math::fpp_after_inserts(p, 0.0) >= p * 0.999, "case {case}");
        assert!(f_hi < 1.0, "case {case}");
    }
}

/// BloomGroup routing: every key is found in its home bucket via
/// matching_buckets, regardless of distribution.
#[test]
fn group_finds_home_bucket() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB600 + case);
        let keys = keys(&mut rng, 1, 300);
        let s = rng.random_range(1usize..32);
        let mut g = BloomGroup::new(1 << 16, s, 3, rng.next_u64());
        for (i, key) in keys.iter().enumerate() {
            g.insert(i % s, key);
        }
        let mut m = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            m.clear();
            g.matching_buckets_into(key, &mut m);
            assert!(m.contains(&(i % s)), "case {case}");
        }
    }
}

/// Blocked layout: the measured false-positive rate of a seeded
/// blocked filter stays within the analytic bound of
/// [`math::blocked_fpp`] (and the bound itself stays a modest factor
/// above the standard-layout rate).
#[test]
fn blocked_fpp_measured_within_analytic_bound() {
    use bftree_bloom::{BlockedBloomFilter, BloomFilter};
    for (case, &(n, p)) in [(20_000u64, 1e-2), (50_000, 1e-3), (8_000, 5e-2)]
        .iter()
        .enumerate()
    {
        let seed = 0xB10C_0000 + case as u64;
        let mut blocked = BlockedBloomFilter::with_capacity(n, p, seed);
        let mut standard = BloomFilter::with_capacity(n, p, seed);
        for key in 0..n {
            blocked.insert(&key);
            standard.insert(&key);
        }
        let trials = 200_000u64;
        let measure = |f: &dyn Fn(&u64) -> bool| {
            (n..n + trials).filter(|k| f(k)).count() as f64 / trials as f64
        };
        let measured = measure(&|k| blocked.contains(k));
        let analytic =
            math::blocked_fpp(blocked.m_bits(), bftree_bloom::BLOCK_BITS, blocked.k(), n);
        // Within measurement noise of the analytic mixture...
        let sigma = (analytic * (1.0 - analytic) / trials as f64).sqrt();
        assert!(
            measured <= analytic + 4.0 * sigma + analytic * 0.25,
            "case {case}: measured {measured} vs analytic {analytic}"
        );
        // ...and the penalty over the standard layout is real but
        // bounded (the block mixture only adds a small constant factor
        // at these bits-per-key).
        let std_measured = measure(&|k| standard.contains(k));
        assert!(
            analytic < (std_measured.max(p) * 6.0).min(1.0),
            "case {case}: analytic {analytic} vs standard measured {std_measured}"
        );
    }
}

/// Counting filter: insert/remove round-trips leave other keys intact.
#[test]
fn counting_remove_is_safe() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB700 + case);
        let mut keys = keys(&mut rng, 2, 100);
        keys.sort_unstable();
        keys.dedup();
        let mut cbf = CountingBloomFilter::with_capacity(keys.len() as u64, 1e-6, rng.next_u64());
        for key in &keys {
            cbf.insert(key);
        }
        // Remove the first half.
        let half = keys.len() / 2;
        for key in &keys[..half] {
            cbf.remove(key);
        }
        // Second half must remain present (no false negatives).
        for key in &keys[half..] {
            assert!(cbf.contains(key), "case {case}");
        }
    }
}

/// Scalable filter never loses keys as it grows.
#[test]
fn scalable_no_false_negatives() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB800 + case);
        let n = rng.random_range(1u64..3_000);
        let cap = rng.random_range(8u64..256);
        let mut sbf = ScalableBloomFilter::new(cap, 0.02, rng.next_u64());
        for key in 0..n {
            sbf.insert(&key);
        }
        for key in 0..n {
            assert!(sbf.contains(&key), "case {case}");
        }
    }
}

/// Deterministic check that the measured fpp tracks Equation 14 as keys
/// are inserted beyond capacity — the empirical backbone of Figure 14.
#[test]
fn fpp_degradation_tracks_eq14() {
    let p0 = 0.01;
    let n = 20_000u64;
    let m = math::bits_for(n, p0);
    let k = math::optimal_k(m, n);
    let mut bf = BloomFilter::new(m, k, 123);
    for key in 0..n {
        bf.insert(&key);
    }

    let measure = |bf: &BloomFilter| -> f64 {
        let trials = 200_000u64;
        let fp = (10_000_000..10_000_000 + trials)
            .filter(|key| bf.contains(key))
            .count();
        fp as f64 / trials as f64
    };

    let baseline = measure(&bf);
    assert!((baseline - p0).abs() < p0 * 0.5, "baseline {baseline}");

    // Insert 10% more keys; Eq. 14 predicts p0^(1/1.1).
    for key in n..(n + n / 10) {
        bf.insert(&key);
    }
    let degraded = measure(&bf);
    let predicted = math::fpp_after_inserts(p0, 0.10);
    assert!(
        degraded > baseline,
        "fpp should grow: {baseline} -> {degraded}"
    );
    assert!(
        (degraded - predicted).abs() < predicted,
        "measured {degraded}, Eq.14 predicts {predicted}"
    );
}
