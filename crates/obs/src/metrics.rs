//! The metrics registry: one flat, pull-model collection point every
//! layer registers its counters into, rendered as Prometheus text
//! exposition or a JSON snapshot.
//!
//! Layers implement [`MetricSource`] (`IoContext`, `BufferManager`,
//! `Wal`, `DurableIndex`, `FileStore`, `RecoveryReport`) and a binary
//! calls [`MetricsRegistry::collect_from`] on each, then
//! [`MetricsRegistry::render_prometheus`] / [`MetricsRegistry::to_json`].
//! Live [`Counter`]s and [`Gauge`]s are provided for code that wants
//! its own instruments rather than snapshotting existing state.

use std::sync::atomic::{AtomicU64, Ordering};

/// What a metric's value means over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing (Prometheus `counter`).
    Counter,
    /// Point-in-time level (Prometheus `gauge`).
    Gauge,
}

impl MetricKind {
    fn prom(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One registered sample.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric family name (`bftree_io_random_reads_total`, …).
    pub name: String,
    /// Label pairs, rendered in insertion order.
    pub labels: Vec<(String, String)>,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Sample value.
    pub value: f64,
    /// One-line help text (first registration of a family wins).
    pub help: &'static str,
}

/// A flat registry of samples; see the module docs for the flow.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

/// Anything that can dump its counters into a [`MetricsRegistry`].
pub trait MetricSource {
    /// Append this source's current samples to `reg`.
    fn collect(&self, reg: &mut MetricsRegistry);
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, labels, MetricKind::Counter, value as f64);
    }

    /// Register a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, labels, MetricKind::Gauge, value);
    }

    fn push(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        value: f64,
    ) {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
            value,
            help,
        });
    }

    /// Pull `source`'s samples into the registry.
    pub fn collect_from(&mut self, source: &dyn MetricSource) {
        source.collect(self);
    }

    /// Every registered sample, in registration order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Look up the first sample whose name and labels match (tests and
    /// report code).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| {
                m.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
            })
            .map(|m| m.value)
    }

    /// Render the registry in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` once per family (first registration wins),
    /// then one sample line per metric.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen.contains(&m.name.as_str()) {
                seen.push(&m.name);
                if !m.help.is_empty() {
                    writeln!(out, "# HELP {} {}", m.name, m.help).expect("write to String");
                }
                writeln!(out, "# TYPE {} {}", m.name, m.kind.prom()).expect("write to String");
                for s in self.metrics.iter().filter(|s| s.name == m.name) {
                    out.push_str(&s.name);
                    if !s.labels.is_empty() {
                        out.push('{');
                        for (i, (k, v)) in s.labels.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            write!(out, "{k}=\"{}\"", escape_label(v)).expect("write to String");
                        }
                        out.push('}');
                    }
                    writeln!(out, " {}", fmt_value(s.value)).expect("write to String");
                }
            }
        }
        out
    }

    /// Render the registry as a JSON snapshot:
    /// `{"metrics":[{"name":…,"kind":…,"labels":{…},"value":…},…]}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{{",
                escape_json(&m.name),
                m.kind.prom()
            )
            .expect("write to String");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v))
                    .expect("write to String");
            }
            write!(out, "}},\"value\":{}}}", fmt_value(m.value)).expect("write to String");
        }
        out.push_str("]}\n");
        out
    }
}

/// Integers render without a fractional part; everything else as a
/// plain decimal (both Prometheus- and JSON-legal).
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A live monotonic counter (relaxed atomics; share via `Arc` or a
/// `static`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A live gauge holding an `f64` level (stored as bits in a relaxed
/// atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge at 0.0.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Set the level.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_groups_families() {
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "bftree_io_reads_total",
            "Device page reads",
            &[("device", "index")],
            10,
        );
        reg.counter(
            "bftree_io_reads_total",
            "Device page reads",
            &[("device", "data")],
            32,
        );
        reg.gauge("bftree_buffer_bytes", "Resident bytes", &[], 4096.5);
        let text = reg.render_prometheus();
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE bftree_io_reads_total"))
            .count();
        assert_eq!(type_lines, 1, "one TYPE line per family:\n{text}");
        assert!(text.contains("bftree_io_reads_total{device=\"index\"} 10"));
        assert!(text.contains("bftree_io_reads_total{device=\"data\"} 32"));
        assert!(text.contains("bftree_buffer_bytes 4096.5"));
        assert!(text.contains("# HELP bftree_io_reads_total Device page reads"));
        assert!(text.contains("# TYPE bftree_buffer_bytes gauge"));
    }

    #[test]
    fn json_snapshot_is_complete() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a_total", "", &[("k", "v")], 7);
        reg.gauge("b", "", &[], 1.25);
        let json = reg.to_json();
        assert!(json.contains(
            "\"name\":\"a_total\",\"kind\":\"counter\",\"labels\":{\"k\":\"v\"},\"value\":7"
        ));
        assert!(json.contains("\"name\":\"b\",\"kind\":\"gauge\",\"labels\":{},\"value\":1.25"));
    }

    #[test]
    fn value_lookup_matches_labels() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x_total", "", &[("d", "a")], 1);
        reg.counter("x_total", "", &[("d", "b")], 2);
        assert_eq!(reg.value("x_total", &[("d", "b")]), Some(2.0));
        assert_eq!(reg.value("x_total", &[("d", "c")]), None);
        assert_eq!(reg.value("missing", &[]), None);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.counter("m_total", "", &[("path", "a\"b\\c")], 1);
        let text = reg.render_prometheus();
        assert!(text.contains("path=\"a\\\"b\\\\c\""));
        let json = reg.to_json();
        assert!(json.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn live_counter_and_gauge() {
        let c = Counter::new();
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn source_collection() {
        struct Fake;
        impl MetricSource for Fake {
            fn collect(&self, reg: &mut MetricsRegistry) {
                reg.counter("fake_total", "A fake", &[], 3);
            }
        }
        let mut reg = MetricsRegistry::new();
        reg.collect_from(&Fake);
        assert_eq!(reg.value("fake_total", &[]), Some(3.0));
    }
}
