//! Per-query attribution: what one probe/scan actually cost, next to
//! what the analytical model said it would cost.
//!
//! A [`QueryTrace`] brackets one operation on the calling thread and
//! yields a [`QueryReport`] of the pages read, cache hits, filter
//! probes, and fsyncs attributed to it (from the thread-local
//! [`crate::OpCounters`] — recording must be armed via
//! [`crate::set_recording`]) plus the model's predicted I/O, giving a
//! per-query regret stream: `measured − predicted` device reads.

use crate::clock::{self, WallTimer};
use crate::span::{thread_op_counters, OpCounters};

/// An open per-query attribution window on the calling thread.
#[must_use = "finish() produces the report"]
#[derive(Debug)]
pub struct QueryTrace {
    predicted_reads: f64,
    start_counters: OpCounters,
    start_sim_ns: u64,
    timer: WallTimer,
}

impl QueryTrace {
    /// Start attributing the calling thread's I/O to one query.
    /// `predicted_reads` is the model's expected device I/O for it
    /// (e.g. `BfTreeModel::probe_cost` components).
    pub fn begin(predicted_reads: f64) -> Self {
        Self {
            predicted_reads,
            start_counters: thread_op_counters(),
            start_sim_ns: clock::thread_sim_ns(),
            timer: WallTimer::start(),
        }
    }

    /// Close the window and report what the query cost.
    pub fn finish(self) -> QueryReport {
        let counters = thread_op_counters().since(&self.start_counters);
        QueryReport {
            predicted_reads: self.predicted_reads,
            counters,
            sim_ns: clock::thread_sim_ns() - self.start_sim_ns,
            wall_ns: self.timer.elapsed_ns(),
        }
    }
}

/// What one query cost, measured next to the model's prediction.
#[derive(Debug, Clone, Copy)]
pub struct QueryReport {
    /// The model's predicted device reads for this query.
    pub predicted_reads: f64,
    /// Measured attribution (device reads, cache hits, fsyncs, filter
    /// probes).
    pub counters: OpCounters,
    /// Simulated nanoseconds charged by the query.
    pub sim_ns: u64,
    /// Host wall nanoseconds spent in the query.
    pub wall_ns: u64,
}

impl QueryReport {
    /// Signed prediction error in device reads:
    /// `measured − predicted`. Positive = the model was optimistic.
    pub fn regret(&self) -> f64 {
        self.counters.device_reads as f64 - self.predicted_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs")]
    #[test]
    fn query_trace_attributes_thread_local_work() {
        let _gate = crate::recording_test_gate();
        crate::set_recording(true);
        let t = QueryTrace::begin(2.0);
        crate::note_device_reads(3);
        crate::note_cache_hits(1);
        crate::note_filter_probes(5);
        crate::clock::add_thread_sim_ns(70);
        let r = t.finish();
        crate::set_recording(false);
        assert_eq!(r.counters.device_reads, 3);
        assert_eq!(r.counters.cache_hits, 1);
        assert_eq!(r.counters.filter_probes, 5);
        assert!(r.sim_ns >= 70);
        assert_eq!(r.regret(), 1.0);
    }

    #[test]
    fn disarmed_trace_reports_zero_counters() {
        let _gate = crate::recording_test_gate();
        crate::set_recording(false);
        let t = QueryTrace::begin(1.5);
        crate::note_device_reads(3);
        let r = t.finish();
        assert_eq!(r.counters, OpCounters::default());
        assert_eq!(r.regret(), -1.5);
    }
}
