//! Chrome `trace_event` serialization: a drained span list becomes a
//! JSON file that opens directly in `chrome://tracing` or Perfetto.
//!
//! Events are emitted by a depth-first walk of the reconstructed span
//! tree (per thread, children sorted by start time), so `B`/`E` pairs
//! are structurally balanced and correctly nested even when adjacent
//! timestamps tie — sorting raw events by timestamp cannot guarantee
//! that.

use crate::span::CompletedSpan;

/// Serialize completed spans as Chrome `trace_event` JSON.
///
/// Duration spans become `B`/`E` pairs; the `E` event carries the
/// span's attribution (`sim_ns`, `device_reads`, `cache_hits`,
/// `fsyncs`, `filter_probes`, `detail`) as `args`. Timestamps are
/// microseconds from the process epoch; `tid` is the recording
/// thread.
pub fn chrome_trace_json(spans: &[CompletedSpan]) -> String {
    // Index children under their parent, roots under none.
    let mut roots: Vec<usize> = Vec::new();
    let mut children: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) => children.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    let by_start = |&a: &usize, &b: &usize| {
        let (sa, sb) = (&spans[a], &spans[b]);
        (sa.thread, sa.start_wall_ns, sa.id).cmp(&(sb.thread, sb.start_wall_ns, sb.id))
    };
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(|&a, &b| {
            (spans[a].start_wall_ns, spans[a].id).cmp(&(spans[b].start_wall_ns, spans[b].id))
        });
    }

    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    // Iterative DFS: (index, entering?) — emit B on the way down, E on
    // the way back up.
    let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&i| (i, true)).collect();
    while let Some((i, entering)) = stack.pop() {
        let s = &spans[i];
        if !first {
            out.push(',');
        }
        first = false;
        if entering {
            push_event(&mut out, s, 'B');
            stack.push((i, false));
            if let Some(kids) = children.get(&s.id) {
                for &k in kids.iter().rev() {
                    stack.push((k, true));
                }
            }
        } else {
            push_event(&mut out, s, 'E');
        }
    }
    out.push_str("]}\n");
    out
}

fn push_event(out: &mut String, s: &CompletedSpan, ph: char) {
    use std::fmt::Write;
    let ts = if ph == 'B' {
        s.start_wall_ns
    } else {
        s.end_wall_ns
    };
    write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"bftree\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
        s.kind.name(),
        ph,
        ts as f64 / 1e3,
        s.thread
    )
    .expect("write to String");
    if ph == 'E' {
        write!(
            out,
            ",\"args\":{{\"sim_ns\":{},\"device_reads\":{},\"cache_hits\":{},\"fsyncs\":{},\"filter_probes\":{},\"detail\":{}}}",
            s.sim_ns,
            s.counters.device_reads,
            s.counters.cache_hits,
            s.counters.fsyncs,
            s.counters.filter_probes,
            s.detail
        )
        .expect("write to String");
    }
    out.push('}');
}

/// Structural sanity check on an emitted trace: every `B` has a
/// matching `E` on the same thread, never closing below depth 0.
/// Returns the total number of `B`/`E` pairs, or an error naming the
/// first imbalance. (This is a purpose-built checker for the exact
/// shape [`chrome_trace_json`] emits, not a general JSON parser.)
pub fn check_balanced(trace: &str) -> Result<u64, String> {
    let mut depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut pairs = 0u64;
    for (i, ev) in trace.split("{\"name\":").skip(1).enumerate() {
        let ph = ev
            .split("\"ph\":\"")
            .nth(1)
            .and_then(|r| r.chars().next())
            .ok_or_else(|| format!("event {i}: no ph field"))?;
        let tid: u64 = ev
            .split("\"tid\":")
            .nth(1)
            .and_then(|r| {
                r.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|d| d.parse().ok())
            })
            .ok_or_else(|| format!("event {i}: no tid field"))?;
        let d = depth.entry(tid).or_insert(0);
        match ph {
            'B' => *d += 1,
            'E' => {
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: E without B on tid {tid}"));
                }
                pairs += 1;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("tid {tid}: {d} unclosed span(s)"));
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpCounters, SpanKind};

    fn span(
        id: u64,
        parent: Option<u64>,
        kind: SpanKind,
        thread: u64,
        start: u64,
        end: u64,
        reads: u64,
    ) -> CompletedSpan {
        CompletedSpan {
            id,
            parent,
            kind,
            thread,
            start_wall_ns: start,
            end_wall_ns: end,
            sim_ns: end - start,
            counters: OpCounters {
                device_reads: reads,
                ..OpCounters::default()
            },
            detail: 0,
        }
    }

    #[test]
    fn nested_spans_serialize_balanced_and_ordered() {
        let spans = vec![
            span(1, None, SpanKind::BatchProbe, 1, 0, 1000, 5),
            span(2, Some(1), SpanKind::Probe, 1, 100, 400, 2),
            span(3, Some(1), SpanKind::Probe, 1, 400, 900, 3),
            span(4, None, SpanKind::Fsync, 2, 50, 60, 0),
        ];
        let json = chrome_trace_json(&spans);
        assert_eq!(check_balanced(&json).expect("balanced"), 4);
        // The child's B comes after the parent's B and before the
        // parent's E (DFS order).
        let b_outer = json.find("\"ph\":\"B\",\"ts\":0.000").unwrap();
        let b_inner = json.find("\"ph\":\"B\",\"ts\":0.100").unwrap();
        let e_outer = json.find("\"ph\":\"E\",\"ts\":1.000").unwrap();
        assert!(b_outer < b_inner && b_inner < e_outer);
        assert!(json.contains("\"name\":\"fsync\""));
        assert!(json.contains("\"device_reads\":5"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn equal_timestamps_still_nest_correctly() {
        // A zero-duration child starting exactly at its parent's start:
        // timestamp sorting would be ambiguous, the tree walk is not.
        let spans = vec![
            span(1, None, SpanKind::Probe, 1, 500, 500, 0),
            span(2, Some(1), SpanKind::Fsync, 1, 500, 500, 0),
        ];
        let json = chrome_trace_json(&spans);
        assert_eq!(check_balanced(&json).expect("balanced"), 2);
        let order: Vec<&str> = json
            .match_indices("\"ph\":\"")
            .map(|(i, _)| &json[i + 6..i + 7])
            .collect();
        assert_eq!(order, ["B", "B", "E", "E"], "parent brackets child");
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[]);
        assert_eq!(check_balanced(&json).expect("balanced"), 0);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn imbalance_is_reported() {
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"E\",\"ts\":1,\"tid\":3}]}";
        assert!(check_balanced(bad).is_err());
    }
}
