//! The log₂-bucketed latency histogram, promoted out of the bench
//! crate so access methods, the metrics registry, and the harness all
//! share one implementation.

/// A log₂-bucketed latency histogram over simulated nanoseconds.
///
/// Bucket `i` holds operations with `ns` of bit length `i` (i.e.
/// `2^(i-1) ≤ ns < 2^i`; zero-cost ops land in bucket 0), so quantile
/// queries resolve to within a factor of two — plenty to tell a
/// cache-hit probe from a one-I/O probe from a false-read probe.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }

    /// Record one operation's simulated latency.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()) as usize;
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one (per-thread → run merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded operations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound of the bucket holding quantile `q` ∈ [0, 1] —
    /// within 2× of the true quantile.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_ns
    }

    /// Occupancy of bucket `i` (operations with `ns` of bit length
    /// `i`). Exposed so tests can pin the boundary rule.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator (splitmix64) so the battery is
    /// seeded without pulling in a rand crate.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        let mut h = LatencyHistogram::new();
        // Exact boundary battery: 0 → bucket 0; 2^(i-1) and 2^i - 1
        // both land in bucket i.
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        for i in 1..=10usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            let mut g = LatencyHistogram::new();
            g.record(lo);
            g.record(hi);
            assert_eq!(g.bucket(i), 2, "2^{} and 2^{}-1 share bucket {i}", i - 1, i);
        }
        // The top bucket absorbs everything of bit length ≥ 63.
        let mut top = LatencyHistogram::new();
        top.record(1u64 << 63);
        top.record(1u64 << 62);
        assert_eq!(top.bucket(63), 2);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut seed = 0xDEADBEEFu64;
        let feed = |h: &mut LatencyHistogram, n: usize, s: &mut u64| {
            for _ in 0..n {
                h.record(splitmix64(s) >> 40);
            }
        };
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        feed(&mut a, 500, &mut seed);
        feed(&mut b, 300, &mut seed);
        feed(&mut c, 700, &mut seed);

        // merge(a, b) == merge(b, a)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.mean_ns(), ba.mean_ns());
        assert_eq!(ab.max_ns(), ba.max_ns());
        for i in 0..64 {
            assert_eq!(ab.bucket(i), ba.bucket(i), "bucket {i}");
        }

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ab.clone();
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.mean_ns(), right.mean_ns());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(left.quantile_ns(q), right.quantile_ns(q));
        }
        for i in 0..64 {
            assert_eq!(left.bucket(i), right.bucket(i), "bucket {i}");
        }
    }

    #[test]
    fn quantiles_bracket_true_values_for_known_distributions() {
        // Uniform over [1, 65536]: the reported quantile bucket bound
        // must bracket the true quantile within the 2× contract.
        let mut seed = 42u64;
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = (splitmix64(&mut seed) % 65_536) + 1;
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1];
            let est = h.quantile_ns(q);
            assert!(
                est >= truth && est < truth.max(1) * 2,
                "q={q}: estimate {est} must be in [true, 2·true) around {truth}"
            );
        }
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= h.max_ns() && p100 <= 2 * h.max_ns());

        // A bimodal (cache-hit vs device-read) distribution: p50 sits
        // in the low mode, p99 in the high mode.
        let mut bi = LatencyHistogram::new();
        for _ in 0..95 {
            bi.record(100); // "cache hit"
        }
        for _ in 0..5 {
            bi.record(100_000); // "device read"
        }
        assert!((64..=256).contains(&bi.quantile_ns(0.5)));
        assert!(bi.quantile_ns(0.99) >= 65_536);
    }

    #[test]
    fn empty_and_degenerate_histograms() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0);
        let mut z = LatencyHistogram::new();
        z.record(0);
        assert_eq!(z.quantile_ns(1.0), 0, "all-zero load stays in bucket 0");
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 10_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_ns(), 10_000);
        let p50 = h.quantile_ns(0.5);
        assert!((64..=256).contains(&p50), "p50 bucket holds 100ns: {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 8_192, "p99 reaches the outlier bucket: {p99}");
        assert!((h.mean_ns() - 1_090.0).abs() < 1.0);
    }

    #[test]
    fn merge_equals_single_feed() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1_000u64 {
            if i % 2 == 0 {
                a.record(i * 7)
            } else {
                b.record(i * 7)
            }
            all.record(i * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean_ns(), all.mean_ns());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile_ns(q), all.quantile_ns(q));
        }
    }
}
