//! # Observability core for the BF-Tree reproduction
//!
//! Zero-dependency, lock-free telemetry threaded through every layer
//! of the workspace:
//!
//! * [`clock`] — the shared time vocabulary: the per-thread simulated
//!   clock every `IoStats` charge advances ([`thread_sim_ns`]), a
//!   process-epoch wall clock for trace timestamps, and the
//!   [`WallTimer`] stopwatch benches and recovery use.
//! * [`mod@span`] — RAII [`Span`] guards over a per-thread ring-buffer
//!   `EventRecorder`: probe / batch-probe / range-page-pull /
//!   memtable-flush / wal-append / fsync / eviction / recovery-replay,
//!   with parent links, sim-ns and wall-ns, and per-span I/O
//!   attribution. Compiled out without the `obs` feature; when
//!   compiled in but disarmed (the default) every hook costs one
//!   relaxed atomic load — and recording never touches `IoStats`, so
//!   I/O counts are bit-identical on or off.
//! * [`trace`] — serialize drained spans to Chrome `trace_event` JSON
//!   ([`chrome_trace_json`]); the file opens in `chrome://tracing` or
//!   Perfetto.
//! * [`metrics`] — the pull-model [`MetricsRegistry`]: layers
//!   implement [`MetricSource`], binaries render
//!   [`MetricsRegistry::render_prometheus`] text or a JSON snapshot
//!   (`--metrics-out=<path>` on every experiment binary).
//! * [`histogram`] — the log₂ [`LatencyHistogram`] (promoted from the
//!   bench crate): mergeable, p50/p95/p99/max.
//! * [`query`] — [`QueryTrace`]: per-query attribution of device
//!   reads, cache hits, filter probes, and fsyncs, recorded next to
//!   the analytical model's prediction as a regret stream.

#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod metrics;
pub mod query;
pub mod span;
pub mod trace;

pub use clock::{add_thread_sim_ns, ns_to_ms, ns_to_secs, ns_to_us, thread_sim_ns, WallTimer};
pub use histogram::LatencyHistogram;
pub use metrics::{Counter, Gauge, Metric, MetricKind, MetricSource, MetricsRegistry};
pub use query::{QueryReport, QueryTrace};
pub use span::{
    drain_spans, event, flush_thread, is_recording, note_cache_hits, note_device_reads,
    note_filter_probes, note_fsync, root_device_reads, set_recording, span, thread_op_counters,
    CompletedSpan, OpCounters, Span, SpanKind,
};
pub use trace::{check_balanced, chrome_trace_json};

/// Tests that toggle the process-wide recording flag serialize on this
/// gate (the flag and sink are shared across the whole test binary).
#[cfg(test)]
pub(crate) fn recording_test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}
