//! The one clock vocabulary every crate shares.
//!
//! Two time axes run through the stack:
//!
//! * **Simulated nanoseconds** — the deterministic device clock
//!   `IoStats` charges. The per-thread accumulator lives *here*
//!   ([`thread_sim_ns`]/[`add_thread_sim_ns`]) and `bftree-storage`
//!   re-exports the reader, so storage accounting and span recording
//!   agree by construction.
//! * **Wall nanoseconds** — host time, measured from one process-wide
//!   epoch ([`wall_now_ns`]) so timestamps from different threads are
//!   directly comparable (Chrome traces need a shared origin), or as
//!   a plain stopwatch ([`WallTimer`]).

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

thread_local! {
    /// Simulated nanoseconds charged by this thread, across all
    /// devices, since thread start. Monotone; callers take deltas.
    static SIM_NS: Cell<u64> = const { Cell::new(0) };
}

/// Simulated nanoseconds charged *by the calling thread* across every
/// device since the thread started. Monotone — take a delta around an
/// operation to get that operation's simulated latency:
///
/// ```
/// use bftree_obs::{add_thread_sim_ns, thread_sim_ns};
///
/// let before = thread_sim_ns();
/// add_thread_sim_ns(125); // what IoStats does on every charge
/// assert_eq!(thread_sim_ns() - before, 125);
/// ```
pub fn thread_sim_ns() -> u64 {
    SIM_NS.with(|c| c.get())
}

/// Advance the calling thread's simulated clock by `ns`. Called by
/// every `IoStats::record_*` charge; nothing else should need it.
#[inline]
pub fn add_thread_sim_ns(ns: u64) {
    SIM_NS.with(|c| c.set(c.get() + ns));
}

/// The process-wide wall epoch: initialized on first use, shared by
/// every thread.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Wall nanoseconds since the process-wide epoch. All threads share
/// the origin, so values are comparable across threads (this is what
/// trace timestamps are built from).
pub fn wall_now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// A wall-clock stopwatch — the one way the workspace measures host
/// time (benches, recovery replay, file-store syscalls).
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Start the stopwatch.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Wall nanoseconds elapsed since [`WallTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Wall seconds elapsed since [`WallTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Nanoseconds as microseconds.
pub fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Nanoseconds as milliseconds.
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Nanoseconds as seconds.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_thread_local_and_monotone() {
        let t0 = thread_sim_ns();
        add_thread_sim_ns(100);
        assert_eq!(thread_sim_ns() - t0, 100);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mine = thread_sim_ns();
                add_thread_sim_ns(40);
                assert_eq!(thread_sim_ns() - mine, 40);
            });
        });
        assert_eq!(thread_sim_ns() - t0, 100, "other threads don't move it");
    }

    #[test]
    fn wall_clock_advances_from_a_shared_epoch() {
        let a = wall_now_ns();
        let b = wall_now_ns();
        assert!(b >= a);
        let t = WallTimer::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(t.elapsed_ns() > 0);
        assert!(t.elapsed_secs() >= 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_us(1_500), 1.5);
        assert_eq!(ns_to_ms(2_000_000), 2.0);
        assert_eq!(ns_to_secs(3_000_000_000), 3.0);
    }
}
