//! Span recording: RAII guards, per-thread ring-buffer recorders, and
//! the per-thread operation counters spans and [`crate::QueryTrace`]s
//! attribute I/O with.
//!
//! ## Cost contract
//!
//! * Compiled out (`--no-default-features`): every entry point here is
//!   an empty inline function — the hot paths carry zero code.
//! * Compiled in, recording off (the default): every entry point is
//!   one relaxed atomic load and a branch.
//! * Recording on: spans touch only thread-local state; completed
//!   spans land in a per-thread ring that flushes to one global sink
//!   when full and at thread exit. Recording never writes to
//!   `IoStats`, so I/O counts are bit-identical with recording on or
//!   off (pinned by `tests/observability.rs`).

use std::sync::atomic::{AtomicBool, Ordering};

/// The span taxonomy — every phase a request can spend time in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One point probe (single key, any access method).
    Probe,
    /// One batched probe call serving many keys.
    BatchProbe,
    /// One data-page pull of a range cursor / range scan.
    RangePagePull,
    /// A memtable flush into the inner index (durable write path).
    MemtableFlush,
    /// One WAL record append (sync included when the mode forces it).
    WalAppend,
    /// One durability barrier reaching a device.
    Fsync,
    /// Buffer-pool evictions (instantaneous event; `detail` = count).
    Eviction,
    /// WAL replay during crash recovery.
    RecoveryReplay,
    /// One retry wait after a transient device fault (`detail` =
    /// attempt number).
    FaultRetry,
    /// A page entered quarantine after a permanent verification
    /// failure (instantaneous event; `detail` = page id).
    Quarantine,
    /// One repair pass rewriting quarantined pages (`detail` = pages
    /// repaired).
    Repair,
    /// One scrubber sweep verifying live page checksums (`detail` =
    /// pages scanned).
    Scrub,
    /// One wire-protocol request handled by a server worker
    /// (`detail` = opcode).
    Rpc,
    /// One fan-out of a batched operation across shards (`detail` =
    /// shards involved).
    Scatter,
    /// One order-preserving merge of per-shard results (`detail` =
    /// results merged).
    Gather,
}

impl SpanKind {
    /// Stable display name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Probe => "probe",
            SpanKind::BatchProbe => "batch-probe",
            SpanKind::RangePagePull => "range-page-pull",
            SpanKind::MemtableFlush => "memtable-flush",
            SpanKind::WalAppend => "wal-append",
            SpanKind::Fsync => "fsync",
            SpanKind::Eviction => "eviction",
            SpanKind::RecoveryReplay => "recovery-replay",
            SpanKind::FaultRetry => "fault-retry",
            SpanKind::Quarantine => "quarantine",
            SpanKind::Repair => "repair",
            SpanKind::Scrub => "scrub",
            SpanKind::Rpc => "rpc",
            SpanKind::Scatter => "scatter",
            SpanKind::Gather => "gather",
        }
    }
}

/// Per-thread operation counters, attributable to a span or a
/// [`crate::QueryTrace`] by taking deltas. Only bumped while recording
/// is on; never fed back into `IoStats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounters {
    /// Page reads that reached a device (random + sequential).
    pub device_reads: u64,
    /// Reads absorbed by a buffer pool.
    pub cache_hits: u64,
    /// Durability barriers issued.
    pub fsyncs: u64,
    /// Bloom-filter membership probes.
    pub filter_probes: u64,
}

impl OpCounters {
    /// Counter-wise difference `self - earlier`.
    pub fn since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            device_reads: self.device_reads - earlier.device_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            fsyncs: self.fsyncs - earlier.fsyncs,
            filter_probes: self.filter_probes - earlier.filter_probes,
        }
    }
}

/// One finished span, as drained from the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedSpan {
    /// Process-unique span id (allocation order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Which phase of the taxonomy this span is.
    pub kind: SpanKind,
    /// Recording thread (process-unique, assigned on first span).
    pub thread: u64,
    /// Wall nanoseconds at entry, from the shared process epoch.
    pub start_wall_ns: u64,
    /// Wall nanoseconds at exit.
    pub end_wall_ns: u64,
    /// Simulated nanoseconds charged while the span was open
    /// (children included).
    pub sim_ns: u64,
    /// Operation counters accumulated while open (children included).
    pub counters: OpCounters,
    /// Kind-specific payload (batch size, pages pulled, eviction
    /// count, records replayed, …); 0 when unused.
    pub detail: u64,
}

impl CompletedSpan {
    /// Wall duration of the span.
    pub fn wall_ns(&self) -> u64 {
        self.end_wall_ns - self.start_wall_ns
    }
}

/// Sum the device reads of **root** spans (spans with no parent).
/// Every nested read is included in its root exactly once, so this is
/// the number the run's `IoSnapshot` must reconcile with.
pub fn root_device_reads(spans: &[CompletedSpan]) -> u64 {
    spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.counters.device_reads)
        .sum()
}

/// The runtime gate. Off by default: existing benches and tests run
/// with recording compiled in but disarmed, paying one relaxed load
/// per hook.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Turn span/counter recording on or off (process-wide).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether recording is currently armed.
#[inline]
pub fn is_recording() -> bool {
    cfg!(feature = "obs") && RECORDING.load(Ordering::Relaxed)
}

#[cfg(feature = "obs")]
mod armed {
    use super::{CompletedSpan, OpCounters, SpanKind, RECORDING};
    use crate::clock;
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Completed spans a thread buffers before flushing to the sink.
    const RING: usize = 256;

    static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
    static SINK: Mutex<Vec<CompletedSpan>> = Mutex::new(Vec::new());

    /// The per-thread ring-buffer recorder: open-span stack for parent
    /// links plus a bounded buffer of completed spans. Flushes to the
    /// global sink when the ring fills and when the thread exits.
    pub(super) struct EventRecorder {
        thread: u64,
        stack: Vec<u64>,
        ring: Vec<CompletedSpan>,
    }

    impl EventRecorder {
        fn new() -> Self {
            Self {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                stack: Vec::new(),
                ring: Vec::with_capacity(RING),
            }
        }

        fn flush(&mut self) {
            if !self.ring.is_empty() {
                SINK.lock().expect("span sink").append(&mut self.ring);
            }
        }

        fn push_completed(&mut self, span: CompletedSpan) {
            self.ring.push(span);
            if self.ring.len() >= RING {
                self.flush();
            }
        }
    }

    impl Drop for EventRecorder {
        fn drop(&mut self) {
            self.flush();
        }
    }

    thread_local! {
        static RECORDER: RefCell<EventRecorder> = RefCell::new(EventRecorder::new());
        static COUNTERS: Cell<OpCounters> = const { Cell::new(OpCounters {
            device_reads: 0,
            cache_hits: 0,
            fsyncs: 0,
            filter_probes: 0,
        }) };
    }

    #[inline]
    pub(super) fn counters() -> OpCounters {
        COUNTERS.with(|c| c.get())
    }

    #[inline]
    pub(super) fn bump(f: impl FnOnce(&mut OpCounters)) {
        if RECORDING.load(Ordering::Relaxed) {
            COUNTERS.with(|c| {
                let mut v = c.get();
                f(&mut v);
                c.set(v);
            });
        }
    }

    pub(super) fn enter(kind: SpanKind) -> Option<super::Frame> {
        if !RECORDING.load(Ordering::Relaxed) {
            return None;
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            let parent = r.stack.last().copied();
            r.stack.push(id);
            parent
        });
        Some(super::Frame {
            id,
            parent,
            kind,
            start_wall_ns: clock::wall_now_ns(),
            start_sim_ns: clock::thread_sim_ns(),
            start_counters: counters(),
            detail: 0,
        })
    }

    pub(super) fn exit(frame: super::Frame) {
        let end_wall_ns = clock::wall_now_ns();
        let sim_ns = clock::thread_sim_ns() - frame.start_sim_ns;
        let delta = counters().since(&frame.start_counters);
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            debug_assert_eq!(r.stack.last(), Some(&frame.id), "span guards drop LIFO");
            r.stack.pop();
            let thread = r.thread;
            r.push_completed(CompletedSpan {
                id: frame.id,
                parent: frame.parent,
                kind: frame.kind,
                thread,
                start_wall_ns: frame.start_wall_ns,
                end_wall_ns,
                sim_ns,
                counters: delta,
                detail: frame.detail,
            });
        });
    }

    pub(super) fn flush_thread() {
        RECORDER.with(|r| r.borrow_mut().flush());
    }

    pub(super) fn drain() -> Vec<CompletedSpan> {
        flush_thread();
        std::mem::take(&mut *SINK.lock().expect("span sink"))
    }
}

/// The internal open-span state carried by a [`Span`] guard.
#[cfg(feature = "obs")]
#[derive(Debug)]
#[doc(hidden)]
pub struct Frame {
    id: u64,
    parent: Option<u64>,
    kind: SpanKind,
    start_wall_ns: u64,
    start_sim_ns: u64,
    start_counters: OpCounters,
    detail: u64,
}

/// An RAII span guard: open at [`span`], completed (and recorded) on
/// drop. Inert — a single branch — when recording is off or compiled
/// out.
#[must_use = "a span measures the scope it lives in"]
#[derive(Debug)]
pub struct Span {
    #[cfg(feature = "obs")]
    frame: Option<Frame>,
}

/// Open a span of `kind` on the calling thread. Costs one relaxed
/// atomic load when recording is off.
#[inline]
pub fn span(kind: SpanKind) -> Span {
    #[cfg(feature = "obs")]
    {
        Span {
            frame: armed::enter(kind),
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = kind;
        Span {}
    }
}

impl Span {
    /// Attach a kind-specific payload (batch size, pages pulled, …)
    /// to the span; recorded on drop.
    #[inline]
    pub fn set_detail(&mut self, detail: u64) {
        #[cfg(feature = "obs")]
        if let Some(f) = self.frame.as_mut() {
            f.detail = detail;
        }
        #[cfg(not(feature = "obs"))]
        let _ = detail;
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "obs")]
        if let Some(frame) = self.frame.take() {
            armed::exit(frame);
        }
    }
}

/// Record an instantaneous event of `kind` (zero-duration span) with a
/// `detail` payload — evictions use this.
#[inline]
pub fn event(kind: SpanKind, detail: u64) {
    let mut s = span(kind);
    s.set_detail(detail);
}

/// Note `n` device page reads on the calling thread.
#[inline]
pub fn note_device_reads(n: u64) {
    #[cfg(feature = "obs")]
    armed::bump(|c| c.device_reads += n);
    #[cfg(not(feature = "obs"))]
    let _ = n;
}

/// Note `n` buffer-pool hits on the calling thread.
#[inline]
pub fn note_cache_hits(n: u64) {
    #[cfg(feature = "obs")]
    armed::bump(|c| c.cache_hits += n);
    #[cfg(not(feature = "obs"))]
    let _ = n;
}

/// Note one durability barrier on the calling thread.
#[inline]
pub fn note_fsync() {
    #[cfg(feature = "obs")]
    armed::bump(|c| c.fsyncs += 1);
}

/// Note `n` Bloom-filter membership probes on the calling thread.
#[inline]
pub fn note_filter_probes(n: u64) {
    #[cfg(feature = "obs")]
    armed::bump(|c| c.filter_probes += n);
    #[cfg(not(feature = "obs"))]
    let _ = n;
}

/// This thread's cumulative operation counters (monotone; take
/// deltas). All-zero when recording is off or compiled out.
#[inline]
pub fn thread_op_counters() -> OpCounters {
    #[cfg(feature = "obs")]
    {
        armed::counters()
    }
    #[cfg(not(feature = "obs"))]
    {
        OpCounters::default()
    }
}

/// Flush the calling thread's ring into the global sink without
/// draining it. Worker threads also flush at exit via their TLS
/// destructor, but a joiner (e.g. `std::thread::scope`) may resume
/// before that destructor runs — a worker whose spans are drained
/// right after the join must call this before its closure returns.
pub fn flush_thread() {
    #[cfg(feature = "obs")]
    armed::flush_thread();
}

/// Drain every completed span recorded so far (flushing the calling
/// thread's ring first). Spans buffered on *other live* threads are
/// not included until those threads flush or exit.
pub fn drain_spans() -> Vec<CompletedSpan> {
    #[cfg(feature = "obs")]
    {
        armed::drain()
    }
    #[cfg(not(feature = "obs"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::recording_test_gate as lock;

    #[test]
    fn disarmed_recording_emits_nothing() {
        let _g = lock();
        set_recording(false);
        drain_spans();
        {
            let _s = span(SpanKind::Probe);
            note_device_reads(3);
        }
        assert!(drain_spans().is_empty());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn spans_nest_and_attribute_counters() {
        let _g = lock();
        set_recording(true);
        drain_spans();
        {
            let _outer = span(SpanKind::BatchProbe);
            note_device_reads(1);
            {
                let _inner = span(SpanKind::Probe);
                note_device_reads(2);
                note_cache_hits(1);
                crate::clock::add_thread_sim_ns(50);
            }
            note_filter_probes(4);
        }
        event(SpanKind::Eviction, 7);
        set_recording(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 3);
        let inner = spans.iter().find(|s| s.kind == SpanKind::Probe).unwrap();
        let outer = spans
            .iter()
            .find(|s| s.kind == SpanKind::BatchProbe)
            .unwrap();
        let evict = spans.iter().find(|s| s.kind == SpanKind::Eviction).unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.counters.device_reads, 2);
        assert_eq!(inner.counters.cache_hits, 1);
        assert_eq!(inner.sim_ns, 50);
        // The outer span includes its child's work.
        assert_eq!(outer.counters.device_reads, 3);
        assert_eq!(outer.counters.filter_probes, 4);
        assert!(outer.sim_ns >= 50);
        assert!(outer.end_wall_ns >= inner.end_wall_ns);
        assert_eq!(evict.detail, 7);
        assert_eq!(evict.parent, None);
        assert_eq!(root_device_reads(&spans), 3, "inner reads counted once");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn worker_threads_flush_before_join() {
        let _g = lock();
        set_recording(true);
        drain_spans();
        // A test thread that just finished elsewhere in the harness can
        // flush its ring into the sink concurrently; tag this test's
        // spans so the count ignores such stragglers.
        const TAG: u64 = 0x0B5_F1A6;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        let mut s = span(SpanKind::Probe);
                        s.set_detail(TAG);
                    }
                    // `scope` unblocks when the closure returns, which
                    // can be before this thread's TLS destructors (the
                    // ring's exit flush) have run — flush explicitly so
                    // the spans are sunk before the join.
                    flush_thread();
                });
            }
        });
        set_recording(false);
        let spans: Vec<_> = drain_spans()
            .into_iter()
            .filter(|s| s.detail == TAG)
            .collect();
        assert_eq!(spans.len(), 40);
        let threads: std::collections::HashSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4, "each worker got its own thread id");
    }
}
