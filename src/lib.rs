//! # bftree-repro — BF-Tree: Approximate Tree Indexing (VLDB 2014)
//!
//! Umbrella crate of the reproduction: re-exports the public surface
//! of every member crate so examples and downstream users can depend
//! on one package.
//!
//! * [`bftree`] — the BF-Tree itself (the paper's contribution).
//! * [`access`](bftree_access) — the unified [`bftree_access::AccessMethod`]
//!   trait every index implements.
//! * [`bloom`](bftree_bloom) — Bloom-filter substrate.
//! * [`storage`](bftree_storage) — pages, heap files, simulated devices,
//!   and the [`bftree_storage::Relation`]/[`bftree_storage::IoContext`]
//!   handles every query runs against.
//! * [`bufferpool`](bftree_bufferpool) — the shared, sharded
//!   [`bftree_bufferpool::BufferManager`] (one byte budget across all
//!   devices, pluggable eviction policies) behind the warm paths.
//! * [`btree`](bftree_btree) — B+-Tree baseline.
//! * [`hashindex`](bftree_hashindex) — in-memory hash-index baseline.
//! * [`fdtree`](bftree_fdtree) — FD-Tree baseline.
//! * [`wal`](bftree_wal) — write-ahead log: checksummed records,
//!   per-record/group-commit/async durability, torn-tail recovery
//!   reader (the durable write path under
//!   [`bftree_access::DurableIndex`]).
//! * [`model`](bftree_model) — Section-5 analytical model.
//! * [`workloads`](bftree_workloads) — synthetic R / TPCH / SHD.
//! * [`obs`](bftree_obs) — structured observability: spans, metrics
//!   registry, exportable traces.
//! * [`shard`](bftree_shard) — the sharded serving layer:
//!   [`bftree_shard::ShardedIndex`] range-partitions a relation across
//!   N durable shards behind a scatter-gather router, with
//!   [`bftree_shard::ShardedContinuation`] tokens resuming paginated
//!   scans across shard boundaries.
//! * [`net`](bftree_net) — the wire-protocol front end: a
//!   length-prefixed, CRC-framed binary protocol over TCP, a blocking
//!   [`bftree_net::Server`] and a pipelining [`bftree_net::Client`].
//!
//! ## Quickstart
//!
//! ```
//! use bftree::BfTree;
//! use bftree_access::AccessMethod;
//! use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, TupleLayout};
//! use bftree_storage::tuple::PK_OFFSET;
//!
//! // A relation ordered on its primary key.
//! let mut heap = HeapFile::new(TupleLayout::new(256));
//! for pk in 0..10_000u64 {
//!     heap.append_record(pk, pk / 11);
//! }
//! let relation = Relation::new(heap, PK_OFFSET, Duplicates::Unique)?;
//!
//! // Build with the typed builder; probe through the trait.
//! let tree = BfTree::builder().fpp(1e-3).pages_per_bf(1).build(&relation)?;
//! let index: &dyn AccessMethod = &tree;
//! let probe = index.probe_first(4_242, &relation, &IoContext::unmetered())?;
//! assert!(probe.found());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bftree;
pub use bftree_access;
pub use bftree_bloom;
pub use bftree_btree;
pub use bftree_bufferpool;
pub use bftree_fdtree;
pub use bftree_hashindex;
pub use bftree_model;
pub use bftree_net;
pub use bftree_obs;
pub use bftree_shard;
pub use bftree_storage;
pub use bftree_wal;
pub use bftree_workloads;
