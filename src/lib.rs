//! # bftree-repro — BF-Tree: Approximate Tree Indexing (VLDB 2014)
//!
//! Umbrella crate of the reproduction: re-exports the public surface
//! of every member crate so examples and downstream users can depend
//! on one package.
//!
//! * [`bftree`] — the BF-Tree itself (the paper's contribution).
//! * [`bloom`](bftree_bloom) — Bloom-filter substrate.
//! * [`storage`](bftree_storage) — pages, heap files, simulated devices.
//! * [`btree`](bftree_btree) — B+-Tree baseline.
//! * [`hashindex`](bftree_hashindex) — in-memory hash-index baseline.
//! * [`fdtree`](bftree_fdtree) — FD-Tree baseline.
//! * [`model`](bftree_model) — Section-5 analytical model.
//! * [`workloads`](bftree_workloads) — synthetic R / TPCH / SHD.

pub use bftree;
pub use bftree_bloom;
pub use bftree_btree;
pub use bftree_fdtree;
pub use bftree_hashindex;
pub use bftree_model;
pub use bftree_storage;
pub use bftree_workloads;
