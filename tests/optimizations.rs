//! Integration tests for the Section-7/8 optimizations: parallel
//! filter probing, interpolated probe order, index intersection, and
//! the index-free comparators.

use bftree::{probe_intersection, BfTree, BfTreeConfig, IndexPredicate, ProbeOrder};
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{binary_search, interpolation_search, HeapFile, TupleLayout};
use bftree_workloads::{build_relation_r, SyntheticConfig};

fn heap() -> HeapFile {
    build_relation_r(&SyntheticConfig { n_tuples: 30_000, ..SyntheticConfig::scaled_mb(8) })
}

#[test]
fn parallel_filter_probing_matches_serial() {
    let heap = heap();
    let tree = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-2, ..BfTreeConfig::ordered_default() },
        &heap,
        PK_OFFSET,
    );
    for key in (0..30_000u64).step_by(501) {
        for leaf_idx in 0..tree.leaf_pages() as u32 {
            let leaf = tree.leaf(leaf_idx);
            let mut serial = Vec::new();
            leaf.matching_pages(key, &mut serial);
            for threads in [1usize, 2, 4, 7] {
                let mut par = Vec::new();
                leaf.matching_pages_parallel(key, &mut par, threads);
                assert_eq!(par, serial, "key {key}, leaf {leaf_idx}, {threads} threads");
            }
        }
    }
}

#[test]
fn interpolated_probe_order_cuts_false_reads_on_uniform_pk() {
    let heap = heap();
    let base = BfTreeConfig { fpp: 0.05, ..BfTreeConfig::ordered_default() };
    let page_order = BfTree::bulk_build(base, &heap, PK_OFFSET);
    let interpolated = BfTree::bulk_build(
        BfTreeConfig { probe_order: ProbeOrder::Interpolated, ..base },
        &heap,
        PK_OFFSET,
    );

    let mut fr_page = 0u64;
    let mut fr_interp = 0u64;
    for key in (0..30_000u64).step_by(97) {
        let a = page_order.probe_first(key, &heap, PK_OFFSET, None, None);
        let b = interpolated.probe_first(key, &heap, PK_OFFSET, None, None);
        assert!(a.found() && b.found(), "key {key}");
        fr_page += a.false_reads;
        fr_interp += b.false_reads;
    }
    assert!(
        fr_interp * 5 < fr_page.max(5),
        "interpolated {fr_interp} vs page-order {fr_page} false reads"
    );
}

#[test]
fn intersection_fpp_is_multiplicative() {
    // Probe deliberately loose indexes with absent keys: pages survive
    // the intersection only if both sides fire falsely, so the
    // intersected false reads should be far below either side's.
    let heap = heap();
    let config = BfTreeConfig { fpp: 0.2, ..BfTreeConfig::ordered_default() };
    let a = BfTree::bulk_build(config, &heap, PK_OFFSET);
    let b = BfTree::bulk_build(config, &heap, ATT1_OFFSET);

    let mut single = 0u64;
    let mut both = 0u64;
    let mut probes = 0u64;
    for pk in (0..30_000u64).step_by(211) {
        let att1 = {
            // The true ATT1 value of this pk's tuple, so the predicate
            // pair is consistent.
            let r = a.probe_first(pk, &heap, PK_OFFSET, None, None);
            let (pid, slot) = r.matches[0];
            heap.attr(pid, slot, ATT1_OFFSET)
        };
        single += a.probe(pk, &heap, PK_OFFSET, None, None).false_reads;
        both += probe_intersection(
            IndexPredicate { tree: &a, attr: PK_OFFSET, key: pk },
            IndexPredicate { tree: &b, attr: ATT1_OFFSET, key: att1 },
            &heap,
            None,
            None,
        )
        .false_reads;
        probes += 1;
    }
    assert!(probes > 100);
    assert!(
        both * 4 < single.max(4),
        "intersection false reads {both} vs single-index {single}"
    );
}

#[test]
fn index_free_comparators_agree_with_the_index() {
    let heap = heap();
    let tree = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::ordered_default() },
        &heap,
        PK_OFFSET,
    );
    for key in (0..30_000u64).step_by(643) {
        let via_tree = tree.probe_first(key, &heap, PK_OFFSET, None, None);
        let via_bin = binary_search(&heap, PK_OFFSET, key, None);
        let via_interp = interpolation_search(&heap, PK_OFFSET, key, None);
        assert_eq!(via_tree.matches, via_bin.matches, "key {key}");
        assert_eq!(via_bin.matches, via_interp.matches, "key {key}");
    }
}

#[test]
fn bftree_reads_fewer_pages_than_binary_search() {
    // §7: the index buys I/O. A tight BF-Tree probe reads ~1 data
    // page; binary search reads ~log2(pages).
    let heap = heap();
    let tree = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-9, ..BfTreeConfig::ordered_default() },
        &heap,
        PK_OFFSET,
    );
    let mut tree_pages = 0u64;
    let mut bin_pages = 0u64;
    for key in (0..30_000u64).step_by(359) {
        tree_pages += tree.probe_first(key, &heap, PK_OFFSET, None, None).pages_read;
        bin_pages += binary_search(&heap, PK_OFFSET, key, None).pages_read;
    }
    assert!(
        tree_pages * 3 < bin_pages,
        "BF-Tree {tree_pages} vs binary search {bin_pages} data pages"
    );
}

#[test]
fn parallel_probe_on_tiny_leaf_falls_back_to_serial() {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..20u64 {
        heap.append_record(pk, pk);
    }
    let tree = BfTree::bulk_build(BfTreeConfig::ordered_default(), &heap, PK_OFFSET);
    let leaf = tree.leaf(0);
    let mut out = Vec::new();
    leaf.matching_pages_parallel(7, &mut out, 16);
    assert!(out.contains(&0));
}
