//! Integration tests for the Section-7/8 optimizations: parallel
//! filter probing, interpolated probe order, index intersection, and
//! the index-free comparators.

use bftree::{probe_intersection, AccessMethod, BfTree, IndexPredicate, ProbeOrder};
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{
    binary_search, interpolation_search, Duplicates, HeapFile, IoContext, Relation, TupleLayout,
};
use bftree_workloads::{build_relation_r, SyntheticConfig};

fn heap() -> HeapFile {
    build_relation_r(&SyntheticConfig {
        n_tuples: 30_000,
        ..SyntheticConfig::scaled_mb(8)
    })
}

fn pk_relation() -> Relation {
    Relation::new(heap(), PK_OFFSET, Duplicates::Unique).unwrap()
}

#[test]
fn parallel_filter_probing_matches_serial() {
    let rel = pk_relation();
    let tree = BfTree::builder().fpp(1e-2).build(&rel).unwrap();
    for key in (0..30_000u64).step_by(501) {
        for leaf_idx in 0..tree.leaf_pages() as u32 {
            let leaf = tree.leaf(leaf_idx);
            let mut serial = Vec::new();
            leaf.matching_pages(key, &mut serial);
            for threads in [1usize, 2, 4, 7] {
                let mut par = Vec::new();
                leaf.matching_pages_parallel(key, &mut par, threads);
                assert_eq!(par, serial, "key {key}, leaf {leaf_idx}, {threads} threads");
            }
        }
    }
}

#[test]
fn interpolated_probe_order_cuts_false_reads_on_uniform_pk() {
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let builder = BfTree::builder().fpp(0.05);
    let page_order = builder.clone().build(&rel).unwrap();
    let interpolated = builder
        .probe_order(ProbeOrder::Interpolated)
        .build(&rel)
        .unwrap();

    let mut fr_page = 0u64;
    let mut fr_interp = 0u64;
    for key in (0..30_000u64).step_by(97) {
        let a = AccessMethod::probe_first(&page_order, key, &rel, &io).unwrap();
        let b = AccessMethod::probe_first(&interpolated, key, &rel, &io).unwrap();
        assert!(a.found() && b.found(), "key {key}");
        fr_page += a.false_reads;
        fr_interp += b.false_reads;
    }
    assert!(
        fr_interp * 5 < fr_page.max(5),
        "interpolated {fr_interp} vs page-order {fr_page} false reads"
    );
}

#[test]
fn intersection_fpp_is_multiplicative() {
    // Probe deliberately loose indexes with absent keys: pages survive
    // the intersection only if both sides fire falsely, so the
    // intersected false reads should be far below either side's.
    let rel_pk = pk_relation();
    let rel_att1 =
        Relation::new(rel_pk.heap().clone(), ATT1_OFFSET, Duplicates::Contiguous).unwrap();
    let io = IoContext::unmetered();
    let builder = BfTree::builder().fpp(0.2);
    let a = builder.clone().build(&rel_pk).unwrap();
    let b = builder.build(&rel_att1).unwrap();

    let mut single = 0u64;
    let mut both = 0u64;
    let mut probes = 0u64;
    for pk in (0..30_000u64).step_by(211) {
        let att1 = {
            // The true ATT1 value of this pk's tuple, so the predicate
            // pair is consistent.
            let r = AccessMethod::probe_first(&a, pk, &rel_pk, &io).unwrap();
            let (pid, slot) = r.matches[0];
            rel_pk.heap().attr(pid, slot, ATT1_OFFSET)
        };
        single += AccessMethod::probe(&a, pk, &rel_pk, &io)
            .unwrap()
            .false_reads;
        both += probe_intersection(
            IndexPredicate {
                tree: &a,
                attr: PK_OFFSET,
                key: pk,
            },
            IndexPredicate {
                tree: &b,
                attr: ATT1_OFFSET,
                key: att1,
            },
            rel_pk.heap(),
            None,
            None,
        )
        .false_reads;
        probes += 1;
    }
    assert!(probes > 100);
    assert!(
        both * 4 < single.max(4),
        "intersection false reads {both} vs single-index {single}"
    );
}

#[test]
fn index_free_comparators_agree_with_the_index() {
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    for key in (0..30_000u64).step_by(643) {
        let via_tree = AccessMethod::probe_first(&tree, key, &rel, &io).unwrap();
        let via_bin = binary_search(rel.heap(), PK_OFFSET, key, None);
        let via_interp = interpolation_search(rel.heap(), PK_OFFSET, key, None);
        assert_eq!(via_tree.matches, via_bin.matches, "key {key}");
        assert_eq!(via_bin.matches, via_interp.matches, "key {key}");
    }
}

#[test]
fn bftree_reads_fewer_pages_than_binary_search() {
    // §7: the index buys I/O. A tight BF-Tree probe reads ~1 data
    // page; binary search reads ~log2(pages).
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().fpp(1e-9).build(&rel).unwrap();
    let mut tree_pages = 0u64;
    let mut bin_pages = 0u64;
    for key in (0..30_000u64).step_by(359) {
        tree_pages += AccessMethod::probe_first(&tree, key, &rel, &io)
            .unwrap()
            .pages_read;
        bin_pages += binary_search(rel.heap(), PK_OFFSET, key, None).pages_read;
    }
    assert!(
        tree_pages * 3 < bin_pages,
        "BF-Tree {tree_pages} vs binary search {bin_pages} data pages"
    );
}

#[test]
fn parallel_probe_on_tiny_leaf_falls_back_to_serial() {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..20u64 {
        heap.append_record(pk, pk);
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let tree = BfTree::builder().build(&rel).unwrap();
    let leaf = tree.leaf(0);
    let mut out = Vec::new();
    leaf.matching_pages_parallel(7, &mut out, 16);
    assert!(out.contains(&0));
}
