//! Property tests for the baseline indexes (FD-Tree, hash index,
//! B+-Tree): all three must agree with each other and with brute force
//! on arbitrary workloads — they are the measuring sticks every
//! experiment leans on, so their correctness is load-bearing.

use proptest::prelude::*;

use bftree_btree::{BPlusTree, BTreeConfig, DuplicateMode, TupleRef};
use bftree_fdtree::FdTree;
use bftree_hashindex::HashIndex;

/// Arbitrary sorted unique entries keyed by random gaps.
fn entries() -> impl Strategy<Value = Vec<(u64, TupleRef)>> {
    proptest::collection::vec(1u64..100, 1..800).prop_map(|gaps| {
        let mut key = 0u64;
        gaps.into_iter()
            .enumerate()
            .map(|(i, g)| {
                key += g;
                (key, TupleRef::new(i as u64 / 16, i % 16))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every index finds every inserted entry with the exact TupleRef.
    #[test]
    fn all_baselines_agree_on_lookups(entries in entries()) {
        let bp = BPlusTree::bulk_build(BTreeConfig::paper_default(), entries.clone());
        let fd = FdTree::bulk_build(entries.clone());
        let hi = HashIndex::build(entries.clone(), 99);

        for &(k, tref) in entries.iter().step_by(7) {
            prop_assert_eq!(bp.search(k, None), Some(tref), "btree key {}", k);
            prop_assert_eq!(fd.search(k, None), Some(tref), "fdtree key {}", k);
            prop_assert_eq!(hi.get(k), Some(tref), "hash key {}", k);
        }
        // Absent keys (gap keys) miss everywhere.
        for w in entries.windows(2).step_by(11) {
            if w[1].0 > w[0].0 + 1 {
                let absent = w[0].0 + 1;
                prop_assert_eq!(bp.search(absent, None), None);
                prop_assert_eq!(fd.search(absent, None), None);
                prop_assert_eq!(hi.get(absent), None);
            }
        }
    }

    /// B+-Tree range scans return exactly the in-range entries.
    #[test]
    fn btree_range_is_exact(
        entries in entries(),
        lo_frac in 0.0f64..1.0,
        width in 1u64..5_000,
    ) {
        let bp = BPlusTree::bulk_build(BTreeConfig::paper_default(), entries.clone());
        let max = entries.last().expect("non-empty").0;
        let lo = (max as f64 * lo_frac) as u64;
        let hi = lo.saturating_add(width);
        let got: Vec<(u64, TupleRef)> = bp.range(lo, hi, None);
        let expect: Vec<(u64, TupleRef)> = entries
            .iter()
            .copied()
            .filter(|&(k, _)| k >= lo && k <= hi)
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// FD-Tree inserts merge down without losing entries.
    #[test]
    fn fdtree_inserts_survive_merges(entries in entries()) {
        let mut fd = FdTree::new();
        for &(k, tref) in &entries {
            fd.insert(k, tref);
        }
        prop_assert_eq!(fd.n_entries(), entries.len() as u64);
        for &(k, tref) in entries.iter().step_by(5) {
            prop_assert_eq!(fd.search(k, None), Some(tref), "key {}", k);
        }
    }

    /// Hash index removal is precise: the removed entry misses, its
    /// neighbors stay.
    #[test]
    fn hashindex_remove_is_precise(entries in entries(), victim_idx in 0usize..800) {
        prop_assume!(!entries.is_empty());
        let victim_idx = victim_idx % entries.len();
        let (vk, vref) = entries[victim_idx];
        let mut hi = HashIndex::build(entries.clone(), 3);
        prop_assert!(hi.remove(vk, vref));
        prop_assert_eq!(hi.get(vk), None);
        prop_assert!(!hi.remove(vk, vref), "double remove must fail");
        for &(k, tref) in entries.iter().step_by(13).filter(|&&(k, _)| k != vk) {
            prop_assert_eq!(hi.get(k), Some(tref));
        }
    }

    /// B+-Tree incremental inserts agree with bulk build.
    #[test]
    fn btree_incremental_equals_bulk(entries in entries()) {
        let bulk = BPlusTree::bulk_build(BTreeConfig::paper_default(), entries.clone());
        let mut inc = BPlusTree::new(BTreeConfig::paper_default());
        for &(k, tref) in &entries {
            inc.insert(k, tref, None);
        }
        inc.check_invariants();
        for &(k, tref) in entries.iter().step_by(3) {
            prop_assert_eq!(bulk.search(k, None), Some(tref));
            prop_assert_eq!(inc.search(k, None), Some(tref));
        }
        prop_assert_eq!(bulk.n_entries(), inc.n_entries());
    }

    /// FirstRef duplicate mode points at the first of each run.
    #[test]
    fn btree_firstref_points_at_run_head(n_keys in 1u64..200, card in 1u64..8) {
        let mut entries: Vec<(u64, TupleRef)> = Vec::new();
        let mut slot = 0u64;
        for k in 0..n_keys {
            for _ in 0..card {
                entries.push((k * 5, TupleRef::new(slot / 16, (slot % 16) as usize)));
                slot += 1;
            }
        }
        let config = BTreeConfig {
            duplicates: DuplicateMode::FirstRef,
            ..BTreeConfig::paper_default()
        };
        let mut deduped = entries.clone();
        deduped.dedup_by_key(|e| e.0);
        let bp = BPlusTree::bulk_build(config, deduped);
        for k in 0..n_keys {
            let tref = bp.search(k * 5, None).expect("present");
            let first = entries.iter().find(|&&(key, _)| key == k * 5).expect("exists").1;
            prop_assert_eq!(tref, first, "key {}", k * 5);
        }
    }
}
