//! Property tests for the baseline indexes (FD-Tree, hash index,
//! B+-Tree): all three must agree with each other and with brute force
//! on arbitrary workloads — they are the measuring sticks every
//! experiment leans on, so their correctness is load-bearing.
//!
//! Deterministic seeded random cases stand in for proptest (the build
//! is dependency-free); failures reproduce exactly from the seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use bftree_btree::{BPlusTree, BTreeConfig, DuplicateMode, TupleRef};
use bftree_fdtree::FdTree;
use bftree_hashindex::HashIndex;

const CASES: u64 = 24;

/// Arbitrary sorted unique entries keyed by random gaps.
fn entries(rng: &mut StdRng) -> Vec<(u64, TupleRef)> {
    let n = rng.random_range(1usize..800);
    let mut key = 0u64;
    (0..n)
        .map(|i| {
            key += rng.random_range(1u64..100);
            (key, TupleRef::new(i as u64 / 16, i % 16))
        })
        .collect()
}

/// Every index finds every inserted entry with the exact TupleRef.
#[test]
fn all_baselines_agree_on_lookups() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA01 + case);
        let entries = entries(&mut rng);
        let bp = BPlusTree::bulk_build(BTreeConfig::paper_default(), entries.clone());
        let fd = FdTree::bulk_build(entries.clone());
        let hi = HashIndex::build(entries.clone(), 99);

        for &(k, tref) in entries.iter().step_by(7) {
            assert_eq!(bp.search(k, None), Some(tref), "btree key {k}");
            assert_eq!(fd.search(k, None), Some(tref), "fdtree key {k}");
            assert_eq!(hi.get(k), Some(tref), "hash key {k}");
        }
        // Absent keys (gap keys) miss everywhere.
        for w in entries.windows(2).step_by(11) {
            if w[1].0 > w[0].0 + 1 {
                let absent = w[0].0 + 1;
                assert_eq!(bp.search(absent, None), None);
                assert_eq!(fd.search(absent, None), None);
                assert_eq!(hi.get(absent), None);
            }
        }
    }
}

/// B+-Tree range scans return exactly the in-range entries.
#[test]
fn btree_range_is_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA02 + case);
        let entries = entries(&mut rng);
        let bp = BPlusTree::bulk_build(BTreeConfig::paper_default(), entries.clone());
        let max = entries.last().expect("non-empty").0;
        let lo = (max as f64 * rng.random_range(0.0..1.0)) as u64;
        let hi = lo.saturating_add(rng.random_range(1u64..5_000));
        let got: Vec<(u64, TupleRef)> = bp.range(lo, hi, None);
        let expect: Vec<(u64, TupleRef)> = entries
            .iter()
            .copied()
            .filter(|&(k, _)| k >= lo && k <= hi)
            .collect();
        assert_eq!(got, expect, "case {case}");
    }
}

/// FD-Tree inserts merge down without losing entries.
#[test]
fn fdtree_inserts_survive_merges() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA03 + case);
        let entries = entries(&mut rng);
        let mut fd = FdTree::new();
        for &(k, tref) in &entries {
            fd.insert(k, tref);
        }
        assert_eq!(fd.n_entries(), entries.len() as u64);
        for &(k, tref) in entries.iter().step_by(5) {
            assert_eq!(fd.search(k, None), Some(tref), "case {case}: key {k}");
        }
    }
}

/// Hash index removal is precise: the removed entry misses, its
/// neighbors stay.
#[test]
fn hashindex_remove_is_precise() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA04 + case);
        let entries = entries(&mut rng);
        let victim_idx = rng.random_range(0usize..entries.len());
        let (vk, vref) = entries[victim_idx];
        let mut hi = HashIndex::build(entries.clone(), 3);
        assert!(hi.remove(vk, vref));
        assert_eq!(hi.get(vk), None);
        assert!(!hi.remove(vk, vref), "double remove must fail");
        for &(k, tref) in entries.iter().step_by(13).filter(|&&(k, _)| k != vk) {
            assert_eq!(hi.get(k), Some(tref));
        }
    }
}

/// B+-Tree incremental inserts agree with bulk build.
#[test]
fn btree_incremental_equals_bulk() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA05 + case);
        let entries = entries(&mut rng);
        let bulk = BPlusTree::bulk_build(BTreeConfig::paper_default(), entries.clone());
        let mut inc = BPlusTree::new(BTreeConfig::paper_default());
        for &(k, tref) in &entries {
            inc.insert(k, tref, None);
        }
        inc.check_invariants();
        for &(k, tref) in entries.iter().step_by(3) {
            assert_eq!(bulk.search(k, None), Some(tref));
            assert_eq!(inc.search(k, None), Some(tref));
        }
        assert_eq!(bulk.n_entries(), inc.n_entries());
    }
}

/// FirstRef duplicate mode points at the first of each run.
#[test]
fn btree_firstref_points_at_run_head() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA06 + case);
        let n_keys = rng.random_range(1u64..200);
        let card = rng.random_range(1u64..8);
        let mut entries: Vec<(u64, TupleRef)> = Vec::new();
        let mut slot = 0u64;
        for k in 0..n_keys {
            for _ in 0..card {
                entries.push((k * 5, TupleRef::new(slot / 16, (slot % 16) as usize)));
                slot += 1;
            }
        }
        let config = BTreeConfig {
            duplicates: DuplicateMode::FirstRef,
            ..BTreeConfig::paper_default()
        };
        let mut deduped = entries.clone();
        deduped.dedup_by_key(|e| e.0);
        let bp = BPlusTree::bulk_build(config, deduped);
        for k in 0..n_keys {
            let tref = bp.search(k * 5, None).expect("present");
            let first = entries
                .iter()
                .find(|&&(key, _)| key == k * 5)
                .expect("exists")
                .1;
            assert_eq!(tref, first, "case {case}: key {}", k * 5);
        }
    }
}
