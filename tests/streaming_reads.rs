//! Streaming-read properties (the PR-5 API): seeded batteries
//! asserting that `limit(k)` cursors read a bounded prefix of the
//! range's pages and that `Continuation` resumption yields exactly
//! the undelivered remainder — with no data-page re-read on the
//! BF-Tree when the cut lands on a page boundary.

use bftree::BfTree;
use bftree_access::{AccessMethod, Continuation, RangeCursor, RangeCursorExt};
use bftree_btree::{BPlusTree, BTreeConfig};
use bftree_fdtree::FdTree;
use bftree_hashindex::HashIndex;
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, StorageConfig, TupleLayout};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N: u64 = 20_000;
const CARD: u64 = 7;

fn relation(duplicates: Duplicates) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..N {
        heap.append_record(pk, pk / CARD);
    }
    let attr = if duplicates == Duplicates::Unique {
        PK_OFFSET
    } else {
        ATT1_OFFSET
    };
    Relation::new(heap, attr, duplicates).expect("conventional layout")
}

fn all_indexes(rel: &Relation) -> Vec<Box<dyn AccessMethod>> {
    let mut indexes: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(BfTree::builder().fpp(1e-4).empty(rel).expect("valid")),
        Box::new(BPlusTree::new(BTreeConfig::paper_default())),
        Box::new(HashIndex::with_capacity(16, 0xC0FFEE)),
        Box::new(FdTree::new()),
    ];
    for index in &mut indexes {
        index.build(rel).unwrap();
    }
    indexes
}

/// Drain a cursor fully; returns the matches.
fn drain(cursor: &mut dyn RangeCursor) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    while let Some(page) = cursor.next_page_matches() {
        out.extend_from_slice(page);
        cursor.advance();
    }
    out
}

/// Drain a `limit(k)` cursor; returns `(delivered, token, data pages)`.
fn drain_limited(
    index: &dyn AccessMethod,
    lo: u64,
    hi: u64,
    k: u64,
    rel: &Relation,
    io: &IoContext,
) -> (Vec<(u64, usize)>, Option<Continuation>, u64) {
    let mut cursor = index.range_cursor(lo, hi, rel, io).unwrap().limit(k);
    let head = drain(&mut cursor);
    (head, cursor.continuation(), cursor.io().pages_read)
}

/// Seeded battery: for every index, every limit, every random range —
/// the limited cursor reads **no more** data pages than the full scan
/// (strictly fewer whenever the result meaningfully exceeds the
/// limit), and prefix + resume reproduces the full scan match for
/// match.
#[test]
fn limited_cursors_read_a_bounded_prefix_and_resume_exactly() {
    for duplicates in [Duplicates::Unique, Duplicates::Contiguous] {
        let rel = relation(duplicates);
        let domain = if duplicates == Duplicates::Unique {
            N
        } else {
            N / CARD
        };
        let indexes = all_indexes(&rel);
        let mut rng = StdRng::seed_from_u64(0xBF05_0001);
        for case in 0..6 {
            let lo = rng.random_range(0..domain);
            let hi = (lo + 32 + rng.random_range(0..domain / 4)).min(domain + 10);
            for index in &indexes {
                let name = index.name();
                let io_full = IoContext::cold(StorageConfig::SsdHdd);
                let full = index.range_scan(lo, hi, &rel, &io_full).unwrap();
                let full_data_reads = io_full.data.snapshot().device_reads();
                assert_eq!(full.pages_read, full_data_reads, "{name}: accounting");

                for k in [1u64, 10, 100] {
                    let io = IoContext::cold(StorageConfig::SsdHdd);
                    let (head, token, pages) = drain_limited(index.as_ref(), lo, hi, k, &rel, &io);
                    assert_eq!(
                        head.len() as u64,
                        k.min(full.matches.len() as u64),
                        "{name}: case {case} limit {k} delivered count"
                    );
                    assert_eq!(
                        head.as_slice(),
                        &full.matches[..head.len()],
                        "{name}: case {case} limit {k} delivers the scan's prefix"
                    );
                    assert!(
                        pages <= full.pages_read,
                        "{name}: limit({k}) read {pages} pages vs full {}",
                        full.pages_read
                    );
                    assert_eq!(
                        pages,
                        io.data.snapshot().device_reads(),
                        "{name}: cursor accounting matches the device"
                    );
                    // The paper's pay-for-what-you-read claim: a small
                    // limit over a many-page result stops strictly
                    // early.
                    if full.matches.len() as u64 > 4 * k && full.pages_read > pages + 4 {
                        assert!(
                            pages < full.pages_read,
                            "{name}: case {case} limit {k} should terminate early"
                        );
                    }

                    // Resume: exactly the remainder, nothing twice.
                    match token {
                        None => assert_eq!(
                            head.len(),
                            full.matches.len(),
                            "{name}: no token only when drained"
                        ),
                        Some(token) => {
                            let round_trip =
                                Continuation::decode(&token.encode()).expect("valid token");
                            let io2 = IoContext::cold(StorageConfig::SsdHdd);
                            let mut rest_cursor =
                                index.resume_range_cursor(&round_trip, &rel, &io2).unwrap();
                            let rest = drain(&mut rest_cursor);
                            let mut whole = head.clone();
                            whole.extend(rest);
                            assert_eq!(
                                whole, full.matches,
                                "{name}: case {case} limit {k} prefix + resume == full"
                            );
                            // The consumed prefix is never rescanned:
                            // at most the one boundary page is touched
                            // twice.
                            let resume_pages = rest_cursor.io().pages_read;
                            assert!(
                                pages + resume_pages <= full.pages_read + 1,
                                "{name}: case {case} limit {k}: {pages} + {resume_pages} \
                                 resume pages vs {} full",
                                full.pages_read
                            );
                        }
                    }
                }
            }
        }
    }
}

/// BF-Tree page-boundary resumption: when the limit lands exactly on
/// a page boundary (derived from a page-by-page dry run), the resumed
/// cursor re-reads **no data page at all** — prefix pages + resume
/// pages equal the full scan's page count exactly, in the same
/// sequential-read cost model.
#[test]
fn bftree_boundary_aligned_resume_rereads_no_page() {
    let rel = relation(Duplicates::Unique);
    let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    let index: &dyn AccessMethod = &tree;
    let mut rng = StdRng::seed_from_u64(0xBF05_0002);
    for case in 0..8 {
        let lo = rng.random_range(0..N - 600);
        let hi = lo + 200 + rng.random_range(0u64..400);
        let io_full = IoContext::cold(StorageConfig::SsdHdd);
        let full = index.range_scan(lo, hi, &rel, &io_full).unwrap();

        // Dry run: cumulative match count at each page boundary.
        let io_dry = IoContext::cold(StorageConfig::SsdHdd);
        let mut cursor = index.range_cursor(lo, hi, &rel, &io_dry).unwrap();
        let mut boundaries = Vec::new();
        let mut cum = 0u64;
        while let Some(page) = cursor.next_page_matches() {
            cum += page.len() as u64;
            boundaries.push(cum);
            cursor.advance();
        }
        drop(cursor);
        let Some(&k) = boundaries.iter().find(|&&c| c > 0 && c < cum) else {
            continue; // single-page result; nothing to align on
        };

        let io_head = IoContext::cold(StorageConfig::SsdHdd);
        let (head, token, head_pages) = drain_limited(index, lo, hi, k, &rel, &io_head);
        assert_eq!(head.len() as u64, k);
        let token = token.expect("remainder exists");
        assert_eq!(token.slot(), 0, "case {case}: boundary-aligned cut");

        let io_rest = IoContext::cold(StorageConfig::SsdHdd);
        let mut rest_cursor = index.resume_range_cursor(&token, &rel, &io_rest).unwrap();
        let rest = drain(&mut rest_cursor);
        let rest_pages = rest_cursor.io().pages_read;
        drop(rest_cursor);

        let mut whole = head;
        whole.extend(rest);
        assert_eq!(whole, full.matches, "case {case}: lossless pagination");
        assert_eq!(
            head_pages + rest_pages,
            full.pages_read,
            "case {case}: no data page read twice across the resume"
        );
        // Same cost model too: every data page of the partition walk
        // is one sequential read, so the split scan's data time equals
        // the full scan's.
        assert_eq!(
            io_head.data.snapshot().sim_ns + io_rest.data.snapshot().sim_ns,
            io_full.data.snapshot().sim_ns,
            "case {case}: data-device time is split, not grown"
        );
    }
}

/// BF-Tree resume across duplicate runs that **span BF-leaf
/// boundaries**: varying run lengths misalign runs with page and leaf
/// boundaries, and a tiny BF-leaf page size forces runs across
/// leaves — the resume descent then lands on a leaf *left* of the
/// token's partition (the `push_candidates` case), and the cursor's
/// page frontier must survive the skip over that leaf instead of
/// regressing and re-delivering consumed pages.
#[test]
fn bftree_resume_across_spanning_runs_never_redelivers() {
    use bftree::BfTreeConfig;
    let counts = [5usize, 31, 11, 50, 7, 19, 3, 27];
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for key in 0..600u64 {
        for _ in 0..counts[key as usize % counts.len()] {
            heap.append_record(key, key);
        }
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Contiguous).unwrap();
    let config = BfTreeConfig {
        page_size: 512,
        fpp: 1e-4,
        ..BfTreeConfig::paper_default()
    };
    let tree = BfTree::builder()
        .config(config)
        .duplicates_from_relation()
        .build(&rel)
        .unwrap();
    let index: &dyn AccessMethod = &tree;
    for (lo, hi) in [(140u64, 400u64), (0, 50), (97, 311)] {
        let io_full = IoContext::cold(StorageConfig::SsdHdd);
        let full = index.range_scan(lo, hi, &rel, &io_full).unwrap();
        let total = full.matches.len() as u64;
        for k in [1u64, 17, 100, 379, total.saturating_sub(1).max(1)] {
            let io = IoContext::cold(StorageConfig::SsdHdd);
            let (head, token, head_pages) = drain_limited(index, lo, hi, k, &rel, &io);
            let Some(token) = token else {
                assert_eq!(head.len() as u64, total, "[{lo},{hi}] k={k}: early None");
                continue;
            };
            let io2 = IoContext::cold(StorageConfig::SsdHdd);
            let mut rest_cursor = index.resume_range_cursor(&token, &rel, &io2).unwrap();
            let rest = drain(&mut rest_cursor);
            let mut whole = head;
            whole.extend(rest);
            assert_eq!(
                whole, full.matches,
                "[{lo},{hi}] k={k}: resume re-delivered or lost matches"
            );
            assert!(
                head_pages + rest_cursor.io().pages_read <= full.pages_read + 1,
                "[{lo},{hi}] k={k}: consumed prefix rescanned"
            );
        }
    }
}

/// Limits cut *inside* a page of duplicates: the continuation's slot
/// frontier hands back the page tail without losing or duplicating a
/// match (every index, contiguous-duplicate layout).
#[test]
fn sub_page_cuts_resume_without_loss_or_duplication() {
    let rel = relation(Duplicates::Contiguous);
    for index in all_indexes(&rel) {
        let name = index.name();
        let (lo, hi) = (40u64, 80u64);
        let io_full = IoContext::cold(StorageConfig::SsdHdd);
        let full = index.range_scan(lo, hi, &rel, &io_full).unwrap();
        // CARD duplicates per key and 16 tuples per page guarantee
        // mid-page cuts for most k.
        for k in [3u64, 5, 17, 33] {
            let io = IoContext::cold(StorageConfig::SsdHdd);
            let (head, token, _) = drain_limited(index.as_ref(), lo, hi, k, &rel, &io);
            let token = token.expect("k < result size");
            let io2 = IoContext::cold(StorageConfig::SsdHdd);
            let mut rest_cursor = index.resume_range_cursor(&token, &rel, &io2).unwrap();
            let rest = drain(&mut rest_cursor);
            let mut whole = head;
            whole.extend(rest);
            assert_eq!(whole, full.matches, "{name}: k={k}");
        }
    }
}
