//! Workspace-level property tests: the BF-Tree's core guarantees under
//! arbitrary (ordered) data and configurations.

use proptest::prelude::*;

use bftree::{BfTree, BfTreeConfig, DuplicateHandling};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{HeapFile, TupleLayout};

/// Arbitrary ordered relation: strictly increasing keys with random
/// gaps, small enough for brute-force oracles.
fn ordered_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..50, 1..1_500).prop_map(|gaps| {
        let mut key = 0u64;
        gaps.into_iter()
            .map(|g| {
                key += g;
                key
            })
            .collect()
    })
}

fn heap_of(keys: &[u64]) -> HeapFile {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for &k in keys {
        heap.append_record(k, k / 3);
    }
    heap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false negatives: every present key is found, at every fpp.
    #[test]
    fn no_false_negatives(
        keys in ordered_keys(),
        fpp_exp in 1u32..10,
    ) {
        let heap = heap_of(&keys);
        let fpp = 10f64.powi(-(fpp_exp as i32));
        let tree = BfTree::bulk_build(
            BfTreeConfig { fpp, ..BfTreeConfig::ordered_default() },
            &heap,
            PK_OFFSET,
        );
        tree.check_invariants();
        for &k in keys.iter().step_by(7) {
            prop_assert!(
                tree.probe_first(k, &heap, PK_OFFSET, None, None).found(),
                "key {k} missing at fpp {fpp}"
            );
        }
    }

    /// Out-of-range keys never match, and in-range absent keys never
    /// produce a (pid, slot) pair that actually carries the key.
    #[test]
    fn no_phantom_matches(keys in ordered_keys()) {
        let heap = heap_of(&keys);
        let tree = BfTree::bulk_build(
            BfTreeConfig { fpp: 0.05, ..BfTreeConfig::ordered_default() },
            &heap,
            PK_OFFSET,
        );
        let max = *keys.last().expect("non-empty");
        for probe in [max + 1, max + 1000, u64::MAX] {
            prop_assert!(!tree.probe(probe, &heap, PK_OFFSET, None, None).found());
        }
        // Absent in-range keys: matches must be empty even when the
        // filters fire (false positives only cost reads, not wrong
        // results).
        let absent: Vec<u64> = (1..max)
            .filter(|k| keys.binary_search(k).is_err())
            .step_by(11)
            .take(20)
            .collect();
        for k in absent {
            let r = tree.probe(k, &heap, PK_OFFSET, None, None);
            prop_assert!(!r.found(), "phantom match for absent key {k}");
        }
    }

    /// Tighter fpp never yields a smaller tree (sizes are monotone).
    #[test]
    fn size_is_monotone_in_fpp(keys in ordered_keys()) {
        let heap = heap_of(&keys);
        let mut last = 0u64;
        for fpp in [0.2, 1e-3, 1e-9] {
            let tree = BfTree::bulk_build(
                BfTreeConfig { fpp, ..BfTreeConfig::ordered_default() },
                &heap,
                PK_OFFSET,
            );
            prop_assert!(tree.total_pages() >= last);
            last = tree.total_pages();
        }
    }

    /// Bulk build and insert-driven build agree on membership.
    #[test]
    fn bulk_and_incremental_agree(keys in ordered_keys()) {
        let heap = heap_of(&keys);
        let config = BfTreeConfig { fpp: 1e-3, ..BfTreeConfig::ordered_default() };
        let bulk = BfTree::bulk_build(config, &heap, PK_OFFSET);
        let mut inc = BfTree::new(config);
        for (pid, _, key) in heap.iter_attr(PK_OFFSET) {
            inc.insert(key, pid, Some(&heap), PK_OFFSET);
        }
        inc.check_invariants();
        for &k in keys.iter().step_by(13) {
            prop_assert_eq!(
                bulk.probe_first(k, &heap, PK_OFFSET, None, None).found(),
                inc.probe_first(k, &heap, PK_OFFSET, None, None).found()
            );
        }
    }

    /// Range scans agree with brute force on arbitrary bounds.
    #[test]
    fn range_scan_matches_brute_force(
        keys in ordered_keys(),
        lo_frac in 0.0f64..1.0,
        width_frac in 0.0f64..0.5,
    ) {
        let heap = heap_of(&keys);
        let max = *keys.last().expect("non-empty");
        let lo = (max as f64 * lo_frac) as u64;
        let hi = lo + ((max as f64 * width_frac) as u64);
        let tree = BfTree::bulk_build(
            BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::ordered_default() },
            &heap,
            PK_OFFSET,
        );
        let got = tree.range_scan(lo, hi, &heap, PK_OFFSET, None, None).matches;
        let expect: Vec<(u64, usize)> = heap
            .iter_attr(PK_OFFSET)
            .filter(|&(_, _, v)| v >= lo && v <= hi)
            .map(|(pid, slot, _)| (pid, slot))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Duplicate handling is invisible to results: both modes return
    /// identical matches on ordered data with duplicates.
    #[test]
    fn duplicate_modes_agree(keys in ordered_keys()) {
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for &k in &keys {
            // Each key appears 1 + k%4 times, contiguously.
            for _ in 0..1 + k % 4 {
                heap.append_record(k, k);
            }
        }
        let trees: Vec<BfTree> =
            [DuplicateHandling::AllCoveringPages, DuplicateHandling::FirstPageOnly]
                .into_iter()
                .map(|duplicates| {
                    BfTree::bulk_build(
                        BfTreeConfig { fpp: 1e-4, duplicates, ..BfTreeConfig::paper_default() },
                        &heap,
                        PK_OFFSET,
                    )
                })
                .collect();
        for &k in keys.iter().step_by(9) {
            let mut a = trees[0].probe(k, &heap, PK_OFFSET, None, None).matches;
            let mut b = trees[1].probe(k, &heap, PK_OFFSET, None, None).matches;
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "key {}", k);
        }
    }
}
