//! Workspace-level property tests: the BF-Tree's core guarantees under
//! arbitrary (ordered) data and configurations.
//!
//! The build is dependency-free, so instead of proptest these run each
//! property over a battery of seeded random cases (the vendored
//! `rand` stand-in is deterministic: failures reproduce exactly).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use bftree::{AccessMethod, BfTree, DuplicateHandling};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, TupleLayout};

const CASES: u64 = 24;

/// Arbitrary ordered relation: strictly increasing keys with random
/// gaps, small enough for brute-force oracles.
fn ordered_keys(rng: &mut StdRng) -> Vec<u64> {
    let n = rng.random_range(1usize..1_500);
    let mut key = 0u64;
    (0..n)
        .map(|_| {
            key += rng.random_range(1u64..50);
            key
        })
        .collect()
}

fn relation_of(keys: &[u64]) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for &k in keys {
        heap.append_record(k, k / 3);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout")
}

/// No false negatives: every present key is found, at every fpp.
#[test]
fn no_false_negatives() {
    let io = IoContext::unmetered();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBF01 + case);
        let keys = ordered_keys(&mut rng);
        let rel = relation_of(&keys);
        let fpp = 10f64.powi(-(rng.random_range(1u32..10) as i32));
        let tree = BfTree::builder().fpp(fpp).build(&rel).unwrap();
        tree.check_invariants();
        for &k in keys.iter().step_by(7) {
            assert!(
                AccessMethod::probe_first(&tree, k, &rel, &io)
                    .unwrap()
                    .found(),
                "case {case}: key {k} missing at fpp {fpp}"
            );
        }
    }
}

/// Out-of-range keys never match, and in-range absent keys never
/// produce a (pid, slot) pair that actually carries the key.
#[test]
fn no_phantom_matches() {
    let io = IoContext::unmetered();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBF02 + case);
        let keys = ordered_keys(&mut rng);
        let rel = relation_of(&keys);
        let tree = BfTree::builder().fpp(0.05).build(&rel).unwrap();
        let max = *keys.last().expect("non-empty");
        for probe in [max + 1, max + 1000, u64::MAX] {
            assert!(!AccessMethod::probe(&tree, probe, &rel, &io)
                .unwrap()
                .found());
        }
        // Absent in-range keys: matches must be empty even when the
        // filters fire (false positives only cost reads, not wrong
        // results).
        let absent: Vec<u64> = (1..max)
            .filter(|k| keys.binary_search(k).is_err())
            .step_by(11)
            .take(20)
            .collect();
        for k in absent {
            let r = AccessMethod::probe(&tree, k, &rel, &io).unwrap();
            assert!(!r.found(), "case {case}: phantom match for absent key {k}");
        }
    }
}

/// Tighter fpp never yields a smaller tree (sizes are monotone).
#[test]
fn size_is_monotone_in_fpp() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBF03 + case);
        let keys = ordered_keys(&mut rng);
        let rel = relation_of(&keys);
        let mut last = 0u64;
        for fpp in [0.2, 1e-3, 1e-9] {
            let tree = BfTree::builder().fpp(fpp).build(&rel).unwrap();
            assert!(tree.total_pages() >= last);
            last = tree.total_pages();
        }
    }
}

/// Bulk build and insert-driven build agree on membership.
#[test]
fn bulk_and_incremental_agree() {
    let io = IoContext::unmetered();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBF04 + case);
        let keys = ordered_keys(&mut rng);
        let rel = relation_of(&keys);
        let builder = BfTree::builder().fpp(1e-3);
        let bulk = builder.build(&rel).unwrap();
        let mut inc = builder.empty(&rel).unwrap();
        for (pid, slot, key) in rel.heap().iter_attr(PK_OFFSET) {
            AccessMethod::insert(&mut inc, key, (pid, slot), &rel).unwrap();
        }
        inc.check_invariants();
        for &k in keys.iter().step_by(13) {
            assert_eq!(
                AccessMethod::probe_first(&bulk, k, &rel, &io)
                    .unwrap()
                    .found(),
                AccessMethod::probe_first(&inc, k, &rel, &io)
                    .unwrap()
                    .found()
            );
        }
    }
}

/// Range scans agree with brute force on arbitrary bounds.
#[test]
fn range_scan_matches_brute_force() {
    let io = IoContext::unmetered();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBF05 + case);
        let keys = ordered_keys(&mut rng);
        let rel = relation_of(&keys);
        let max = *keys.last().expect("non-empty");
        let lo = (max as f64 * rng.random_range(0.0..1.0)) as u64;
        let hi = lo + ((max as f64 * rng.random_range(0.0..0.5)) as u64);
        let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
        let got = AccessMethod::range_scan(&tree, lo, hi, &rel, &io)
            .unwrap()
            .matches;
        let expect: Vec<(u64, usize)> = rel
            .heap()
            .iter_attr(PK_OFFSET)
            .filter(|&(_, _, v)| v >= lo && v <= hi)
            .map(|(pid, slot, _)| (pid, slot))
            .collect();
        assert_eq!(got, expect, "case {case}: range [{lo}, {hi}]");
    }
}

/// Duplicate handling is invisible to results: both modes return
/// identical matches on ordered data with duplicates.
#[test]
fn duplicate_modes_agree() {
    let io = IoContext::unmetered();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBF06 + case);
        let keys = ordered_keys(&mut rng);
        let mut heap = HeapFile::new(TupleLayout::new(256));
        for &k in &keys {
            // Each key appears 1 + k%4 times, contiguously.
            for _ in 0..1 + k % 4 {
                heap.append_record(k, k);
            }
        }
        let rel = Relation::new(heap, PK_OFFSET, Duplicates::Contiguous).unwrap();
        let trees: Vec<BfTree> = [
            DuplicateHandling::AllCoveringPages,
            DuplicateHandling::FirstPageOnly,
        ]
        .into_iter()
        .map(|duplicates| {
            BfTree::builder()
                .fpp(1e-4)
                .duplicates(duplicates)
                .build(&rel)
                .unwrap()
        })
        .collect();
        for &k in keys.iter().step_by(9) {
            let mut a = AccessMethod::probe(&trees[0], k, &rel, &io)
                .unwrap()
                .matches;
            let mut b = AccessMethod::probe(&trees[1], k, &rel, &io)
                .unwrap()
                .matches;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case {case}: key {k}");
        }
    }
}
