//! Crash-recovery battery for the durable write path: run a scripted
//! insert/delete workload through a [`DurableIndex`], then kill the
//! log at **every record boundary** and recover. The recovered index
//! must answer identically — probe for probe, scan for scan — to a
//! reference built over the surviving heap prefix with the surviving
//! operations applied directly. The battery runs against all four
//! access methods; torn tails, corrupt frames, and a missing genesis
//! checkpoint get their own cases.
//!
//! The script deletes base keys it never reinserts (and inserts only
//! fresh keys), so a direct-apply reference is exact: the answers are
//! a pure function of the surviving operation set.

use bftree::BfTree;
use bftree_access::{AccessMethod, DurableConfig, DurableIndex, RecoverError};
use bftree_btree::{BPlusTree, BTreeConfig};
use bftree_fdtree::FdTree;
use bftree_hashindex::HashIndex;
use bftree_shard::{ShardPlan, ShardedIndex};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    Backend, DeviceKind, Duplicates, HeapFile, IoContext, PageDevice, PageId, Relation, ScratchDir,
    SimDevice, TupleLayout,
};
use bftree_wal::{DurabilityMode, TailState, Wal, WalReader, WalRecord};

const N: u64 = 2_000;
const FRESH: u64 = 10_000;

fn config() -> DurableConfig {
    DurableConfig {
        flush_batch: 8,
        durability: DurabilityMode::GroupCommit {
            max_records: 4,
            max_bytes: 4 * 1024,
        },
    }
}

fn base_relation() -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..N {
        heap.append_record(pk, pk / 3);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout")
}

/// The scripted workload: 30 inserts of fresh keys interleaved with
/// 10 deletes of distinct base keys (stride 37 — never reinserted).
fn script_ops() -> Vec<WalRecord> {
    let mut ops = Vec::new();
    let (mut ins, mut del) = (0u64, 0u64);
    for i in 0..40 {
        if i % 4 == 3 {
            ops.push(WalRecord::Delete { key: del * 37 });
            del += 1;
        } else {
            // page/slot filled in once the tuple is appended.
            ops.push(WalRecord::Insert {
                key: FRESH + ins,
                page: 0,
                slot: 0,
            });
            ins += 1;
        }
    }
    ops
}

/// Keys whose answers the battery compares: every scripted write key,
/// a stride sample of untouched base keys, and a guaranteed miss.
fn watched_keys() -> Vec<u64> {
    let mut keys: Vec<u64> = script_ops()
        .iter()
        .map(|r| match *r {
            WalRecord::Insert { key, .. } | WalRecord::Delete { key } => key,
            WalRecord::Checkpoint { .. } => unreachable!("script has no checkpoints"),
        })
        .collect();
    keys.extend((0..N).step_by(101));
    keys.push(N * 50);
    keys
}

fn sorted_probe(index: &dyn AccessMethod, key: u64, rel: &Relation) -> Vec<(PageId, usize)> {
    let io = IoContext::unmetered();
    let mut m = index.probe(key, rel, &io).expect("probe").matches;
    m.sort_unstable();
    m
}

fn sorted_scan(index: &dyn AccessMethod, rel: &Relation) -> Vec<(PageId, usize)> {
    let io = IoContext::unmetered();
    let mut m = index
        .range_scan(0, FRESH * 2, rel, &io)
        .expect("valid range")
        .matches;
    m.sort_unstable();
    m
}

/// Build the reference: a fresh index over the heap prefix the genesis
/// checkpoint names, with `records` (the surviving log, genesis
/// excluded) applied directly — no WAL, no memtable.
fn reference(
    make: &dyn Fn() -> Box<dyn AccessMethod>,
    rel: &Relation,
    base_tuples: u64,
    records: &[(usize, WalRecord)],
) -> Box<dyn AccessMethod> {
    let base_rel = Relation::new(
        rel.heap().truncated(base_tuples),
        rel.attr(),
        rel.duplicates(),
    )
    .expect("base prefix is a valid relation");
    let mut index = make();
    index.build(&base_rel).expect("reference build");
    for &(_, rec) in records {
        match rec {
            WalRecord::Insert { key, page, slot } => index
                .insert(key, (page, slot as usize), rel)
                .expect("reference insert"),
            WalRecord::Delete { key } => {
                index.delete(key, rel).expect("reference delete");
            }
            WalRecord::Checkpoint { .. } => {}
        }
    }
    index
}

/// The scan oracle: an uncrashed `DurableIndex` that simply stopped
/// after `records` — built from the in-memory operation list, never
/// from log bytes. Scans are compared against this rather than the
/// direct-apply reference because page-granular indexes legitimately
/// return every in-range tuple on a heap page they read, including
/// tuples whose registering insert is past the cut; the probe oracle
/// stays the independent direct-apply index.
fn uncrashed_prefix(
    make: &dyn Fn() -> Box<dyn AccessMethod>,
    rel: &Relation,
    base_tuples: u64,
    records: &[(usize, WalRecord)],
) -> DurableIndex<Box<dyn AccessMethod>> {
    let base_rel = Relation::new(
        rel.heap().truncated(base_tuples),
        rel.attr(),
        rel.duplicates(),
    )
    .expect("base prefix is a valid relation");
    let mut inner = make();
    inner.build(&base_rel).expect("oracle build");
    let mut index = DurableIndex::new(inner, &base_rel, SimDevice::cold(DeviceKind::Ssd), config());
    for &(_, rec) in records {
        match rec {
            WalRecord::Insert { key, page, slot } => index
                .insert(key, (page, slot as usize), rel)
                .expect("oracle insert"),
            WalRecord::Delete { key } => {
                index.delete(key, rel).expect("oracle delete");
            }
            WalRecord::Checkpoint { .. } => {}
        }
    }
    index
}

struct Crashed {
    /// The relation as a crash would find it: every scripted tuple
    /// already appended (heap pages are durable at append time).
    rel: Relation,
    /// The uncrashed index, memtable tail and all.
    live: DurableIndex<Box<dyn AccessMethod>>,
    /// Full log image of the uncrashed run.
    image: Vec<u8>,
}

/// Run the script through a `DurableIndex` over `make()`'s index,
/// logging to a simulated SSD device.
fn run_script(make: &dyn Fn() -> Box<dyn AccessMethod>) -> Crashed {
    run_script_on(make, PageDevice::cold(DeviceKind::Ssd))
}

/// The same scripted run with an explicit log device — how the
/// backend-invariance case drives the script against file-backed
/// storage.
fn run_script_on(make: &dyn Fn() -> Box<dyn AccessMethod>, log: PageDevice) -> Crashed {
    let mut rel = base_relation();
    let mut inner = make();
    inner.build(&rel).expect("base build");
    let mut index = DurableIndex::new(inner, &rel, log, config());
    let io = IoContext::unmetered();
    for op in script_ops() {
        match op {
            WalRecord::Insert { key, .. } => {
                let loc = rel.append_tuple(key, key, &io);
                index.insert(key, loc, &rel).expect("scripted insert");
            }
            WalRecord::Delete { key } => {
                index.delete(key, &rel).expect("scripted delete");
            }
            WalRecord::Checkpoint { .. } => unreachable!("script has no checkpoints"),
        }
    }
    let image = index.wal().bytes().to_vec();
    Crashed {
        rel,
        live: index,
        image,
    }
}

/// The battery: kill at every record boundary, recover, and demand
/// answers identical to the direct-apply reference.
fn kill_at_every_record_boundary(make: &dyn Fn() -> Box<dyn AccessMethod>) {
    let Crashed { rel, live, image } = run_script(make);
    let (all_records, tail) = WalReader::drain(&image);
    assert_eq!(tail, TailState::Clean, "uncrashed log must parse cleanly");
    let keys = watched_keys();

    for cut in 0..all_records.len() {
        let boundary = all_records[cut].0;
        let truncated = &image[..boundary];
        let (recovered, report) = DurableIndex::recover(
            make(),
            &rel,
            truncated,
            SimDevice::cold(DeviceKind::Ssd),
            config(),
        )
        .expect("boundary cut recovers");
        assert_eq!(report.tail, TailState::Clean, "cut at {boundary}");
        assert_eq!(report.base_tuples, N, "genesis names the base heap");
        let surviving = &all_records[1..=cut];
        let (wants_i, wants_d) = surviving.iter().fold((0, 0), |(i, d), &(_, r)| match r {
            WalRecord::Insert { .. } => (i + 1, d),
            WalRecord::Delete { .. } => (i, d + 1),
            WalRecord::Checkpoint { .. } => (i, d),
        });
        assert_eq!(report.replayed_inserts, wants_i, "cut at {boundary}");
        assert_eq!(report.replayed_deletes, wants_d, "cut at {boundary}");

        let expect = reference(make, &rel, N, surviving);
        for &k in &keys {
            assert_eq!(
                sorted_probe(&recovered, k, &rel),
                sorted_probe(expect.as_ref(), k, &rel),
                "{}: probe({k}) diverged after a cut at byte {boundary}",
                recovered.name(),
            );
        }
        let oracle = uncrashed_prefix(make, &rel, N, surviving);
        assert_eq!(
            sorted_scan(&recovered, &rel),
            sorted_scan(&oracle, &rel),
            "{}: range scan diverged after a cut at byte {boundary}",
            recovered.name(),
        );
    }

    // Killing after the final record loses nothing: the recovered
    // index answers exactly like the uncrashed one, unflushed
    // memtable tail included.
    let (recovered, report) = DurableIndex::recover(
        make(),
        &rel,
        &image,
        SimDevice::cold(DeviceKind::Ssd),
        config(),
    )
    .expect("full image recovers");
    assert_eq!(report.tail, TailState::Clean);
    for &k in &keys {
        assert_eq!(
            sorted_probe(&recovered, k, &rel),
            sorted_probe(&live, k, &rel),
            "probe({k}): recovered index diverged from the uncrashed one",
        );
    }
    assert_eq!(
        sorted_scan(&recovered, &rel),
        sorted_scan(&live, &rel),
        "recovered range scan diverged from the uncrashed one",
    );
    assert_eq!(recovered.buffered_ops(), live.buffered_ops());
    assert_eq!(recovered.flush_count(), live.flush_count());
}

fn make_bf_tree() -> Box<dyn AccessMethod> {
    Box::new(
        BfTree::builder()
            .fpp(1e-4)
            .empty(&base_relation())
            .expect("valid config"),
    )
}

#[test]
fn kill_at_every_record_boundary_bf_tree() {
    kill_at_every_record_boundary(&make_bf_tree);
}

#[test]
fn kill_at_every_record_boundary_b_plus_tree() {
    kill_at_every_record_boundary(&|| Box::new(BPlusTree::new(BTreeConfig::paper_default())));
}

#[test]
fn kill_at_every_record_boundary_hash_index() {
    kill_at_every_record_boundary(&|| Box::new(HashIndex::with_capacity(16, 0xC0FFEE)));
}

#[test]
fn kill_at_every_record_boundary_fd_tree() {
    kill_at_every_record_boundary(&|| Box::new(FdTree::new()));
}

#[test]
fn a_torn_tail_recovers_the_longest_valid_prefix() {
    let Crashed { rel, image, .. } = run_script(&make_bf_tree);
    let (all_records, _) = WalReader::drain(&image);
    // Cut mid-record: a few bytes past a boundary in the middle.
    let cut = all_records[all_records.len() / 2];
    let torn = &image[..cut.0 + 3];
    let (recovered, report) = DurableIndex::recover(
        make_bf_tree(),
        &rel,
        torn,
        SimDevice::cold(DeviceKind::Ssd),
        config(),
    )
    .expect("torn tail still recovers");
    assert_eq!(
        report.tail,
        TailState::Torn { valid_len: cut.0 },
        "the torn verdict names the last boundary"
    );
    let surviving_cut = all_records.iter().position(|r| r.0 == cut.0).unwrap();
    let expect = reference(&make_bf_tree, &rel, N, &all_records[1..=surviving_cut]);
    for &k in &watched_keys() {
        assert_eq!(
            sorted_probe(&recovered, k, &rel),
            sorted_probe(expect.as_ref(), k, &rel),
            "probe({k}) diverged after a torn tail",
        );
    }
}

#[test]
fn a_corrupt_frame_truncates_recovery_at_the_damage() {
    let Crashed { rel, image, .. } = run_script(&make_bf_tree);
    let (all_records, _) = WalReader::drain(&image);
    let cut = all_records.len() / 2;
    let boundary = all_records[cut].0;
    // Flip a payload byte of the record after the boundary: its CRC
    // fails, and everything from there on is untrusted.
    let mut corrupt = image.clone();
    corrupt[boundary + 10] ^= 0xFF;
    let (recovered, report) = DurableIndex::recover(
        make_bf_tree(),
        &rel,
        &corrupt,
        SimDevice::cold(DeviceKind::Ssd),
        config(),
    )
    .expect("corruption is a torn tail, not a crash");
    assert_eq!(
        report.tail,
        TailState::Torn {
            valid_len: boundary
        }
    );
    let expect = reference(&make_bf_tree, &rel, N, &all_records[1..=cut]);
    for &k in &watched_keys() {
        assert_eq!(
            sorted_probe(&recovered, k, &rel),
            sorted_probe(expect.as_ref(), k, &rel),
            "probe({k}) diverged after frame corruption",
        );
    }
}

/// Backend invariance for the durable write path: the scripted run
/// produces byte-identical log images and identical log-device
/// counters (writes, fsyncs, simulated clock) whether the log device
/// is simulated or file-backed — and on the file backend, the bytes
/// the store actually holds are the durable prefix, from which
/// recovery answers exactly like a direct-apply reference over the
/// surviving records.
#[test]
fn scripted_run_is_backend_invariant_and_recovers_from_disk() {
    let sim = run_script(&make_bf_tree);
    let dir = ScratchDir::new("recovery-backend").unwrap();
    let backend = Backend::file(dir.path());
    let log = backend.device(DeviceKind::Ssd, "wal").expect("file log");
    assert!(log.file().is_some(), "file backend must materialize");
    let file = run_script_on(&make_bf_tree, log.clone());

    // Identical logical outcome: same log bytes, same device charges.
    assert_eq!(sim.image, file.image, "log images diverged across backends");
    assert_eq!(
        sim.live.wal().device().snapshot(),
        log.snapshot(),
        "log device counters diverged across backends"
    );
    let wall = log.wall().expect("file-backed log has wall counters");
    assert!(wall.writes > 0, "the file log must persist real pages");
    assert!(wall.syncs_issued > 0, "group commit must reach fdatasync");

    // What the store holds is the durable prefix of the full image…
    let disk = Wal::load_image(&log).expect("file-backed log has an image");
    assert!(!disk.is_empty());
    assert_eq!(&disk[..], &file.image[..disk.len()]);

    // …and recovering from those on-disk bytes matches a direct-apply
    // reference over exactly the records they hold.
    let (records, _) = WalReader::drain(&disk);
    let (recovered, report) = DurableIndex::recover(
        make_bf_tree(),
        &file.rel,
        &disk,
        PageDevice::cold(DeviceKind::Ssd),
        config(),
    )
    .expect("on-disk image recovers");
    assert_eq!(report.base_tuples, N);
    let expect = reference(&make_bf_tree, &file.rel, N, &records[1..]);
    for &k in &watched_keys() {
        assert_eq!(
            sorted_probe(&recovered, k, &file.rel),
            sorted_probe(expect.as_ref(), k, &file.rel),
            "probe({k}) diverged when recovering from the on-disk log",
        );
    }
}

// ------------------------------------------------------------------
// Sharded recovery: a fleet of independent WALs, each cut elsewhere.
// ------------------------------------------------------------------

const SHARD_DOMAIN: u64 = 6_000;
const SHARD_BASE: u64 = 3_000;

/// Even primary keys only, so every odd key is free for fresh inserts
/// anywhere in the domain — each shard can take writes to its own
/// slice without colliding with the base relation.
fn sharded_relation() -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for i in 0..SHARD_BASE {
        heap.append_record(2 * i, i);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout")
}

/// The routed script: shard `s` (keys `[2000s, 2000(s+1))`) receives
/// `3(s+1)` fresh odd-key inserts and `s+1` deletes of even base keys
/// it owns (stride 148 — never reinserted), so the three WALs end at
/// genuinely different positions.
fn sharded_script() -> Vec<WalRecord> {
    let mut ops = Vec::new();
    for s in 0..3u64 {
        let lo = 2_000 * s;
        for i in 0..3 * (s + 1) {
            ops.push(WalRecord::Insert {
                key: lo + 2 * i + 1,
                page: 0,
                slot: 0,
            });
        }
        for d in 0..=s {
            ops.push(WalRecord::Delete {
                key: lo + 1_000 + 148 * d,
            });
        }
    }
    ops
}

fn sharded_factory(rel: &Relation) -> impl FnMut(usize) -> Box<dyn AccessMethod> + '_ {
    |_| {
        Box::new(
            BfTree::builder()
                .fpp(1e-4)
                .empty(rel)
                .expect("valid config"),
        )
    }
}

fn sharded_probe(index: &ShardedIndex, keys: &[u64], rel: &Relation) -> Vec<Vec<(PageId, usize)>> {
    let ios: Vec<IoContext> = (0..index.shard_count())
        .map(|_| IoContext::unmetered())
        .collect();
    index
        .probe_batch_sharded(keys, rel, &ios)
        .expect("scatter-gather probe")
        .into_iter()
        .map(|p| {
            let mut m = p.matches;
            m.sort_unstable();
            m
        })
        .collect()
}

/// Drain a full paginated range scan — every page, token to token —
/// so the comparison also walks continuations across shard boundaries.
fn sharded_drain(index: &ShardedIndex, rel: &Relation) -> Vec<(PageId, usize)> {
    let ios: Vec<IoContext> = (0..index.shard_count())
        .map(|_| IoContext::unmetered())
        .collect();
    let mut all = Vec::new();
    let mut token = None;
    loop {
        let (matches, next, _) = index
            .range_page(0, SHARD_DOMAIN * 2, 61, token.as_ref(), rel, &ios)
            .expect("paginated scan");
        all.extend(matches);
        match next {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    all.sort_unstable();
    all
}

/// The multi-shard kill-test: three shards run routed writes to
/// different WAL positions, the crash leaves each shard's log cut at a
/// *different* record boundary (one loses nothing, one loses half, one
/// loses everything past genesis), and [`ShardedIndex::recover_all`]
/// must reassemble a fleet whose merged answers — scatter-gather
/// probes and token-paginated range scans alike — match a sharded
/// oracle with exactly the surviving per-shard prefixes applied
/// directly.
#[test]
fn shards_cut_at_different_wal_positions_recover_to_the_merged_view() {
    let mut rel = sharded_relation();
    let mut index = ShardedIndex::new(
        ShardPlan::uniform(SHARD_DOMAIN, 3),
        &rel,
        config(),
        sharded_factory(&sharded_relation()),
        |_| PageDevice::cold(DeviceKind::Ssd),
    );
    index.build(&rel).expect("base build");
    let io = IoContext::unmetered();
    for op in sharded_script() {
        match op {
            WalRecord::Insert { key, .. } => {
                let loc = rel.append_tuple(key, key, &io);
                index.route_insert(key, loc, &rel).expect("routed insert");
            }
            WalRecord::Delete { key } => {
                index.route_delete(key, &rel).expect("routed delete");
            }
            WalRecord::Checkpoint { .. } => unreachable!("script has no checkpoints"),
        }
    }

    // The crash: capture each shard's log image and cut shard `s` at
    // its own boundary — shard 0 keeps everything, shard 1 half its
    // operations, shard 2 only the genesis checkpoint.
    let mut images = Vec::new();
    let mut surviving: Vec<Vec<(usize, WalRecord)>> = Vec::new();
    for s in 0..3 {
        let image = index.with_shard(s, |st| st.wal().bytes().to_vec());
        let (records, tail) = WalReader::drain(&image);
        assert_eq!(tail, TailState::Clean, "shard {s}: uncrashed log parses");
        let cut = match s {
            0 => records.len() - 1,
            1 => records.len() / 2,
            _ => 0,
        };
        // `records[i].0` is the boundary where record `i` ends, so
        // truncating there keeps records `0..=i`.
        let boundary = records[cut].0;
        assert!(
            s == 0 || boundary < image.len(),
            "shard {s}'s cut must actually lose records"
        );
        images.push(image[..boundary].to_vec());
        surviving.push(records[1..=cut].to_vec());
    }

    let (recovered, reports) = ShardedIndex::recover_all(
        ShardPlan::uniform(SHARD_DOMAIN, 3),
        &rel,
        config(),
        sharded_factory(&sharded_relation()),
        &images,
        |_| PageDevice::cold(DeviceKind::Ssd),
    )
    .expect("every shard recovers from its own cut");
    for (s, report) in reports.iter().enumerate() {
        assert_eq!(report.tail, TailState::Clean, "shard {s}");
        assert_eq!(report.base_tuples, SHARD_BASE, "shard {s}");
        let (wants_i, wants_d) = surviving[s].iter().fold((0, 0), |(i, d), &(_, r)| match r {
            WalRecord::Insert { .. } => (i + 1, d),
            WalRecord::Delete { .. } => (i, d + 1),
            WalRecord::Checkpoint { .. } => (i, d),
        });
        assert_eq!(report.replayed_inserts, wants_i, "shard {s}");
        assert_eq!(report.replayed_deletes, wants_d, "shard {s}");
    }

    // The oracle: a fresh fleet over the base heap prefix with each
    // shard's surviving records routed in directly — never from log
    // bytes.
    let base_rel = Relation::new(
        rel.heap().truncated(SHARD_BASE),
        rel.attr(),
        rel.duplicates(),
    )
    .expect("base prefix is a valid relation");
    let mut oracle = ShardedIndex::new(
        ShardPlan::uniform(SHARD_DOMAIN, 3),
        &base_rel,
        config(),
        sharded_factory(&sharded_relation()),
        |_| PageDevice::cold(DeviceKind::Ssd),
    );
    oracle.build(&base_rel).expect("oracle build");
    for per_shard in &surviving {
        for &(_, rec) in per_shard {
            match rec {
                WalRecord::Insert { key, page, slot } => oracle
                    .route_insert(key, (page, slot as usize), &rel)
                    .expect("oracle insert"),
                WalRecord::Delete { key } => {
                    oracle.route_delete(key, &rel).expect("oracle delete");
                }
                WalRecord::Checkpoint { .. } => {}
            }
        }
    }

    let mut keys: Vec<u64> = sharded_script()
        .iter()
        .map(|r| match *r {
            WalRecord::Insert { key, .. } | WalRecord::Delete { key } => key,
            WalRecord::Checkpoint { .. } => unreachable!("script has no checkpoints"),
        })
        .collect();
    keys.extend((0..SHARD_DOMAIN).step_by(607));
    keys.push(SHARD_DOMAIN * 3);
    assert_eq!(
        sharded_probe(&recovered, &keys, &rel),
        sharded_probe(&oracle, &keys, &rel),
        "merged probe answers diverged from the direct-apply oracle",
    );
    assert_eq!(
        sharded_drain(&recovered, &rel),
        sharded_drain(&oracle, &rel),
        "merged paginated scan diverged from the direct-apply oracle",
    );
}

#[test]
fn recovery_without_a_genesis_checkpoint_is_rejected() {
    let Crashed { rel, image, .. } = run_script(&make_bf_tree);
    let (all_records, _) = WalReader::drain(&image);
    let genesis_end = all_records[0].0;
    for bad in [&image[..0], &image[..genesis_end - 1]] {
        let err = DurableIndex::recover(
            make_bf_tree(),
            &rel,
            bad,
            SimDevice::cold(DeviceKind::Ssd),
            config(),
        )
        .err()
        .expect("no genesis, no recovery");
        assert!(
            matches!(err, RecoverError::MissingGenesis),
            "unexpected error: {err}"
        );
    }
}
