//! Fault-injection battery for the file-backed page store: every way
//! the bytes can rot — a flipped bit, a truncated tail, a zeroed or
//! transplanted header — must surface as a *typed* [`DeviceError`]
//! from `read_page`, never as garbage payload. On top of that, a
//! file-backed WAL whose middle page is damaged must recover exactly
//! the longest valid prefix, and the persistent free list must
//! survive a 10 000-operation churn (and a reopen) without ever
//! double-allocating or growing while reusable slots exist.
//!
//! Corruption is injected through a second OS handle on the store
//! file while the store is open — the same aliasing a misdirected
//! write or a disk error produces. Slot offsets are computed from the
//! published layout: a page-sized superblock, then fixed-size slots
//! of [`PAGE_HEADER`] + [`PAGE_SIZE`] bytes, filled in allocation
//! order (a fresh store allocates slot `k` to the `k`-th new page).

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;
use std::path::Path;

use bftree::BfTree;
use bftree_access::{AccessMethod, DurableConfig, DurableIndex};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    Backend, DeviceError, DeviceKind, Duplicates, FileStore, HeapFile, IoContext, PageDevice,
    Relation, ScratchDir, SyncPolicy, TupleLayout, PAGE_HEADER, PAGE_SIZE,
};
use bftree_wal::{DurabilityMode, Wal, WalReader, WalRecord};

/// Byte offset of slot `slot` in a store file (superblock, then
/// fixed-size slots).
fn slot_offset(slot: u64) -> u64 {
    PAGE_SIZE as u64 + slot * (PAGE_HEADER + PAGE_SIZE) as u64
}

/// Flip/overwrite bytes in the store file through a second handle.
fn damage(path: &Path, offset: u64, patch: &[u8]) {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open store file for corruption");
    f.write_all_at(patch, offset).expect("inject fault");
}

/// A store with `n` pages written in order (page `k` in slot `k`),
/// each carrying a distinct payload.
fn store_with_pages(dir: &ScratchDir, n: u64) -> FileStore {
    let store = FileStore::create(dir.path().join("faults.bfs"), SyncPolicy::PerRequest)
        .expect("create store");
    for page in 0..n {
        let payload = vec![page as u8 ^ 0xA5; 1000 + page as usize];
        store.write_page(page, &payload).expect("seed page");
    }
    store.flush().expect("seed durable");
    store
}

#[test]
fn a_flipped_payload_bit_is_a_checksum_mismatch() {
    let dir = ScratchDir::new("fault-bitflip").unwrap();
    let store = store_with_pages(&dir, 4);
    damage(
        store.path(),
        slot_offset(2) + PAGE_HEADER as u64 + 17,
        &[0x01],
    );
    let err = store.read_page(2).expect_err("flipped bit must not verify");
    match err {
        DeviceError::ChecksumMismatch {
            page,
            expected,
            actual,
        } => {
            assert_eq!(page, 2);
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other}"),
    }
    // The damage is contained: neighbours still verify.
    assert_eq!(store.read_page(1).unwrap(), vec![1 ^ 0xA5; 1001]);
    assert_eq!(store.read_page(3).unwrap(), vec![3 ^ 0xA5; 1003]);
}

#[test]
fn a_truncated_tail_is_a_short_read() {
    let dir = ScratchDir::new("fault-truncate").unwrap();
    let store = store_with_pages(&dir, 3);
    // Cut the file mid-payload of the last slot: the classic torn
    // write, where the header landed but the payload did not.
    let f = OpenOptions::new().write(true).open(store.path()).unwrap();
    f.set_len(slot_offset(2) + PAGE_HEADER as u64 + 100)
        .unwrap();
    let err = store.read_page(2).expect_err("torn page must not verify");
    match err {
        DeviceError::ShortRead { page, wanted, got } => {
            assert_eq!(page, 2);
            assert_eq!(wanted, PAGE_HEADER + 1002);
            assert_eq!(got, PAGE_HEADER + 100);
        }
        other => panic!("expected ShortRead, got {other}"),
    }
    assert_eq!(store.read_page(0).unwrap(), vec![0xA5; 1000]);
}

#[test]
fn a_zeroed_header_is_a_bad_header() {
    let dir = ScratchDir::new("fault-zero").unwrap();
    let store = store_with_pages(&dir, 3);
    damage(store.path(), slot_offset(1), &[0u8; PAGE_HEADER]);
    let err = store
        .read_page(1)
        .expect_err("zeroed header must not parse");
    assert!(
        matches!(err, DeviceError::BadHeader { page: 1, .. }),
        "expected BadHeader, got {err}"
    );
}

#[test]
fn a_transplanted_header_names_the_wrong_page() {
    let dir = ScratchDir::new("fault-transplant").unwrap();
    let store = store_with_pages(&dir, 3);
    // Copy page 0's (valid!) header over page 2's slot: magic and CRC
    // both parse, but the slot now claims to hold a different page.
    let f = OpenOptions::new().read(true).open(store.path()).unwrap();
    let mut header = [0u8; PAGE_HEADER];
    f.read_exact_at(&mut header, slot_offset(0)).unwrap();
    damage(store.path(), slot_offset(2), &header);
    let err = store.read_page(2).expect_err("transplant must not verify");
    assert!(
        matches!(err, DeviceError::BadHeader { page: 2, .. }),
        "expected BadHeader, got {err}"
    );
}

#[test]
fn garbage_at_the_front_is_a_bad_superblock() {
    let dir = ScratchDir::new("fault-super").unwrap();
    let path = dir.path().join("faults.bfs");
    {
        let store = FileStore::create(&path, SyncPolicy::PerRequest).unwrap();
        store.write_page(0, b"payload").unwrap();
        store.flush().unwrap();
    }
    damage(&path, 0, &[0xFFu8; 8]);
    let err = FileStore::open(&path, SyncPolicy::PerRequest)
        .expect_err("corrupt superblock must not open");
    assert!(
        matches!(err, DeviceError::BadSuperblock { .. }),
        "expected BadSuperblock, got {err}"
    );
}

// ---------------------------------------------------------------------------
// WAL prefix truncation on a damaged file-backed log
// ---------------------------------------------------------------------------

fn base_relation(n: u64) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..n {
        heap.append_record(pk, pk);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout")
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        flush_batch: 64,
        durability: DurabilityMode::GroupCommit {
            max_records: 4,
            max_bytes: 4 * 1024,
        },
    }
}

/// Damage a middle page of a file-backed WAL and demand that
/// recovery sees exactly the pages before the damage: the longest
/// valid prefix, cut at the corrupt page, replayed record for record.
#[test]
fn recovery_over_a_damaged_file_log_truncates_to_the_longest_valid_prefix() {
    const N: u64 = 500;
    const FRESH: u64 = 10_000;
    const INSERTS: u64 = 600;
    let dir = ScratchDir::new("fault-wal").unwrap();
    let backend = Backend::file(dir.path());
    let log = backend.device(DeviceKind::Ssd, "wal").expect("file log");

    let mut rel = base_relation(N);
    let inner = BfTree::builder()
        .fpp(1e-4)
        .empty(&rel)
        .expect("valid config");
    let mut index = DurableIndex::new(inner, &rel, log.clone(), durable_config());
    let io = IoContext::unmetered();
    for i in 0..INSERTS {
        let key = FRESH + i;
        let loc = rel.append_tuple(key, key, &io);
        index.insert(key, loc, &rel).expect("scripted insert");
    }

    // The on-disk image is the durable prefix: it parses cleanly and
    // is a byte prefix of the in-memory log.
    let disk = Wal::load_image(&log).expect("file-backed log has an image");
    assert_eq!(&disk[..], &index.wal().bytes()[..disk.len()]);
    let pages = disk.len() / PAGE_SIZE;
    assert!(pages >= 3, "log too small to damage a middle page");

    // Flip a byte in a middle log page (wal pages fill slots in
    // order, so page id == slot).
    let mid = (pages / 2) as u64;
    let store = log.file().expect("file-backed").store();
    damage(
        store.path(),
        slot_offset(mid) + PAGE_HEADER as u64 + 33,
        &[0x80],
    );
    assert!(
        matches!(
            store.read_page(mid),
            Err(DeviceError::ChecksumMismatch { .. })
        ),
        "damaged log page must fail verification"
    );

    // load_image stops at the damage: exactly the prefix before it.
    let surviving = Wal::load_image(&log).expect("prefix still loads");
    assert_eq!(surviving.len(), mid as usize * PAGE_SIZE);
    assert_eq!(&surviving[..], &disk[..surviving.len()]);

    // Recovery over the surviving prefix replays exactly its records.
    let (records, _) = WalReader::drain(&surviving);
    let prefix_inserts: Vec<u64> = records
        .iter()
        .filter_map(|&(_, r)| match r {
            WalRecord::Insert { key, .. } => Some(key),
            _ => None,
        })
        .collect();
    assert!(
        !prefix_inserts.is_empty() && prefix_inserts.len() < INSERTS as usize,
        "damage must cut the log strictly inside the insert stream"
    );
    let fresh_inner = BfTree::builder()
        .fpp(1e-4)
        .empty(&rel)
        .expect("valid config");
    let (recovered, report) = DurableIndex::recover(
        fresh_inner,
        &rel,
        &surviving,
        PageDevice::cold(DeviceKind::Ssd),
        durable_config(),
    )
    .expect("prefix recovers");
    assert_eq!(report.base_tuples, N);
    assert_eq!(report.replayed_inserts, prefix_inserts.len() as u64);
    let check = IoContext::unmetered();
    for &k in &prefix_inserts {
        assert!(
            recovered.probe(k, &rel, &check).unwrap().found(),
            "surviving insert {k} lost"
        );
    }
    let lost = FRESH + INSERTS - 1;
    assert!(
        !recovered.probe(lost, &rel, &check).unwrap().found(),
        "insert {lost} was past the damage and must not resurface"
    );
}

// ---------------------------------------------------------------------------
// Free-list property test: seeded alloc/free/realloc churn
// ---------------------------------------------------------------------------

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn tagged_payload(page: u64, version: u64) -> Vec<u8> {
    let mut p = page.to_le_bytes().to_vec();
    p.extend_from_slice(&version.to_le_bytes());
    p.resize(16 + (page as usize % 200), 0xEE);
    p
}

/// 10 000 seeded alloc/free/rewrite operations against one store:
/// an allocation never returns a live page id, a freed slot is always
/// reused before the file grows, every live page reads back its last
/// payload, and the whole allocation state survives a drop + reopen.
#[test]
fn free_list_survives_ten_thousand_churn_operations_and_a_reopen() {
    const OPS: u64 = 10_000;
    let dir = ScratchDir::new("freelist-churn").unwrap();
    let path = dir.path().join("churn.bfs");
    let mut store = FileStore::create(&path, SyncPolicy::Deferred).expect("create store");
    let mut rng = 0x5EED_CAFE_u64;
    // page id -> payload version currently on disk.
    let mut live: HashMap<u64, u64> = HashMap::new();
    let mut order: Vec<u64> = Vec::new(); // live ids, for O(1) random pick
    let mut total_allocs = 0u64;

    for i in 0..OPS {
        // Halfway through, simulate a process restart.
        if i == OPS / 2 {
            let (slots, frees) = (store.slot_count(), store.free_slots());
            drop(store);
            store = FileStore::open(&path, SyncPolicy::Deferred).expect("reopen store");
            assert_eq!(store.slot_count(), slots, "slot count lost on reopen");
            assert_eq!(store.free_slots(), frees, "free list lost on reopen");
            assert_eq!(store.live_pages(), live.len() as u64);
        }
        match xorshift(&mut rng) % 10 {
            // Allocate (and write) a fresh page.
            0..=4 => {
                let (slots_before, frees_before) = (store.slot_count(), store.free_slots());
                let page = store.alloc().expect("alloc");
                assert!(
                    !live.contains_key(&page),
                    "op {i}: alloc returned live page {page}"
                );
                if frees_before > 0 {
                    assert_eq!(
                        store.slot_count(),
                        slots_before,
                        "op {i}: grew the file while {frees_before} slots were free"
                    );
                    assert_eq!(store.free_slots(), frees_before - 1);
                } else {
                    assert_eq!(store.slot_count(), slots_before + 1);
                }
                store.write_page(page, &tagged_payload(page, i)).unwrap();
                live.insert(page, i);
                order.push(page);
                total_allocs += 1;
            }
            // Free a random live page.
            5..=7 if !order.is_empty() => {
                let victim = order.swap_remove((xorshift(&mut rng) % order.len() as u64) as usize);
                live.remove(&victim);
                let frees_before = store.free_slots();
                store.free(victim).expect("free live page");
                assert_eq!(store.free_slots(), frees_before + 1);
                assert!(
                    matches!(
                        store.read_page(victim),
                        Err(DeviceError::UnknownPage { .. })
                    ),
                    "op {i}: freed page {victim} still resolves"
                );
            }
            // Rewrite a random live page (slot reuse in place).
            _ if !order.is_empty() => {
                let page = order[(xorshift(&mut rng) % order.len() as u64) as usize];
                let slots_before = store.slot_count();
                store.write_page(page, &tagged_payload(page, i)).unwrap();
                assert_eq!(store.slot_count(), slots_before, "rewrite must not grow");
                live.insert(page, i);
            }
            _ => {}
        }
        // Periodic full audit (every op would be quadratic).
        if i % 1000 == 999 {
            assert_eq!(store.live_pages(), live.len() as u64);
            assert_eq!(
                store.slot_count(),
                store.live_pages() + store.free_slots(),
                "op {i}: slots leaked"
            );
        }
    }

    // Final audit: every live page holds its last payload, both
    // before and after one more drop + reopen.
    for pass in 0..2 {
        assert_eq!(store.live_pages(), live.len() as u64, "pass {pass}");
        assert_eq!(store.slot_count(), store.live_pages() + store.free_slots());
        for (&page, &version) in &live {
            assert_eq!(
                store.read_page(page).unwrap(),
                tagged_payload(page, version),
                "pass {pass}: page {page} lost its last write"
            );
        }
        if pass == 0 {
            drop(store);
            store = FileStore::open(&path, SyncPolicy::Deferred).expect("final reopen");
        }
    }

    // The churn exercised what it claims: slots were recycled, so
    // the file holds far fewer slots than allocations made.
    assert!(
        store.slot_count() < total_allocs,
        "{} slots for {total_allocs} allocations — the free list never recycled",
        store.slot_count()
    );
}
