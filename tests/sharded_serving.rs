//! End-to-end pagination contract for the sharded serving layer: a
//! client walking a range page by page through the loopback server —
//! opaque continuation tokens and all — must see exactly the one-shot
//! answer, in order, for every page size around the shard-slice size
//! (1, slice−1, slice, slice+1), across at least three shard
//! boundaries; and a token minted under one partition layout must be
//! rejected, typed, by a server with another.

use bftree::BfTree;
use bftree_access::{AccessMethod, DurableConfig};
use bftree_net::server::ServeState;
use bftree_net::{Client, NetError, RemoteError, Server};
use bftree_shard::{ShardPlan, ShardedIndex};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    DeviceKind, Duplicates, HeapFile, IoContext, PageDevice, Relation, TupleLayout,
};
use bftree_wal::DurabilityMode;

/// Dense keys 0..N over 4 uniform shards: each shard owns SLICE keys,
/// and a full-range scan crosses the 3 interior boundaries.
const N: u64 = 400;
const SLICE: u64 = 100;

fn serve_state(shards: usize) -> ServeState {
    let mut heap = HeapFile::new(TupleLayout::new(128));
    for pk in 0..N {
        heap.append_record(pk, pk * 7);
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout");
    let mut index = ShardedIndex::new(
        ShardPlan::uniform(N, shards),
        &rel,
        DurableConfig {
            flush_batch: 8,
            durability: DurabilityMode::GroupCommit {
                max_records: 4,
                max_bytes: 4 * 1024,
            },
        },
        |_| {
            Box::new(
                BfTree::builder()
                    .fpp(1e-4)
                    .empty(&rel)
                    .expect("valid config"),
            )
        },
        |_| PageDevice::cold(DeviceKind::Ssd),
    );
    index.build(&rel).expect("sharded build");
    let ios = (0..shards).map(|_| IoContext::unmetered()).collect();
    ServeState::new(index, rel, ios)
}

/// Walk `[lo, hi]` through the wire at `limit` per page; return the
/// concatenated matches in arrival order plus the page count.
fn paginate(client: &mut Client, lo: u64, hi: u64, limit: u64) -> (Vec<(u64, u64)>, usize) {
    let mut all = Vec::new();
    let mut pages = 0usize;
    let mut token: Option<Vec<u8>> = None;
    loop {
        let (page, next) = client
            .range_page(lo, hi, limit, token.as_deref())
            .expect("range page");
        assert!(
            page.len() as u64 <= limit,
            "a page must never exceed its limit"
        );
        pages += 1;
        all.extend(page);
        match next {
            Some(t) => token = Some(t),
            None => break,
        }
        assert!(
            pages as u64 <= 2 * (hi - lo + 1) + 8,
            "pagination must terminate"
        );
    }
    (all, pages)
}

#[test]
fn every_page_size_around_the_shard_slice_paginates_losslessly() {
    let mut server = Server::spawn(serve_state(4)).expect("server up");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Two ranges, both crossing all 3 interior boundaries: the full
    // domain (pages align with shard edges at limit == SLICE) and an
    // offset window (every page straddles an edge off-phase).
    for (lo, hi) in [(0, N - 1), (50, 349)] {
        // The one-shot answer is the oracle: a single page big enough
        // to hold the whole range.
        let (oracle, one) = paginate(&mut client, lo, hi, hi - lo + 2);
        assert_eq!(one, 1, "the oracle fits in a single page");
        assert_eq!(oracle.len() as u64, hi - lo + 1, "dense range, unique keys");

        for limit in [1, SLICE - 1, SLICE, SLICE + 1] {
            let (walked, pages) = paginate(&mut client, lo, hi, limit);
            assert_eq!(
                walked, oracle,
                "[{lo}, {hi}] at limit {limit}: paginated matches must \
                 equal the one-shot answer, in order — nothing lost, \
                 nothing redelivered",
            );
            assert!(
                pages as u64 >= (hi - lo + 1).div_ceil(limit),
                "[{lo}, {hi}] at limit {limit}: too few pages for the limit",
            );
        }
    }
    server.shutdown();
}

#[test]
fn a_token_minted_under_another_layout_is_rejected_typed() {
    let mut four = Server::spawn(serve_state(4)).expect("4-shard server");
    let mut two = Server::spawn(serve_state(2)).expect("2-shard server");
    let mut c4 = Client::connect(four.addr()).expect("connect 4");
    let mut c2 = Client::connect(two.addr()).expect("connect 2");

    let (_, token) = c4
        .range_page(0, N - 1, 5, None)
        .expect("first page mints a continuation");
    let token = token.expect("mid-scan token");
    match c2.range_page(0, N - 1, 5, Some(&token)) {
        Err(NetError::Remote(RemoteError::LayoutMismatch {
            expected_shards: 2,
            got_shards: 4,
        })) => {}
        other => panic!("expected a typed LayoutMismatch, got {other:?}"),
    }
    // The token is still good where it was minted: the scan resumes.
    let (rest, _) = paginate_from(&mut c4, token);
    assert_eq!(rest.len() as u64, N - 5, "the 4-shard scan finishes");

    four.shutdown();
    two.shutdown();
}

/// Resume a full-domain scan from an existing token and drain it.
fn paginate_from(client: &mut Client, token: Vec<u8>) -> (Vec<(u64, u64)>, usize) {
    let mut all = Vec::new();
    let mut pages = 0usize;
    let mut token = Some(token);
    while let Some(t) = token {
        let (page, next) = client
            .range_page(0, N - 1, 64, Some(&t))
            .expect("resumed page");
        pages += 1;
        all.extend(page);
        token = next;
    }
    (all, pages)
}
