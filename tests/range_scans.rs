//! Integration: range scans (§7, Figure 13) checked for completeness
//! against brute force, for both scan modes and both duplicate
//! handlings.

use bftree::scan::exact_range_pages;
use bftree::{AccessMethod, BfTree, DuplicateHandling, ProbeError};
use bftree_storage::tuple::{AttrOffset, ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation};
use bftree_workloads::{build_relation_r, SyntheticConfig};

fn heap() -> HeapFile {
    build_relation_r(&SyntheticConfig {
        n_tuples: 25_000,
        ..SyntheticConfig::scaled_mb(8)
    })
}

fn pk_relation() -> Relation {
    Relation::new(heap(), PK_OFFSET, Duplicates::Unique).unwrap()
}

fn brute(heap: &HeapFile, attr: AttrOffset, lo: u64, hi: u64) -> Vec<(u64, usize)> {
    heap.iter_attr(attr)
        .filter(|&(_, _, v)| v >= lo && v <= hi)
        .map(|(pid, slot, _)| (pid, slot))
        .collect()
}

#[test]
fn plain_scan_is_complete() {
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    for (lo, hi) in [
        (0u64, 100u64),
        (5_000, 7_500),
        (24_900, 30_000),
        (12_345, 12_345),
    ] {
        let r = AccessMethod::range_scan(&tree, lo, hi, &rel, &io).unwrap();
        assert_eq!(
            r.matches,
            brute(rel.heap(), PK_OFFSET, lo, hi),
            "range [{lo}, {hi}]"
        );
    }
}

#[test]
fn probing_scan_is_complete_for_both_duplicate_modes() {
    let rel = Relation::new(heap(), ATT1_OFFSET, Duplicates::Contiguous).unwrap();
    let io = IoContext::unmetered();
    for duplicates in [
        DuplicateHandling::AllCoveringPages,
        DuplicateHandling::FirstPageOnly,
    ] {
        let tree = BfTree::builder()
            .fpp(1e-6)
            .duplicates(duplicates)
            .build(&rel)
            .unwrap();
        for (lo, hi) in [(10u64, 300u64), (5_000, 5_800), (0, 50)] {
            let mut got = tree.scan_range_probing(lo, hi, &rel, &io, 1 << 22).matches;
            got.sort_unstable();
            assert_eq!(
                got,
                brute(rel.heap(), ATT1_OFFSET, lo, hi),
                "range [{lo}, {hi}] under {duplicates:?}"
            );
        }
    }
}

#[test]
fn probing_scan_reads_fewer_boundary_pages_at_tight_fpp() {
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().fpp(1e-9).build(&rel).unwrap();
    // A 1% range: boundary overhead dominates the plain scan.
    let (lo, hi) = (10_000u64, 10_250u64);
    let plain = AccessMethod::range_scan(&tree, lo, hi, &rel, &io).unwrap();
    let probing = tree.scan_range_probing(lo, hi, &rel, &io, 1 << 22);
    assert_eq!(plain.matches, probing.matches);
    assert!(
        probing.pages_read <= plain.pages_read,
        "probing {} vs plain {}",
        probing.pages_read,
        plain.pages_read
    );
    // Figure 13's tight-fpp claim: overhead within 20% of the exact
    // B+-Tree page count.
    let exact = exact_range_pages(rel.heap(), PK_OFFSET, lo, hi);
    assert!(
        (probing.pages_read as f64) <= exact as f64 * 1.2,
        "probing {} vs exact {}",
        probing.pages_read,
        exact
    );
}

#[test]
fn empty_and_inverted_ranges() {
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().build(&rel).unwrap();
    // A range entirely past the data: no matches, bounded I/O.
    let r = AccessMethod::range_scan(&tree, 1 << 40, (1 << 40) + 10, &rel, &io).unwrap();
    assert!(r.matches.is_empty());
}

#[test]
fn inverted_range_is_a_typed_error() {
    let rel = pk_relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().build(&rel).unwrap();
    let err = AccessMethod::range_scan(&tree, 10, 5, &rel, &io).unwrap_err();
    assert_eq!(err, ProbeError::InvertedRange { lo: 10, hi: 5 });
}
