//! Integration: range scans (§7, Figure 13) checked for completeness
//! against brute force, for both scan modes and both duplicate
//! handlings.

use bftree::scan::exact_range_pages;
use bftree::{BfTree, BfTreeConfig, DuplicateHandling};
use bftree_storage::tuple::{AttrOffset, ATT1_OFFSET, PK_OFFSET};
use bftree_storage::HeapFile;
use bftree_workloads::{build_relation_r, SyntheticConfig};

fn heap() -> HeapFile {
    build_relation_r(&SyntheticConfig { n_tuples: 25_000, ..SyntheticConfig::scaled_mb(8) })
}

fn brute(heap: &HeapFile, attr: AttrOffset, lo: u64, hi: u64) -> Vec<(u64, usize)> {
    heap.iter_attr(attr)
        .filter(|&(_, _, v)| v >= lo && v <= hi)
        .map(|(pid, slot, _)| (pid, slot))
        .collect()
}

#[test]
fn plain_scan_is_complete() {
    let heap = heap();
    let tree = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::ordered_default() },
        &heap,
        PK_OFFSET,
    );
    for (lo, hi) in [(0u64, 100u64), (5_000, 7_500), (24_900, 30_000), (12_345, 12_345)] {
        let r = tree.range_scan(lo, hi, &heap, PK_OFFSET, None, None);
        assert_eq!(r.matches, brute(&heap, PK_OFFSET, lo, hi), "range [{lo}, {hi}]");
    }
}

#[test]
fn probing_scan_is_complete_for_both_duplicate_modes() {
    let heap = heap();
    for duplicates in [DuplicateHandling::AllCoveringPages, DuplicateHandling::FirstPageOnly] {
        let tree = BfTree::bulk_build(
            BfTreeConfig { fpp: 1e-6, duplicates, ..BfTreeConfig::paper_default() },
            &heap,
            ATT1_OFFSET,
        );
        for (lo, hi) in [(10u64, 300u64), (5_000, 5_800), (0, 50)] {
            let mut got =
                tree.range_scan_probing(lo, hi, &heap, ATT1_OFFSET, None, None, 1 << 22).matches;
            got.sort_unstable();
            assert_eq!(
                got,
                brute(&heap, ATT1_OFFSET, lo, hi),
                "range [{lo}, {hi}] under {duplicates:?}"
            );
        }
    }
}

#[test]
fn probing_scan_reads_fewer_boundary_pages_at_tight_fpp() {
    let heap = heap();
    let tree = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-9, ..BfTreeConfig::ordered_default() },
        &heap,
        PK_OFFSET,
    );
    // A 1% range: boundary overhead dominates the plain scan.
    let (lo, hi) = (10_000u64, 10_250u64);
    let plain = tree.range_scan(lo, hi, &heap, PK_OFFSET, None, None);
    let probing = tree.range_scan_probing(lo, hi, &heap, PK_OFFSET, None, None, 1 << 22);
    assert_eq!(plain.matches, probing.matches);
    assert!(
        probing.pages_read <= plain.pages_read,
        "probing {} vs plain {}",
        probing.pages_read,
        plain.pages_read
    );
    // Figure 13's tight-fpp claim: overhead within 20% of the exact
    // B+-Tree page count.
    let exact = exact_range_pages(&heap, PK_OFFSET, lo, hi);
    assert!(
        (probing.pages_read as f64) <= exact as f64 * 1.2,
        "probing {} vs exact {}",
        probing.pages_read,
        exact
    );
}

#[test]
fn empty_and_inverted_ranges() {
    let heap = heap();
    let tree = BfTree::bulk_build(BfTreeConfig::ordered_default(), &heap, PK_OFFSET);
    // A range entirely past the data: no matches, bounded I/O.
    let r = tree.range_scan(1 << 40, (1 << 40) + 10, &heap, PK_OFFSET, None, None);
    assert!(r.matches.is_empty());
}

#[test]
#[should_panic]
fn inverted_range_panics() {
    let heap = heap();
    let tree = BfTree::bulk_build(BfTreeConfig::ordered_default(), &heap, PK_OFFSET);
    tree.range_scan(10, 5, &heap, PK_OFFSET, None, None);
}
