//! Cross-crate integration: build each paper workload with
//! `bftree-workloads`, index it with every competitor, and check they
//! agree — the BF-Tree may read extra pages (false positives) but must
//! never miss a present tuple (Bloom filters have no false negatives).

use bftree::{AccessMethod, BfTree, BfTreeConfig};
use bftree_bloom::math;
use bftree_storage::tuple::{AttrOffset, ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation};
use bftree_workloads::shd::{self, ShdConfig};
use bftree_workloads::synthetic::{att1_domain, build_relation_r};
use bftree_workloads::tpch::{self, TpchConfig};
use bftree_workloads::SyntheticConfig;

fn brute_force(heap: &HeapFile, attr: AttrOffset, key: u64) -> Vec<(u64, usize)> {
    heap.iter_attr(attr)
        .filter(|&(_, _, v)| v == key)
        .map(|(pid, slot, _)| (pid, slot))
        .collect()
}

fn check_complete(rel: &Relation, tree: &BfTree, keys: &[u64]) {
    let io = IoContext::unmetered();
    for &key in keys {
        let expect = brute_force(rel.heap(), rel.attr(), key);
        let mut got = AccessMethod::probe(tree, key, rel, &io).unwrap().matches;
        got.sort_unstable();
        assert_eq!(got, expect, "probe({key}) disagrees with a full scan");
    }
}

#[test]
fn synthetic_pk_probes_are_exact_across_fpps() {
    let config = SyntheticConfig {
        n_tuples: 30_000,
        ..SyntheticConfig::scaled_mb(8)
    };
    let rel = Relation::new(build_relation_r(&config), PK_OFFSET, Duplicates::Unique).unwrap();
    let keys: Vec<u64> = (0..200u64).map(|i| i * 149 % 30_000).collect();
    for fpp in [0.1, 1e-3, 1e-8] {
        let tree = BfTree::builder().fpp(fpp).build(&rel).unwrap();
        tree.check_invariants();
        check_complete(&rel, &tree, &keys);
    }
}

#[test]
fn synthetic_att1_probes_find_every_duplicate() {
    let config = SyntheticConfig {
        n_tuples: 20_000,
        ..SyntheticConfig::scaled_mb(8)
    };
    let rel = Relation::new(
        build_relation_r(&config),
        ATT1_OFFSET,
        Duplicates::Contiguous,
    )
    .unwrap();
    let domain = att1_domain(rel.heap());
    let keys: Vec<u64> = domain.iter().copied().step_by(13).take(150).collect();
    for duplicates in [
        bftree::DuplicateHandling::AllCoveringPages,
        bftree::DuplicateHandling::FirstPageOnly,
    ] {
        let tree = BfTree::builder()
            .fpp(1e-4)
            .duplicates(duplicates)
            .build(&rel)
            .unwrap();
        check_complete(&rel, &tree, &keys);
    }
}

#[test]
fn misses_never_match() {
    let config = SyntheticConfig {
        n_tuples: 20_000,
        ..SyntheticConfig::scaled_mb(8)
    };
    let rel = Relation::new(build_relation_r(&config), PK_OFFSET, Duplicates::Unique).unwrap();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().build(&rel).unwrap();
    for key in [20_000u64, 1 << 40, u64::MAX] {
        let r = AccessMethod::probe(&tree, key, &rel, &io).unwrap();
        assert!(!r.found(), "absent key {key} reported found");
    }
}

#[test]
fn tpch_shipdate_index_is_exact() {
    let config = TpchConfig::scaled(0.005);
    let heap = tpch::build_heap_by_shipdate(&config);
    let rows = tpch::generate_lineitem_dates(&config);
    let domain = tpch::shipdate_domain(&rows);
    let rel = Relation::new(heap, tpch::SHIPDATE, Duplicates::Contiguous).unwrap();
    let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    let keys: Vec<u64> = domain.iter().copied().step_by(37).collect();
    check_complete(&rel, &tree, &keys);
    // Dates past the window must miss.
    let future = domain.last().unwrap() + 100;
    let io = IoContext::unmetered();
    assert!(!AccessMethod::probe(&tree, future, &rel, &io)
        .unwrap()
        .found());
}

#[test]
fn shd_timestamp_index_is_exact_under_variable_cardinality() {
    let config = ShdConfig::paper_like(300);
    let heap = shd::build_heap(&config);
    let rows = shd::generate_readings(&config);
    let domain = shd::timestamp_domain(&rows);
    let rel = Relation::new(heap, shd::TIMESTAMP, Duplicates::Contiguous).unwrap();
    let tree = BfTree::builder().fpp(1e-3).build(&rel).unwrap();
    let keys: Vec<u64> = domain.iter().copied().step_by(11).collect();
    check_complete(&rel, &tree, &keys);
}

#[test]
fn index_size_tracks_equation_10() {
    // The built tree's leaf count must match Equation 6 within the
    // page-alignment slack of bulk loading.
    let config = SyntheticConfig {
        n_tuples: 100_000,
        ..SyntheticConfig::scaled_mb(32)
    };
    let heap = build_relation_r(&config);
    for fpp in [1e-2, 1e-4, 1e-8] {
        let tree = BfTree::bulk_build(
            BfTreeConfig {
                fpp,
                ..BfTreeConfig::ordered_default()
            },
            &heap,
            PK_OFFSET,
        );
        let keys_per_leaf = math::capacity_for(4096 * 8, fpp);
        let expect = 100_000u64.div_ceil(keys_per_leaf);
        let got = tree.leaf_pages();
        assert!(
            got >= expect && got <= expect + expect / 4 + 2,
            "fpp {fpp}: {got} leaves vs Eq-6's {expect}"
        );
    }
}

#[test]
fn probe_charges_devices_consistently() {
    use bftree_storage::{DeviceKind, SimDevice};
    let config = SyntheticConfig {
        n_tuples: 20_000,
        ..SyntheticConfig::scaled_mb(8)
    };
    let rel = Relation::new(build_relation_r(&config), PK_OFFSET, Duplicates::Unique).unwrap();
    let tree = BfTree::builder().fpp(1e-6).build(&rel).unwrap();
    let io = IoContext::new(
        SimDevice::cold(DeviceKind::Ssd),
        SimDevice::cold(DeviceKind::Hdd),
    );
    let r = AccessMethod::probe_first(&tree, 9_999, &rel, &io).unwrap();
    assert!(r.found());
    // Index descent: height reads (internal levels + the BF-leaf).
    assert_eq!(io.index.snapshot().device_reads(), tree.height() as u64);
    // Data: exactly the pages the probe reports.
    assert_eq!(io.data.snapshot().device_reads(), r.pages_read);
}
