//! Integration: the dynamic side of the BF-Tree — Algorithm 3 inserts,
//! Algorithm 2 splits (both strategies), deletes, and leaf rebuilds —
//! checked against brute-force scans of the heap.

use bftree::{AccessMethod, BfTree, BfTreeConfig, SplitStrategy};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, TupleLayout};

fn grow_relation(n: u64) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..n {
        heap.append_record(pk, pk);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap()
}

fn finds(tree: &BfTree, key: u64, rel: &Relation) -> bool {
    AccessMethod::probe_first(tree, key, rel, &IoContext::unmetered())
        .unwrap()
        .found()
}

/// Insert-driven construction must agree with bulk loading on every
/// probe (sizes may differ — incremental trees split at the midpoint,
/// bulk trees pack).
#[test]
fn incremental_build_matches_bulk_probes() {
    let n = 20_000u64;
    let rel = grow_relation(n);
    let config = BfTreeConfig {
        fpp: 1e-3,
        ..BfTreeConfig::ordered_default()
    };

    let mut incremental = BfTree::new(config);
    for (pid, slot, key) in rel.heap().iter_attr(PK_OFFSET) {
        AccessMethod::insert(&mut incremental, key, (pid, slot), &rel).unwrap();
    }
    incremental.check_invariants();

    let bulk = BfTree::builder().config(config).build(&rel).unwrap();
    for key in (0..n).step_by(97) {
        let a = finds(&incremental, key, &rel);
        let b = finds(&bulk, key, &rel);
        assert_eq!(a, b, "key {key}");
        assert!(a, "key {key} lost by incremental build");
    }
}

/// Splits must fire as the tree grows: the leaf count increases and
/// every key stays reachable.
#[test]
fn splits_fire_and_preserve_keys() {
    let n = 30_000u64;
    let rel = grow_relation(n);
    let config = BfTreeConfig {
        fpp: 1e-6,
        ..BfTreeConfig::ordered_default()
    };
    let mut tree = BfTree::new(config);
    let mut leaf_counts = vec![tree.leaf_pages()];
    for (pid, slot, key) in rel.heap().iter_attr(PK_OFFSET) {
        AccessMethod::insert(&mut tree, key, (pid, slot), &rel).unwrap();
        if key % 5_000 == 4_999 {
            leaf_counts.push(tree.leaf_pages());
        }
    }
    assert!(
        leaf_counts.last().unwrap() > &leaf_counts[0],
        "no split ever fired: {leaf_counts:?}"
    );
    tree.check_invariants();
    for key in (0..n).step_by(61) {
        assert!(finds(&tree, key, &rel), "key {key} lost after splits");
    }
}

/// The two split strategies must agree on probe outcomes for an
/// enumerable key domain (ProbeDomain inherits old false positives but
/// can never lose a key).
#[test]
fn split_strategies_agree_on_enumerable_domains() {
    let n = 8_000u64;
    let rel = grow_relation(n);
    let mut trees: Vec<BfTree> = [SplitStrategy::RebuildFromData, SplitStrategy::ProbeDomain]
        .into_iter()
        .map(|split| {
            BfTree::new(BfTreeConfig {
                fpp: 1e-3,
                split,
                ..BfTreeConfig::ordered_default()
            })
        })
        .collect();
    for (pid, slot, key) in rel.heap().iter_attr(PK_OFFSET) {
        for tree in &mut trees {
            AccessMethod::insert(tree, key, (pid, slot), &rel).unwrap();
        }
    }
    for tree in &trees {
        tree.check_invariants();
        for key in (0..n).step_by(41) {
            assert!(finds(tree, key, &rel));
        }
    }
}

/// Deletes tombstone keys (probes treat their pages as false reads)
/// and rebuilds purge the tombstones.
#[test]
fn delete_then_rebuild() {
    let n = 5_000u64;
    let rel = grow_relation(n);
    let io = IoContext::unmetered();
    let mut tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();

    assert!(finds(&tree, 1_234, &rel));
    assert!(AccessMethod::delete(&mut tree, 1_234, &rel).unwrap() > 0);
    let r = AccessMethod::probe_first(&tree, 1_234, &rel, &io).unwrap();
    assert!(!r.found(), "deleted key still found");
    assert!(
        r.false_reads > 0,
        "the tombstoned page counts as a false read"
    );

    // Rebuild every leaf: tombstones purged, probes stay correct.
    for idx in 0..tree.leaf_pages() as u32 {
        tree.rebuild_leaf(idx, rel.heap(), PK_OFFSET);
    }
    tree.check_invariants();
    assert!(!finds(&tree, 1_234, &rel));
    assert!(finds(&tree, 1_233, &rel));
}

/// §7's fpp-degradation claim, measured end to end: inserting beyond a
/// leaf's Equation-5 capacity (no split, fixed filter geometry) raises
/// its estimated fpp along Equation 14's curve.
#[test]
fn overfill_raises_current_fpp() {
    let config = BfTreeConfig {
        fpp: 1e-4,
        ..BfTreeConfig::ordered_default()
    };
    let capacity = config.max_keys_per_leaf(); // 1709 at 1e-4

    // One leaf, one filter (all keys on page 0): fill to capacity, then
    // push 100% beyond it.
    let mut leaf = bftree::BfLeaf::empty(&config, 0);
    for key in 0..capacity {
        leaf.insert(key, 0);
    }
    let at_capacity = leaf.current_fpp();
    assert!(
        at_capacity <= 1e-4 * 3.0,
        "at design capacity the leaf should sit near its target fpp, got {at_capacity}"
    );

    for key in capacity..2 * capacity {
        leaf.insert(key, 0);
    }
    let overfilled = leaf.current_fpp();
    let eq14 = bftree_model::fpp_after_inserts(at_capacity.max(1e-6), 1.0);
    assert!(
        overfilled > at_capacity * 10.0,
        "overfilled {overfilled} vs at-capacity {at_capacity}"
    );
    // Equation 14 should land within an order of magnitude of the
    // leaf's own estimate (the equation assumes k re-optimized for the
    // grown set; the leaf keeps its original k).
    assert!(
        overfilled / eq14 < 30.0 && eq14 / overfilled < 30.0,
        "measured {overfilled} vs Eq-14 {eq14}"
    );
}

/// `BfTree::insert_batch` (the memtable-flush path) must route
/// bit-identically to inserting the same sorted batch one record at a
/// time: identical structure counters and identical probe outcomes,
/// across enough volume that the floor-leaf cache is both reused and
/// invalidated by splits many times over.
#[test]
fn insert_batch_matches_serial_sorted_inserts() {
    let n = 25_000u64;
    let rel = grow_relation(n);
    let config = BfTreeConfig {
        fpp: 1e-3,
        ..BfTreeConfig::ordered_default()
    };
    let entries: Vec<(u64, (u64, usize))> = rel
        .heap()
        .iter_attr(PK_OFFSET)
        .map(|(pid, slot, key)| (key, (pid, slot)))
        .collect();

    let mut serial = BfTree::new(config);
    for &(key, loc) in &entries {
        AccessMethod::insert(&mut serial, key, loc, &rel).unwrap();
    }
    serial.check_invariants();

    let mut batched = BfTree::new(config);
    for chunk in entries.chunks(4_096) {
        AccessMethod::insert_batch(&mut batched, chunk, &rel).unwrap();
    }
    batched.check_invariants();

    assert_eq!(batched.leaf_pages(), serial.leaf_pages(), "same splits");
    assert_eq!(batched.n_keys(), serial.n_keys());
    for key in (0..n + 50).step_by(37) {
        assert_eq!(
            finds(&batched, key, &rel),
            finds(&serial, key, &rel),
            "key {key}"
        );
    }
}
