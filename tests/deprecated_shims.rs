//! The old positional probe signatures remain as `#[deprecated]`
//! shims for one migration cycle. This test pins their behaviour to
//! the new `AccessMethod` surface so downstream callers migrating
//! late see no behavioural drift.
#![allow(deprecated)]

use bftree::{AccessMethod, BfTree};
use bftree_bench::configs::DevicePair;
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, TupleLayout};

fn relation() -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..10_000u64 {
        heap.append_record(pk, pk / 11);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap()
}

#[test]
fn old_probe_signatures_match_the_trait() {
    let rel = relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().fpp(1e-3).build(&rel).unwrap();
    for key in [0u64, 42, 9_999, 123_456] {
        let old = tree.probe(key, rel.heap(), rel.attr(), None, None);
        let new = AccessMethod::probe(&tree, key, &rel, &io).unwrap();
        assert_eq!(old.matches, new.matches, "probe({key})");
        assert_eq!(old.pages_read, new.pages_read, "probe({key})");
        assert_eq!(old.false_reads, new.false_reads, "probe({key})");

        let old = tree.probe_first(key, rel.heap(), rel.attr(), None, None);
        let new = AccessMethod::probe_first(&tree, key, &rel, &io).unwrap();
        assert_eq!(old.matches, new.matches, "probe_first({key})");
    }
}

#[test]
fn old_range_scan_signature_matches_the_trait() {
    let rel = relation();
    let io = IoContext::unmetered();
    let tree = BfTree::builder().fpp(1e-4).build(&rel).unwrap();
    let old = tree.range_scan(500, 1_500, rel.heap(), rel.attr(), None, None);
    let new = AccessMethod::range_scan(&tree, 500, 1_500, &rel, &io).unwrap();
    assert_eq!(old.matches, new.matches);
    assert_eq!(old.pages_read, new.pages_read);
    assert_eq!(old.overhead_pages, new.overhead_pages);

    let probing_old =
        tree.range_scan_probing(500, 700, rel.heap(), rel.attr(), None, None, 1 << 16);
    let probing_new = tree.scan_range_probing(500, 700, &rel, &io, 1 << 16);
    assert_eq!(probing_old.matches, probing_new.matches);
}

#[test]
fn device_pair_alias_still_constructs() {
    use bftree_storage::StorageConfig;
    let pair = DevicePair::cold(StorageConfig::SsdHdd);
    pair.index.read_random(1);
    assert!(pair.sim_us() > 0.0);
}
