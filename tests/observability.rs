//! Observability conformance: recording must be a pure observer.
//!
//! The contract this suite enforces, for every index and for the
//! durable write path: arming span/counter recording changes **no
//! observable I/O** — the `IoSnapshot` of an instrumented run is
//! bit-identical to the uninstrumented run's — while the recorded
//! span tree accounts for every device read exactly once, serializes
//! to balanced Chrome-trace JSON, and the metrics registry renders
//! every family the stack registers.
//!
//! Recording is a process-wide flag, so every test that arms it
//! serializes on [`gate`] and disarms before releasing.

use std::sync::{Mutex, MutexGuard};

use bftree::BfTree;
use bftree_access::{AccessMethod, DurableConfig, DurableIndex};
use bftree_bench::{build_index, IndexKind};
use bftree_obs::{
    check_balanced, chrome_trace_json, root_device_reads, MetricsRegistry, QueryTrace,
};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    DeviceKind, Duplicates, HeapFile, IoContext, IoSnapshot, PageDevice, Relation, StorageConfig,
    TupleLayout,
};
use bftree_wal::{DurabilityMode, TailState};

const N: u64 = 4_000;

/// Serializes tests that toggle the process-wide recording flag.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn relation() -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..N {
        heap.append_record(pk, pk);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout")
}

/// Hits, misses, and out-of-domain keys in decorrelated order.
fn workload(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(2654435761).wrapping_add(0x0B5) % (N * 2))
        .collect()
}

/// The probe/batch/range mix every index runs under both recording
/// states. Returns the run's whole I/O footprint.
fn drive(index: &dyn AccessMethod, rel: &Relation) -> IoSnapshot {
    let io = IoContext::cold(StorageConfig::SsdSsd);
    let keys = workload(600);
    for &key in &keys {
        let _ = index.probe(key, rel, &io).expect("valid relation");
    }
    for chunk in keys.chunks(64) {
        index.probe_batch(chunk, rel, &io).expect("valid relation");
    }
    let _ = index
        .range_scan(N / 4, N / 2, rel, &io)
        .expect("valid range");
    io.snapshot_total()
}

/// The acceptance-criteria battery: for every index kind, the probe /
/// batch / range workload produces a bit-identical `IoSnapshot`
/// whether recording is armed or not. Instrumentation observes the
/// I/O; it must never become part of it.
#[test]
fn recording_on_and_off_produce_bit_identical_io() {
    let _gate = gate();
    let rel = relation();
    for kind in IndexKind::ALL {
        let index = build_index(kind, &rel, 1e-3);

        bftree_obs::set_recording(false);
        let off = drive(index.as_ref(), &rel);

        bftree_obs::set_recording(true);
        let on = drive(index.as_ref(), &rel);
        bftree_obs::set_recording(false);
        bftree_obs::drain_spans();

        assert_eq!(off, on, "{}: recording changed the run's I/O", kind.label());
        assert!(off.device_reads() > 0, "{}: degenerate run", kind.label());
    }
}

/// Same contract on the durable write path: WAL device counters and
/// the run's `IoSnapshot` are unchanged by recording.
#[test]
fn recording_leaves_the_durable_write_path_bit_identical() {
    let _gate = gate();
    let run = || -> (IoSnapshot, IoSnapshot, u64) {
        let mut rel = relation();
        let inner = BfTree::builder().fpp(1e-3).build(&rel).expect("valid");
        let mut index = DurableIndex::new(
            inner,
            &rel,
            PageDevice::cold(DeviceKind::Ssd),
            DurableConfig {
                flush_batch: 64,
                durability: DurabilityMode::GroupCommit {
                    max_records: 16,
                    max_bytes: 4 * 1024,
                },
            },
        );
        let io = IoContext::cold(StorageConfig::SsdSsd);
        for i in 0..500u64 {
            let key = N + i;
            let loc = rel.append_tuple(key, key, &io);
            index.insert(key, loc, &rel).expect("valid relation");
            let _ = index.probe(i * 7 % N, &rel, &io).expect("valid relation");
        }
        index.flush(&rel).expect("final drain");
        let log = index.wal().device().snapshot();
        (io.snapshot_total(), log, index.wal().record_count())
    };

    bftree_obs::set_recording(false);
    let off = run();
    bftree_obs::set_recording(true);
    let on = run();
    bftree_obs::set_recording(false);
    bftree_obs::drain_spans();

    assert_eq!(off, on, "recording changed the durable write path's I/O");
}

/// The span tree accounts for every device read exactly once (root
/// spans sum to the `IoSnapshot` total), and its Chrome-trace
/// serialization is balanced.
#[test]
fn span_tree_reconciles_with_io_and_serializes_balanced() {
    let _gate = gate();
    let rel = relation();
    let index = build_index(IndexKind::BfTree, &rel, 1e-3);

    bftree_obs::drain_spans(); // discard anything a prior test left
    bftree_obs::set_recording(true);
    let total = drive(index.as_ref(), &rel);
    bftree_obs::set_recording(false);
    let spans = bftree_obs::drain_spans();

    assert!(!spans.is_empty(), "recording produced no spans");
    assert_eq!(
        root_device_reads(&spans),
        total.device_reads(),
        "every device read must land under exactly one root span"
    );
    let trace = chrome_trace_json(&spans);
    let pairs = check_balanced(&trace).expect("trace must be balanced");
    assert_eq!(pairs, spans.len() as u64, "one B/E pair per span");
    for name in ["probe", "batch-probe", "range-page-pull"] {
        assert!(
            trace.contains(&format!("\"name\":\"{name}\"")),
            "workload must produce {name} spans"
        );
    }
}

/// A `QueryTrace` attributes exactly the bracketed work, and the
/// attribution sums across a stream of queries.
#[test]
fn query_traces_partition_the_probe_streams_reads() {
    let _gate = gate();
    let rel = relation();
    let index = build_index(IndexKind::BfTree, &rel, 1e-3);
    let io = IoContext::cold(StorageConfig::SsdSsd);

    bftree_obs::set_recording(true);
    let mut attributed = 0u64;
    for &key in &workload(400) {
        let t = QueryTrace::begin(1.0);
        let _ = index.probe(key, &rel, &io).expect("valid relation");
        attributed += t.finish().counters.device_reads;
    }
    bftree_obs::set_recording(false);
    bftree_obs::drain_spans();

    assert_eq!(
        attributed,
        io.snapshot_total().device_reads(),
        "per-query attribution must partition the stream's device reads"
    );
}

/// Every family the stack registers shows up in one registry's
/// Prometheus rendering, and the JSON snapshot agrees on the values.
#[test]
fn metrics_registry_renders_every_family() {
    let mut rel = relation();
    let inner = BfTree::builder().fpp(1e-3).build(&rel).expect("valid");
    let mut index = DurableIndex::new(
        inner,
        &rel,
        PageDevice::cold(DeviceKind::Ssd),
        DurableConfig {
            flush_batch: 8,
            durability: DurabilityMode::PerRecord,
        },
    );
    let io = IoContext::cold(StorageConfig::SsdSsd);
    for i in 0..20u64 {
        let key = N + i;
        let loc = rel.append_tuple(key, key, &io);
        index.insert(key, loc, &rel).expect("valid relation");
        let _ = index.probe(i, &rel, &io).expect("valid relation");
    }
    index.flush(&rel).expect("drain");

    let image = index.wal().bytes().to_vec();
    let (_, report) = DurableIndex::recover(
        BfTree::builder().fpp(1e-3).build(&rel).expect("valid"),
        &rel,
        &image,
        PageDevice::cold(DeviceKind::Ssd),
        index.config(),
    )
    .expect("recover from own log");
    assert_eq!(report.tail, TailState::Clean);
    assert_eq!(report.replayed_records(), 20);
    assert!(report.bytes_replayed > 0, "replay consumed log bytes");
    assert!(report.records_per_sec() > 0.0, "replay rate is a rate");

    let mut reg = MetricsRegistry::new();
    io.snapshot_total().register_metrics(&mut reg, "run");
    reg.collect_from(&index);
    reg.collect_from(&report);
    let text = reg.render_prometheus();
    for family in [
        "bftree_io_random_reads_total{device=\"run\"}",
        "bftree_wal_records_total{mode=\"per-record\"}",
        "bftree_durable_flushes_total",
        "bftree_recovery_replayed_inserts_total",
        "bftree_recovery_records_per_sec",
        "bftree_recovery_tail_clean 1",
    ] {
        assert!(
            text.contains(family),
            "missing from rendering: {family}\n{text}"
        );
    }
    assert_eq!(
        reg.value("bftree_recovery_replayed_inserts_total", &[("", ""); 0]),
        Some(20.0),
        "JSON/value view agrees with the report"
    );
    assert!(reg
        .to_json()
        .contains("bftree_recovery_bytes_replayed_total"));
}
