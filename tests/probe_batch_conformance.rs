//! Batch-vs-scalar conformance: `AccessMethod::probe_batch` must be
//! observationally identical to a loop of scalar `probe` calls — the
//! same matches for every key, and the same simulated I/O totals to
//! the read and the nanosecond — for every index, every batch size,
//! both filter layouts, and under concurrent batch service. Batching
//! is a CPU/cache optimization, never a change of the cost model;
//! this suite is the contract's enforcement.

use bftree::{BfTree, FilterLayout};
use bftree_access::{AccessMethod, ConcurrentIndex, Probe};
use bftree_btree::{BPlusTree, BTreeConfig};
use bftree_fdtree::FdTree;
use bftree_hashindex::HashIndex;
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{
    Duplicates, HeapFile, IoContext, IoSnapshot, Relation, StorageConfig, TupleLayout,
};

const N: u64 = 5_000;
const CARD: u64 = 7;
const BATCH_SIZES: [usize; 4] = [1, 7, 64, 1024];

fn relation(duplicates: Duplicates) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..N {
        heap.append_record(pk, pk / CARD);
    }
    let attr = if duplicates == Duplicates::Unique {
        PK_OFFSET
    } else {
        ATT1_OFFSET
    };
    Relation::new(heap, attr, duplicates).expect("conventional layout")
}

/// Every implementation under test, built over `rel` — the four
/// competitors, plus the BF-Tree again in the blocked filter layout.
fn built_indexes(rel: &Relation) -> Vec<(String, Box<dyn AccessMethod>)> {
    let mut out: Vec<(String, Box<dyn AccessMethod>)> = vec![
        (
            "bf-tree/standard".into(),
            Box::new(
                BfTree::builder()
                    .fpp(1e-3)
                    .filter_layout(FilterLayout::Standard)
                    .build(rel)
                    .expect("valid config"),
            ),
        ),
        (
            "bf-tree/blocked".into(),
            Box::new(
                BfTree::builder()
                    .fpp(1e-3)
                    .filter_layout(FilterLayout::Blocked)
                    .build(rel)
                    .expect("valid config"),
            ),
        ),
    ];
    let mut btree = BPlusTree::new(BTreeConfig::paper_default());
    btree.build(rel).expect("b+tree build");
    out.push(("b+tree".into(), Box::new(btree)));
    let mut hash = HashIndex::with_capacity(16, 0xC0FFEE);
    hash.build(rel).expect("hash build");
    out.push(("hash".into(), Box::new(hash)));
    let mut fd = FdTree::new();
    fd.build(rel).expect("fd-tree build");
    out.push(("fd-tree".into(), Box::new(fd)));
    out
}

/// Hits, misses, duplicates-of-a-probe and out-of-domain keys in
/// decorrelated order.
fn workload(domain_max: u64, n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(2654435761).wrapping_add(seed)) % (domain_max * 2))
        .collect()
}

fn scalar_baseline(
    index: &dyn AccessMethod,
    rel: &Relation,
    keys: &[u64],
) -> (Vec<Probe>, IoSnapshot) {
    let io = IoContext::cold(StorageConfig::SsdHdd);
    let probes = keys
        .iter()
        .map(|&key| index.probe(key, rel, &io).expect("valid relation"))
        .collect();
    (probes, io.snapshot_total())
}

/// The core contract: element-wise identical `Probe`s and identical
/// device totals for every batch size, on unique and duplicate-heavy
/// relations.
#[test]
fn probe_batch_matches_scalar_probes_and_iostats() {
    for duplicates in [Duplicates::Unique, Duplicates::Contiguous] {
        let rel = relation(duplicates);
        let domain_max = if duplicates == Duplicates::Unique {
            N
        } else {
            N / CARD
        };
        let keys = workload(domain_max, 3_000, 0xBA7C4);
        for (name, index) in built_indexes(&rel) {
            let (expect, expect_io) = scalar_baseline(index.as_ref(), &rel, &keys);
            for batch_size in BATCH_SIZES {
                let io = IoContext::cold(StorageConfig::SsdHdd);
                let mut got: Vec<Probe> = Vec::with_capacity(keys.len());
                for chunk in keys.chunks(batch_size) {
                    got.extend(index.probe_batch(chunk, &rel, &io).expect("valid relation"));
                }
                assert_eq!(
                    got.len(),
                    keys.len(),
                    "{name}: batch {batch_size} lost results"
                );
                for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        g, e,
                        "{name}: batch {batch_size}, key #{i} ({}) diverged",
                        keys[i]
                    );
                }
                let got_io = io.snapshot_total();
                assert_eq!(
                    got_io.device_reads(),
                    expect_io.device_reads(),
                    "{name}: batch {batch_size} changed the number of device reads"
                );
                assert_eq!(
                    got_io.sim_ns, expect_io.sim_ns,
                    "{name}: batch {batch_size} changed simulated time"
                );
                assert_eq!(
                    got_io.bytes_read, expect_io.bytes_read,
                    "{name}: batch {batch_size} changed bytes read"
                );
            }
        }
    }
}

/// Batched service through `ConcurrentIndex` from 8 threads: per-key
/// results still equal the scalar baseline, and the shared sharded
/// counters equal the single-threaded totals exactly.
#[test]
fn probe_batch_under_concurrent_index_from_8_threads() {
    const THREADS: usize = 8;
    const BATCH: usize = 64;
    let rel = relation(Duplicates::Unique);
    for (name, index) in built_indexes(&rel) {
        // Disjoint per-thread streams (hits and misses interleaved).
        let streams: Vec<Vec<u64>> = (0..THREADS as u64)
            .map(|t| (0..2 * N).filter(|k| k % THREADS as u64 == t).collect())
            .collect();

        // Single-threaded scalar baseline over all streams.
        let io_single = IoContext::cold(StorageConfig::SsdHdd);
        let mut expect_hits = 0u64;
        for keys in &streams {
            for &key in keys {
                expect_hits += u64::from(index.probe(key, &rel, &io_single).unwrap().found());
            }
        }
        let expect = io_single.snapshot_total();

        let shared = ConcurrentIndex::new(index);
        let io = IoContext::cold(StorageConfig::SsdHdd);
        let name = name.as_str();
        let hits: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = streams
                .iter()
                .map(|keys| {
                    let (shared, rel, io) = (&shared, &rel, &io);
                    s.spawn(move || {
                        let mut hits = 0u64;
                        for chunk in keys.chunks(BATCH) {
                            for (i, probe) in shared
                                .probe_batch(chunk, rel, io)
                                .expect("valid relation")
                                .iter()
                                .enumerate()
                            {
                                assert_eq!(
                                    probe.found(),
                                    chunk[i] < N,
                                    "{name}: probe({}) diverged under concurrency",
                                    chunk[i]
                                );
                                hits += u64::from(probe.found());
                            }
                        }
                        hits
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });

        let got = io.snapshot_total();
        assert_eq!(hits, expect_hits, "{name}: hit totals diverged");
        assert_eq!(
            got.device_reads(),
            expect.device_reads(),
            "{name}: concurrent batched I/O totals must equal the scalar baseline"
        );
        assert_eq!(got.sim_ns, expect.sim_ns, "{name}: simulated time diverged");
    }
}

/// The blocked layout changes *which* filter bits are set, never the
/// query contract: no false negatives, and batch results stay
/// identical between the layouts' own scalar baselines.
#[test]
fn blocked_layout_has_no_false_negatives_through_the_batch_path() {
    let rel = relation(Duplicates::Unique);
    let tree = BfTree::builder()
        .fpp(1e-3)
        .filter_layout(FilterLayout::Blocked)
        .build(&rel)
        .expect("valid config");
    let io = IoContext::unmetered();
    let keys: Vec<u64> = (0..N).collect();
    for chunk in keys.chunks(512) {
        for (i, probe) in tree
            .probe_batch(chunk, &rel, &io)
            .expect("valid relation")
            .iter()
            .enumerate()
        {
            assert!(probe.found(), "blocked filter lost key {}", chunk[i]);
        }
    }
}
