//! End-to-end battery for the self-healing storage plane: seeded
//! fault injection must be reproducible, retries must absorb
//! transients (and their absence must surface them), bit rot must
//! flow quarantine → repair → readable, a failed fsync barrier must
//! heal on the next one, a corrupt WAL page must repair down to the
//! longest valid prefix, and a `DurableIndex` probe over a
//! quarantined data page must *say so* — then answer authoritatively
//! again after `repair_quarantined`.
//!
//! Unit tests inside `bftree-storage` pin each mechanism in
//! isolation; this battery wires them together across crate
//! boundaries the way the chaos harness does.

use std::sync::Arc;

use bftree_access::{DurableConfig, DurableIndex};
use bftree_bench::{build_index, IndexKind};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    Backend, CacheMode, DeviceKind, DeviceProfile, Duplicates, FaultConfig, FaultInjector,
    FaultKind, FileDevice, FileStore, HeapFile, IoContext, IoOutcome, Relation, RetryPolicy,
    ScheduledFault, ScratchDir, Scrubber, StorageConfig, SyncPolicy, TupleLayout,
};
use bftree_wal::{DurabilityMode, Wal, WalReader, WalRecord};

fn fresh_store(dir: &ScratchDir, name: &str) -> Arc<FileStore> {
    Arc::new(FileStore::create(dir.path().join(name), SyncPolicy::Deferred).expect("create store"))
}

#[test]
fn injected_fault_streams_are_reproducible_from_the_seed() {
    let dir = ScratchDir::new("heal-seed").unwrap();
    let run = |name: &str| {
        let store = fresh_store(&dir, name);
        let injector = Arc::new(FaultInjector::new(FaultConfig::uniform(0.15, 42)));
        store.set_fault_injector(Arc::clone(&injector));
        // Zero backoff keeps the run fast; the injector stream does
        // not depend on the policy's waits.
        store.set_retry_policy(RetryPolicy::fixed(3, 0));
        let mut outcomes: Vec<IoOutcome> = Vec::new();
        for page in 0..40 {
            outcomes.push(store.charged_write(page));
        }
        for page in 0..40 {
            outcomes.push(store.charged_read(page));
        }
        let mut quarantined = store.quarantine().pages();
        quarantined.sort_unstable();
        let per_kind: Vec<u64> = [
            FaultKind::TransientIo,
            FaultKind::BitRot,
            FaultKind::TornWrite,
            FaultKind::ShortRead,
            FaultKind::FsyncFail,
        ]
        .iter()
        .map(|&k| injector.injected(k))
        .collect();
        (outcomes, quarantined, per_kind, injector.total_injected())
    };
    let a = run("a.bfs");
    let b = run("b.bfs");
    assert_eq!(a, b, "same seed, same ops, same faults, same outcomes");
    assert!(a.3 > 0, "at 15% uniform pressure something must fire");
}

#[test]
fn a_transient_read_fault_retries_to_success() {
    let dir = ScratchDir::new("heal-retry").unwrap();
    let store = fresh_store(&dir, "s.bfs");
    store.write_page(7, b"survivor").unwrap();
    store.set_fault_injector(Arc::new(FaultInjector::new(FaultConfig::scheduled(vec![
        ScheduledFault {
            op: 0,
            kind: FaultKind::TransientIo,
        },
    ]))));
    store.set_retry_policy(RetryPolicy::exponential());
    assert_eq!(
        store.read_page_verified(7).expect("retry heals"),
        b"survivor"
    );
    let snap = store.fault_stats().snapshot();
    assert_eq!(snap.transient_errors, 1);
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.retry_successes, 1);
    assert_eq!(snap.retries_exhausted, 0);
}

#[test]
fn without_retries_transients_surface_and_exhaustion_is_counted() {
    let dir = ScratchDir::new("heal-exhaust").unwrap();
    let store = fresh_store(&dir, "s.bfs");
    store.write_page(7, b"survivor").unwrap();
    let schedule = (0..2)
        .map(|op| ScheduledFault {
            op,
            kind: FaultKind::TransientIo,
        })
        .collect();
    store.set_fault_injector(Arc::new(FaultInjector::new(FaultConfig::scheduled(
        schedule,
    ))));
    store.set_retry_policy(RetryPolicy::none());
    let err = store.read_page_verified(7).unwrap_err();
    assert!(err.is_transient(), "transient classification survives");
    assert_eq!(store.charged_read(7), IoOutcome::Unavailable);
    let snap = store.fault_stats().snapshot();
    assert_eq!(snap.retries, 0, "policy none never retries");
    assert_eq!(snap.retries_exhausted, 2);
    assert!(
        store.quarantine().is_empty(),
        "transient failures never quarantine"
    );
    // The page itself was always fine: with the schedule exhausted the
    // very next read succeeds.
    assert_eq!(store.read_page_verified(7).unwrap(), b"survivor");
}

#[test]
fn bit_rot_quarantines_and_is_never_recached_until_repair() {
    let dir = ScratchDir::new("heal-rot").unwrap();
    let store = fresh_store(&dir, "d.bfs");
    // A caching device: clean re-reads must be absorbed, so the "never
    // re-cached while quarantined" property is observable.
    let device = FileDevice::new(
        DeviceProfile::of(DeviceKind::Ssd),
        CacheMode::Lru(16),
        Arc::clone(&store),
    );

    device.read_random(5); // materialize + cache
    let cold_reads = store.wall().reads;
    device.read_random(5);
    assert_eq!(store.wall().reads, cold_reads, "clean pages cache");

    store.corrupt_page(5).unwrap();
    assert_eq!(store.charged_read(5), IoOutcome::Quarantined);
    assert!(store.quarantine().contains(5));

    // While quarantined the device never serves page 5 from cache —
    // and never re-caches it.
    let during_quarantine = store.wall().reads;
    device.read_random(5);
    device.read_random(5);
    assert!(
        store.wall().reads > during_quarantine,
        "quarantined accesses are never served from cache"
    );

    store.repair_page(5, None).expect("re-stamp repairs");
    assert!(store.quarantine().is_empty());
    // (repair_page's read-back verification charges a read itself, so
    // re-baseline here.)
    let after_repair = store.wall().reads;
    device.read_random(5);
    assert_eq!(
        store.wall().reads,
        after_repair + 1,
        "the repaired page is read from disk once (it was not cached while quarantined)"
    );
    device.read_random(5);
    assert_eq!(
        store.wall().reads,
        after_repair + 1,
        "…and caches again afterwards"
    );
    let snap = store.fault_stats().snapshot();
    assert_eq!(snap.quarantined, 1);
    assert_eq!(snap.repaired, 1);
}

#[test]
fn a_failed_fsync_barrier_heals_on_the_next_one() {
    let dir = ScratchDir::new("heal-fsync").unwrap();
    // PerRequest: every sync request issues a real barrier (Deferred
    // stores only fsync on flush, so the fault would never roll).
    let store = Arc::new(
        FileStore::create(dir.path().join("s.bfs"), SyncPolicy::PerRequest).expect("create store"),
    );
    store.write_page(0, b"window").unwrap();
    store.set_fault_injector(Arc::new(FaultInjector::new(FaultConfig::scheduled(vec![
        ScheduledFault {
            op: 0,
            kind: FaultKind::FsyncFail,
        },
    ]))));
    store.set_retry_policy(RetryPolicy::none());
    let err = store.sync_verified().unwrap_err();
    assert!(err.is_transient(), "a failed fsync is retryable");
    // The barrier failed; nothing was lost, nothing panicked, and the
    // next barrier covers the still-dirty window.
    store.sync_verified().expect("next barrier heals");
    assert_eq!(store.read_page_verified(0).unwrap(), b"window");
}

#[test]
fn a_corrupt_wal_page_repairs_to_the_longest_valid_prefix() {
    let dir = ScratchDir::new("heal-wal").unwrap();
    let backend = Backend::file(dir.path());
    let log = backend.device(DeviceKind::Ssd, "wal").expect("file log");
    let mut wal = Wal::open(log.clone(), DurabilityMode::PerRecord, 100);
    for key in 0..600 {
        wal.append(&WalRecord::Insert {
            key,
            page: key / 8,
            slot: key % 8,
        });
    }
    let full = wal.bytes().to_vec();
    let store = log.file().expect("file-backed").store();
    let pages = store.live_page_ids();
    assert!(pages.len() >= 3, "the log must span several pages");
    let mid = pages[pages.len() / 2];
    store.corrupt_page(mid).unwrap();

    let outcome = Wal::repair_image(&log).expect("an image survives");
    assert!(
        outcome.repaired_pages >= 1,
        "the corrupt page was rewritten"
    );
    assert_eq!(outcome.valid_len, outcome.image.len());
    assert_eq!(
        &outcome.image[..],
        &full[..outcome.valid_len],
        "repair yields an exact prefix of the pre-damage log"
    );
    let (records, _) = WalReader::drain(&outcome.image);
    assert!(!records.is_empty(), "the prefix holds the early records");
    assert!(
        records.len() < 601,
        "records beyond the damage are gone, not invented"
    );
    assert!(
        store.quarantine().is_empty(),
        "repair releases the log page from quarantine"
    );
    // What the store now holds is the surviving pages (page-granular);
    // the record-boundary cut drains to exactly the repaired image's
    // records — a frame prefix torn off by the blanked page is dropped,
    // not resurrected.
    let disk = Wal::load_image(&log).expect("image");
    assert!(disk.starts_with(&outcome.image));
    let (disk_records, _) = WalReader::drain(&disk);
    assert_eq!(disk_records.len(), records.len());
}

fn small_relation(n: u64) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..n {
        heap.append_record(pk, pk / 3);
    }
    Relation::new(heap, PK_OFFSET, Duplicates::Unique).expect("conventional layout")
}

#[test]
fn degraded_probes_name_their_losses_and_heal_after_repair() {
    let dir = ScratchDir::new("heal-degraded").unwrap();
    let backend = Backend::file(dir.path());
    let rel = small_relation(2_000);
    let inner = build_index(IndexKind::BfTree, &rel, 1e-4);
    let index = DurableIndex::new(
        inner,
        &rel,
        backend.device(DeviceKind::Ssd, "wal").expect("file log"),
        DurableConfig {
            flush_batch: 8,
            durability: DurabilityMode::Async,
        },
    );
    let io = IoContext::cold_on(&backend, StorageConfig::SsdSsd).expect("file devices");
    let data = Arc::clone(io.data.file().expect("file-backed data").store());

    let key = 123;
    let healthy = index.probe_degraded(key, &rel, &io).expect("probe");
    assert!(healthy.complete && healthy.probe.found());
    let page = healthy.probe.matches[0].0;

    // Rot the match-bearing data page and let the scrubber find it.
    assert_eq!(data.charged_read(page), IoOutcome::Ok);
    data.corrupt_page(page).unwrap();
    let sweep = Scrubber::new(Arc::clone(&data)).scrub_pass();
    assert_eq!(sweep.corrupt_found, 1);
    assert!(data.quarantine().contains(page));

    // The answer still comes back (memtable + surviving pages), but
    // labelled partial, naming the quarantined match page.
    let degraded = index.probe_degraded(key, &rel, &io).expect("probe");
    assert!(
        !degraded.complete,
        "a quarantined match page is a partial answer"
    );
    assert!(degraded.quarantined_matches.contains(&page));

    let report = index.repair_quarantined(&io);
    assert!(report.healed(), "repair must clear everything: {report:?}");
    assert!(report.pages_repaired >= 1);
    assert!(data.quarantine().is_empty());

    let healed = index.probe_degraded(key, &rel, &io).expect("probe");
    assert!(healed.complete && healed.probe.found());
    assert_eq!(healed.probe.matches, healthy.probe.matches);
    assert!(
        Scrubber::new(data).scrub_pass().clean(),
        "the store scrubs clean after repair"
    );
}
