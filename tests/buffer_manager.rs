//! Buffer-manager conformance suite.
//!
//! Three layers of guarantees:
//!
//! 1. **Golden eviction order** — a fixed access sequence through a
//!    single-shard manager must produce an exact, hand-derived
//!    eviction order per policy (and the three policies demonstrably
//!    differ on a hot-set + scan pattern).
//! 2. **Per-device baseline** — a device whose warm path goes through
//!    a single-shard shared manager must be bit-identical (every
//!    `IoStats` counter, every simulated nanosecond) to the old
//!    private per-device LRU pool.
//! 3. **Concurrency** — probe results and I/O totals through the
//!    shared manager from 8 threads must match a single-threaded run
//!    of the same streams when the working set fits (no evictions →
//!    interleaving-independent), and under eviction pressure the
//!    manager's counters must survive a single-threaded replay of its
//!    serialized access trace exactly.

use std::sync::Arc;

use bftree_bench::{build_index, run_probes, run_probes_parallel, IndexKind};
use bftree_bufferpool::{Access, BufferManager, PolicyKind};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    CacheMode, DeviceKind, DeviceProfile, Duplicates, HeapFile, IoContext, Relation, SimDevice,
    StorageConfig, TupleLayout, PAGE_SIZE,
};
use bftree_workloads::{popular_probe_streams, KeyPopularity};

const PAGE: u64 = PAGE_SIZE as u64;

/// Drive `pages` through a fresh single-shard manager of `capacity`
/// pages and return the eviction order.
fn eviction_order(policy: PolicyKind, capacity: u64, accesses: &[(u64, bool)]) -> Vec<u64> {
    let mgr = BufferManager::with_shards(capacity * PAGE, policy, 1);
    let pool = mgr.register_pool("golden");
    let mut order = Vec::new();
    for &(page, expect_hit) in accesses {
        match mgr.touch(pool, page, PAGE) {
            Access::Hit => assert!(expect_hit, "page {page} unexpectedly hit"),
            Access::Miss { evicted } => {
                assert!(!expect_hit, "page {page} unexpectedly missed");
                order.extend(evicted.iter().map(|&(_, p)| p));
            }
        }
    }
    order
}

/// Hot pages 1, 2 (touched twice) then a scan 3..=7 through a 4-page
/// budget: strict LRU flushes the hot set, clock spares what its
/// reference bits remember, 2Q sacrifices the scan itself.
#[test]
fn golden_eviction_orders_differ_across_policies() {
    let accesses = [
        (1, false),
        (2, false),
        (1, true),
        (2, true),
        (3, false),
        (4, false),
        (5, false),
        (6, false),
        (7, false),
    ];
    assert_eq!(
        eviction_order(PolicyKind::Lru, 4, &accesses),
        vec![1, 2, 3],
        "LRU evicts the hot set first (scan pollution)"
    );
    assert_eq!(
        eviction_order(PolicyKind::Clock, 4, &accesses),
        vec![3, 4, 1],
        "clock's reference bits buy the hot set one extra lap"
    );
    assert_eq!(
        eviction_order(PolicyKind::TwoQ, 4, &accesses),
        vec![3, 4, 5],
        "2Q drains the probationary scan and keeps the hot set"
    );
}

#[test]
fn golden_lru_order_is_strict() {
    // Capacity 3: [1 2 3] resident, touch 2 (MRU now 2), then 4, 5, 6.
    let accesses = [
        (1, false),
        (2, false),
        (3, false),
        (2, true),
        (4, false), // evicts 1
        (5, false), // evicts 3
        (6, false), // evicts 2
    ];
    assert_eq!(eviction_order(PolicyKind::Lru, 3, &accesses), vec![1, 3, 2]);
}

/// The shared manager in single-shard LRU mode must be I/O-identical
/// to the old private per-device pool — same hits, same evictions,
/// same simulated nanoseconds — across an eviction-heavy workload.
#[test]
fn shared_manager_matches_private_device_baseline() {
    let pool_pages = 64usize;
    let private = SimDevice::new(DeviceProfile::ssd(), CacheMode::Lru(pool_pages));
    let mgr = Arc::new(BufferManager::with_shards(
        pool_pages as u64 * PAGE,
        PolicyKind::Lru,
        1,
    ));
    let pool = mgr.register_pool("data");
    let shared = SimDevice::with_shared_cache(DeviceProfile::ssd(), Arc::clone(&mgr), pool);

    let mut state = 0xDEAD_BEEFu64;
    for _ in 0..50_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let page = (state >> 33) % 256; // 4x the pool: constant eviction
        private.read_random(page);
        shared.read_random(page);
    }
    let (a, b) = (private.snapshot(), shared.snapshot());
    assert_eq!(a, b, "shared manager drifted from the per-device LRU");
    assert!(a.cache_hits > 0 && a.cache_evictions > 0, "workload warmed");
}

/// With a budget large enough that nothing is ever evicted, hit/miss
/// totals are interleaving-independent (first toucher misses, every
/// later toucher hits), so an 8-thread run through the shared manager
/// must match a single-threaded run of the same streams to the last
/// counter and simulated nanosecond — and produce the same probe
/// results.
#[test]
fn concurrent_probes_match_single_threaded_baseline_when_working_set_fits() {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..8_000u64 {
        heap.append_record(pk, pk / 11);
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let domain: Vec<u64> = (0..8_000).collect();
    let streams = popular_probe_streams(&domain, KeyPopularity::Zipfian { theta: 0.99 }, 500, 8, 7);
    let budget = 4 * rel.heap().page_count() * PAGE; // everything fits
    for kind in IndexKind::ALL {
        let index = build_index(kind, &rel, 1e-4);

        let io_single =
            IoContext::with_shared_budget(StorageConfig::SsdSsd, budget, PolicyKind::Lru);
        let flat: Vec<u64> = streams.iter().flatten().copied().collect();
        let single = run_probes(index.as_ref(), &rel, &flat, &io_single);
        let expect = io_single.snapshot_total();

        let io_par = IoContext::with_shared_budget(StorageConfig::SsdSsd, budget, PolicyKind::Lru);
        io_par.buffer_manager().unwrap().set_tracing(true);
        let r = run_probes_parallel(index.as_ref(), &rel, &streams, &io_par);
        let got = io_par.snapshot_total();

        assert_eq!(r.hit_rate(), single.hit_rate, "{}", index.name());
        assert_eq!(got.cache_hits, expect.cache_hits, "{}", index.name());
        assert_eq!(got.cache_evictions, 0, "{}", index.name());
        assert_eq!(
            got.device_reads(),
            expect.device_reads(),
            "{}",
            index.name()
        );
        assert_eq!(got.sim_ns, expect.sim_ns, "{}", index.name());
        assert!(
            io_par.buffer_manager().unwrap().verify_replay().exact,
            "{}: trace replay diverged",
            index.name()
        );
    }
}

/// Under real eviction pressure hit/miss splits legitimately depend on
/// thread interleaving, but the manager's counters must still be
/// *self*-exact: a single-threaded replay of the serialized per-shard
/// access traces reproduces hits, misses, evictions, and residency
/// bit-for-bit, and the devices' sharded IoStats agree with the
/// manager's own ledger.
#[test]
fn concurrent_pressure_counters_survive_replay() {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..8_000u64 {
        heap.append_record(pk, pk / 11);
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let domain: Vec<u64> = (0..8_000).collect();
    let streams =
        popular_probe_streams(&domain, KeyPopularity::Zipfian { theta: 0.99 }, 500, 8, 11);
    let budget = rel.heap().page_count() * PAGE / 8; // heavy pressure
    for policy in PolicyKind::ALL {
        let index = build_index(IndexKind::BfTree, &rel, 1e-4);
        let io = IoContext::with_shared_budget(StorageConfig::SsdSsd, budget, policy);
        let mgr = Arc::clone(io.buffer_manager().unwrap());
        mgr.set_tracing(true);
        let r = run_probes_parallel(index.as_ref(), &rel, &streams, &io);

        let check = mgr.verify_replay();
        assert!(
            check.exact,
            "{policy}: live {:?} != replay {:?}",
            check.live, check.replayed
        );
        let stats = mgr.stats();
        assert_eq!(stats.hits, r.io_total.cache_hits, "{policy}: ledgers agree");
        assert_eq!(
            stats.evictions, r.io_total.cache_evictions,
            "{policy}: eviction ledgers agree"
        );
        assert_eq!(
            stats.misses,
            r.io_total.device_reads(),
            "{policy}: every miss reached a device"
        );
        assert!(stats.evictions > 0, "{policy}: pressure was real");
        assert_eq!(r.hit_rate(), 1.0, "{policy}: probes all found their key");
    }
}

/// `CacheMode::Lru` still composes with prewarming through the shared
/// path: an `IoContext::with_shared_budget` index device prewarmed
/// with the upper levels absorbs descents exactly like the old warm
/// mode.
#[test]
fn prewarmed_shared_context_absorbs_upper_levels() {
    let io = IoContext::with_shared_budget(StorageConfig::SsdHdd, 1 << 22, PolicyKind::TwoQ);
    io.prewarm_index(0..32u64);
    io.index.read_random(5);
    let s = io.index.snapshot();
    assert_eq!(s.device_reads(), 0);
    assert_eq!(s.cache_hits, 1);
    let stats = io.buffer_stats().unwrap();
    assert_eq!(stats.misses, 0, "prewarm counts no misses");
    assert_eq!(stats.resident_pages, 32);
}

/// Memory-device contexts reject nothing but cache nothing: unmetered
/// correctness runs stay available with a shared budget configured.
#[test]
fn memory_index_device_stays_uncached_under_shared_budget() {
    let io = IoContext::with_shared_budget(StorageConfig::MemSsd, 1 << 20, PolicyKind::Lru);
    assert!(io.index.is_lock_free());
    io.index.read_random(1);
    io.index.read_random(1);
    assert_eq!(io.index.snapshot().cache_hits, 0);
    assert_eq!(io.index.snapshot().device_reads(), 2);
    assert_eq!(io.index.kind(), DeviceKind::Memory);
}

/// The durable write path's ingest memtable competes with cached data
/// pages for the same memory: reserving its worst-case footprint
/// shrinks the shared page budget by exactly the capacity estimate,
/// and is a no-op on contexts without a shared manager.
#[test]
fn durable_memtable_reserves_from_the_shared_budget() {
    use bftree_access::{DurableConfig, DurableIndex};
    use bftree_wal::DurabilityMode;

    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..2_000u64 {
        heap.append_record(pk, pk);
    }
    let rel = Relation::new(heap, PK_OFFSET, Duplicates::Unique).unwrap();
    let inner = build_index(IndexKind::BfTree, &rel, 1e-4);
    let index = DurableIndex::new(
        inner,
        &rel,
        SimDevice::cold(DeviceKind::Ssd),
        DurableConfig {
            flush_batch: 256,
            durability: DurabilityMode::GroupCommit {
                max_records: 64,
                max_bytes: 16 * 1024,
            },
        },
    );

    let budget = 64 * PAGE;
    let io = IoContext::with_shared_budget(StorageConfig::SsdSsd, budget, PolicyKind::Lru);
    let remaining = index.reserve_memtable_budget(&io);
    assert!(index.memtable_capacity_bytes() > 0);
    assert_eq!(
        remaining,
        budget - index.memtable_capacity_bytes(),
        "reservation must shrink the page budget by the memtable capacity"
    );

    // No shared manager, nothing to reserve.
    assert_eq!(index.reserve_memtable_budget(&IoContext::unmetered()), 0);
}
