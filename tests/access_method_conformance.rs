//! Trait-conformance suite: one shared battery — build → probe
//! hit/miss → duplicates → range scan → insert → delete — run against
//! every [`AccessMethod`] implementation, plus the streaming-read
//! contracts: draining a range cursor equals the materializing scan
//! with bit-identical cold-device I/O, and a breaking sink stops the
//! I/O. A new backend passes this suite or it isn't an access method.

use std::ops::ControlFlow;

use bftree::BfTree;
use bftree_access::{
    AccessMethod, ConcurrentIndex, DurableConfig, DurableIndex, FnSink, IndexStats, RangeCursor,
};
use bftree_btree::{BPlusTree, BTreeConfig};
use bftree_fdtree::FdTree;
use bftree_hashindex::HashIndex;
use bftree_shard::{ShardPlan, ShardedIndex};
use bftree_storage::tuple::{ATT1_OFFSET, PK_OFFSET};
use bftree_storage::{
    Backend, DeviceKind, Duplicates, HeapFile, IoContext, IoSnapshot, PageDevice, Relation,
    ScratchDir, StorageConfig, TupleLayout,
};
use bftree_wal::DurabilityMode;

const N: u64 = 5_000;
const CARD: u64 = 7;

/// Every implementation under test, freshly constructed (unbuilt).
/// The durable wrapper rides along as a fifth implementation: an
/// access method in its own right (WAL + memtable in front of a
/// BF-Tree), with a tiny flush batch so the battery's writes cross
/// flush boundaries mid-test.
fn all_indexes(rel: &Relation) -> Vec<Box<dyn AccessMethod>> {
    all_indexes_on(rel, &Backend::Sim).0
}

/// The same battery of implementations, with the durable wrapper's
/// log device taken from `backend` (sim or file-backed). Returns the
/// log device alongside so tests can compare its counters.
fn all_indexes_on(rel: &Relation, backend: &Backend) -> (Vec<Box<dyn AccessMethod>>, PageDevice) {
    let log = backend
        .device(DeviceKind::Ssd, "wal")
        .expect("log device materializes");
    let indexes: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(
            BfTree::builder()
                .fpp(1e-4)
                .empty(rel)
                .expect("valid config"),
        ),
        Box::new(BPlusTree::new(BTreeConfig::paper_default())),
        Box::new(HashIndex::with_capacity(16, 0xC0FFEE)),
        Box::new(FdTree::new()),
        Box::new(DurableIndex::new(
            BfTree::builder()
                .fpp(1e-4)
                .empty(rel)
                .expect("valid config"),
            rel,
            log.clone(),
            DurableConfig {
                flush_batch: 3,
                durability: DurabilityMode::GroupCommit {
                    max_records: 4,
                    max_bytes: 4 * 1024,
                },
            },
        )),
        Box::new(sharded_index(rel, backend)),
    ];
    (indexes, log)
}

/// The sharded serving layer as the sixth implementation: three
/// range-partitioned shards (quantiles of the attribute domain), each
/// a durable BF-Tree stack with its own WAL device from `backend`,
/// behind the scatter-gather router. It is an `AccessMethod` like any
/// other and must pass the identical battery.
fn sharded_index(rel: &Relation, backend: &Backend) -> ShardedIndex {
    let domain = rel
        .heap()
        .iter_attr(rel.attr())
        .map(|(_, _, v)| v)
        .max()
        .unwrap_or(0)
        + 1;
    ShardedIndex::new(
        ShardPlan::uniform(domain.max(3), 3),
        rel,
        DurableConfig {
            flush_batch: 3,
            durability: DurabilityMode::GroupCommit {
                max_records: 4,
                max_bytes: 4 * 1024,
            },
        },
        |_| {
            Box::new(
                BfTree::builder()
                    .fpp(1e-4)
                    .empty(rel)
                    .expect("valid config"),
            )
        },
        |s| {
            backend
                .device(DeviceKind::Ssd, &format!("wal-shard{s}"))
                .expect("shard log device materializes")
        },
    )
}

/// A relation with a unique ordered PK and a contiguous-duplicate ATT1.
fn relation(duplicates: Duplicates) -> Relation {
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..N {
        heap.append_record(pk, pk / CARD);
    }
    let attr = if duplicates == Duplicates::Unique {
        PK_OFFSET
    } else {
        ATT1_OFFSET
    };
    Relation::new(heap, attr, duplicates).expect("conventional layout")
}

fn brute_force(rel: &Relation, key: u64) -> Vec<(u64, usize)> {
    rel.heap()
        .iter_attr(rel.attr())
        .filter(|&(_, _, v)| v == key)
        .map(|(pid, slot, _)| (pid, slot))
        .collect()
}

/// The shared battery, applied to one built index over `rel`.
fn battery(index: &mut Box<dyn AccessMethod>, rel: &mut Relation) {
    let name = index.name();
    let io = IoContext::unmetered();
    index
        .build(rel)
        .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));

    // Structure is populated.
    let IndexStats {
        bytes,
        height,
        entries,
        ..
    } = index.stats();
    assert!(entries > 0, "{name}: no entries after build");
    assert!(height >= 1, "{name}: implausible height");
    assert!(
        bytes > 0 && index.size_bytes() == bytes,
        "{name}: size accounting"
    );

    // Probe hit: exactly the brute-force matches (no false negatives,
    // no phantoms — false positives only cost reads).
    for key in [0u64, 1, N / CARD / 2, (N - 1) / CARD] {
        let mut got = index.probe(key, rel, &io).unwrap().matches;
        got.sort_unstable();
        assert_eq!(got, brute_force(rel, key), "{name}: probe({key})");
    }

    // probe_first stops at one match of the key.
    let first = index.probe_first(1, rel, &io).unwrap();
    assert_eq!(
        first.matches.len(),
        1,
        "{name}: probe_first must return one match"
    );
    let (pid, slot) = first.matches[0];
    assert_eq!(
        rel.heap().attr(pid, slot, rel.attr()),
        1,
        "{name}: wrong tuple"
    );

    // Probe miss: empty, and a found() of false.
    let miss = index.probe(N * 10, rel, &io).unwrap();
    assert!(!miss.found(), "{name}: phantom match");

    // Range scan agrees with brute force on a small range.
    let (lo, hi) = (10u64, 40u64);
    let mut got = index.range_scan(lo, hi, rel, &io).unwrap().matches;
    got.sort_unstable();
    let expect: Vec<(u64, usize)> = rel
        .heap()
        .iter_attr(rel.attr())
        .filter(|&(_, _, v)| v >= lo && v <= hi)
        .map(|(pid, slot, _)| (pid, slot))
        .collect();
    let mut expect_sorted = expect;
    expect_sorted.sort_unstable();
    assert_eq!(got, expect_sorted, "{name}: range [{lo}, {hi}]");

    // Insert: append a fresh tuple past the current domain, register
    // it, and find it again.
    let new_key = N * CARD + 1;
    let loc = rel.heap_mut().append_record(new_key, new_key);
    index.insert(new_key, loc, rel).unwrap();
    let got = index.probe(new_key, rel, &io).unwrap();
    assert!(got.matches.contains(&loc), "{name}: inserted key not found");

    // Delete: the key disappears from probes.
    let affected = index.delete(new_key, rel).unwrap();
    assert!(affected > 0, "{name}: delete affected nothing");
    let gone = index.probe(new_key, rel, &io).unwrap();
    assert!(!gone.found(), "{name}: deleted key still found");
}

#[test]
fn conformance_on_unique_pk() {
    let rel = relation(Duplicates::Unique);
    for mut index in all_indexes(&rel) {
        // Fresh relation per index: the battery's insert leg appends
        // to the heap, and a leftover record would break the Unique
        // contract for the next index under test.
        let mut rel = rel.clone();
        battery(&mut index, &mut rel);
    }
}

#[test]
fn conformance_on_contiguous_duplicates() {
    let rel = relation(Duplicates::Contiguous);
    for mut index in all_indexes(&rel) {
        // probe_first needs a key with a deterministic single first
        // match per index semantics; the battery probes key 1, which
        // under ATT1 = pk/7 has 7 occurrences — probe_first may return
        // any one of them, so run the duplicate battery separately.
        let name = index.name();
        let io = IoContext::unmetered();
        index
            .build(&rel)
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        for key in [0u64, 3, 100, (N - 1) / CARD] {
            let mut got = index.probe(key, &rel, &io).unwrap().matches;
            got.sort_unstable();
            assert_eq!(got, brute_force(&rel, key), "{name}: probe({key})");
            assert_eq!(
                got.len(),
                usize::try_from(if key == (N - 1) / CARD {
                    N - key * CARD
                } else {
                    CARD
                })
                .unwrap(),
                "{name}: duplicate count for key {key}"
            );
        }
        let miss = index.probe(N, &rel, &io).unwrap();
        assert!(!miss.found(), "{name}: phantom duplicate match");
    }
}

/// Concurrency conformance: N threads probing one shared index see
/// exactly what a single thread sees, and the shared (sharded) I/O
/// counters equal the sum of per-thread work — no lost updates, no
/// phantom charges. This is the contract the `AccessMethod:
/// Send + Sync` supertrait and the sharded `IoStats` exist to uphold.
#[test]
fn concurrent_probes_match_single_threaded_baseline() {
    const THREADS: u64 = 4;
    let rel = relation(Duplicates::Unique);
    for mut index in all_indexes(&rel) {
        let name = index.name();
        index.build(&rel).unwrap();
        let index: &dyn AccessMethod = index.as_ref();

        // Disjoint per-thread key sets (hits and misses interleaved).
        let streams: Vec<Vec<u64>> = (0..THREADS)
            .map(|t| (0..2 * N).filter(|k| k % THREADS == t).collect())
            .collect();

        // Single-threaded baseline over all streams.
        let io_single = IoContext::cold(StorageConfig::SsdHdd);
        let mut expect_hits = 0u64;
        for keys in &streams {
            for &key in keys {
                expect_hits += u64::from(index.probe_first(key, &rel, &io_single).unwrap().found());
            }
        }
        let expect = io_single.snapshot_total();

        // Concurrent run: each thread probes its stream and checks
        // results against brute force as it goes.
        let io = IoContext::cold(StorageConfig::SsdHdd);
        let hits: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = streams
                .iter()
                .map(|keys| {
                    let (io, rel) = (&io, &rel);
                    s.spawn(move || {
                        let mut hits = 0u64;
                        for &key in keys {
                            let p = index.probe_first(key, rel, io).unwrap();
                            assert_eq!(
                                p.found(),
                                !brute_force(rel, key).is_empty(),
                                "{name}: probe({key}) diverged under concurrency"
                            );
                            hits += u64::from(p.found());
                        }
                        hits
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });

        let got = io.snapshot_total();
        assert_eq!(hits, expect_hits, "{name}: hit totals diverged");
        assert_eq!(
            got.device_reads(),
            expect.device_reads(),
            "{name}: concurrent I/O totals must equal the sum of per-thread work"
        );
        assert_eq!(got.sim_ns, expect.sim_ns, "{name}: simulated time diverged");
    }
}

/// Mixed read/insert conformance through the `ConcurrentIndex`
/// adapter: concurrent inserts are never lost and become visible to
/// probes once the run drains.
#[test]
fn concurrent_mixed_inserts_are_linearizable() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50;
    let base = relation(Duplicates::Unique);
    for mut index in all_indexes(&base) {
        let name = index.name();
        // Build over the base relation, then (load phase) append the
        // fresh keys' tuples to the heap; the concurrent run phase
        // registers them in the index while other threads probe.
        let mut rel = base.clone();
        index.build(&rel).unwrap();
        let fresh: Vec<(u64, (u64, usize))> = (0..THREADS * PER_THREAD)
            .map(|i| {
                let key = 10 * N + i;
                (key, rel.heap_mut().append_record(key, key))
            })
            .collect();
        let shared = ConcurrentIndex::new(index);
        let io = IoContext::unmetered();
        std::thread::scope(|s| {
            for t in 0..THREADS as usize {
                let chunk = &fresh[t * PER_THREAD as usize..(t + 1) * PER_THREAD as usize];
                let (shared, rel, io) = (&shared, &rel, &io);
                s.spawn(move || {
                    for &(key, loc) in chunk {
                        shared.insert(key, loc, rel).unwrap();
                        // Interleave reads of the stable domain.
                        assert!(shared.probe_first(key % N, rel, io).unwrap().found());
                    }
                });
            }
        });
        let io = IoContext::unmetered();
        for &(key, loc) in &fresh {
            let p = shared.probe(key, &rel, &io).unwrap();
            assert!(
                p.matches.contains(&loc),
                "{name}: concurrently inserted key {key} lost"
            );
        }
    }
}

/// Streaming conformance, materializing side: for every index and
/// both duplicate layouts, fully draining a [`RangeCursor`] yields
/// `range_scan`'s matches element for element and — on cold devices —
/// bit-identical `IoStats` on both the index and the data device.
/// (`range_scan` *is* the drain by default; this pins any override.)
#[test]
fn range_cursor_drain_equals_range_scan_bit_for_bit() {
    for duplicates in [Duplicates::Unique, Duplicates::Contiguous] {
        let rel = relation(duplicates);
        for mut index in all_indexes(&rel) {
            let name = index.name();
            index.build(&rel).unwrap();
            for (lo, hi) in [(0u64, 37u64), (100, 400), (N * 2, N * 3), (250, 250)] {
                let io_scan = IoContext::cold(StorageConfig::SsdHdd);
                let scan = index.range_scan(lo, hi, &rel, &io_scan).unwrap();

                let io_cursor = IoContext::cold(StorageConfig::SsdHdd);
                let mut cursor = index.range_cursor(lo, hi, &rel, &io_cursor).unwrap();
                let mut matches = Vec::new();
                while let Some(page) = cursor.next_page_matches() {
                    matches.extend_from_slice(page);
                    cursor.advance();
                }
                let cio = cursor.io();
                drop(cursor);

                assert_eq!(matches, scan.matches, "{name}: [{lo}, {hi}] matches");
                assert_eq!(cio.pages_read, scan.pages_read, "{name}: pages_read");
                assert_eq!(
                    cio.overhead_pages, scan.overhead_pages,
                    "{name}: overhead_pages"
                );
                for (cursor_dev, scan_dev, which) in [
                    (
                        io_cursor.index.snapshot(),
                        io_scan.index.snapshot(),
                        "index",
                    ),
                    (io_cursor.data.snapshot(), io_scan.data.snapshot(), "data"),
                ] {
                    assert_eq!(
                        cursor_dev.device_reads(),
                        scan_dev.device_reads(),
                        "{name}: {which} device reads, range [{lo}, {hi}]"
                    );
                    assert_eq!(
                        cursor_dev.sim_ns, scan_dev.sim_ns,
                        "{name}: {which} sim_ns, range [{lo}, {hi}]"
                    );
                }
            }
        }
    }
}

/// Streaming conformance, push side: a sink that breaks after the
/// first match stops the probe's data I/O at no more pages than the
/// full probe; a collect-everything sink equals `probe` exactly.
#[test]
fn probe_into_respects_sink_control_flow() {
    for duplicates in [Duplicates::Unique, Duplicates::Contiguous] {
        let rel = relation(duplicates);
        for mut index in all_indexes(&rel) {
            let name = index.name();
            index.build(&rel).unwrap();
            for key in [0u64, 1, 100, N / CARD / 2, N * 10] {
                // Full consumption == probe, matches and counters.
                let io_probe = IoContext::cold(StorageConfig::SsdHdd);
                let p = index.probe(key, &rel, &io_probe).unwrap();
                let io_sink = IoContext::cold(StorageConfig::SsdHdd);
                let mut collected = Vec::new();
                let s = index
                    .probe_into(key, &rel, &io_sink, &mut collected)
                    .unwrap();
                assert_eq!(collected, p.matches, "{name}: probe_into({key}) matches");
                assert_eq!(s.pages_read, p.pages_read, "{name}: pages_read({key})");
                assert_eq!(s.false_reads, p.false_reads, "{name}: false_reads({key})");
                assert_eq!(
                    io_sink.data.snapshot().sim_ns,
                    io_probe.data.snapshot().sim_ns,
                    "{name}: full-consumption data charges ({key})"
                );

                // Early break: no more data pages than the full probe.
                let io_first = IoContext::cold(StorageConfig::SsdHdd);
                let mut first = bftree_access::FirstMatch::default();
                let sf = index.probe_into(key, &rel, &io_first, &mut first).unwrap();
                assert!(
                    sf.pages_read <= s.pages_read,
                    "{name}: first-match probe read more pages ({key})"
                );
                assert_eq!(first.found.is_some(), p.found(), "{name}: found({key})");
            }
        }
    }
}

/// Streaming conformance, scan side: a sink breaking after `k`
/// matches makes `range_scan_into` read strictly fewer data pages
/// than the full scan on a range whose result spans many pages.
#[test]
fn range_scan_into_stops_reading_when_the_sink_breaks() {
    for duplicates in [Duplicates::Unique, Duplicates::Contiguous] {
        let rel = relation(duplicates);
        let (lo, hi) = (
            10u64,
            if duplicates == Duplicates::Unique {
                2_000
            } else {
                300
            },
        );
        for mut index in all_indexes(&rel) {
            let name = index.name();
            index.build(&rel).unwrap();
            let io_full = IoContext::cold(StorageConfig::SsdHdd);
            let full = index.range_scan(lo, hi, &rel, &io_full).unwrap();
            assert!(full.pages_read > 3, "{name}: range too small to test");

            let io_lim = IoContext::cold(StorageConfig::SsdHdd);
            let mut taken = 0u64;
            let mut sink = FnSink(|_pid, _slot| {
                taken += 1;
                if taken < 5 {
                    ControlFlow::Continue(())
                } else {
                    ControlFlow::Break(())
                }
            });
            let s = index
                .range_scan_into(lo, hi, &rel, &io_lim, &mut sink)
                .unwrap();
            assert!(
                s.pages_read < full.pages_read,
                "{name}: early break must stop the page walk ({} vs {})",
                s.pages_read,
                full.pages_read
            );
            assert_eq!(taken, 5, "{name}: sink saw exactly k matches");
        }
    }
}

/// All four implementations agree pairwise on every probe of a mixed
/// hit/miss workload — the cross-check the paper's head-to-head
/// comparisons rest on.
#[test]
fn implementations_agree_pairwise() {
    let mut rel = relation(Duplicates::Unique);
    let io = IoContext::unmetered();
    let mut indexes = all_indexes(&rel);
    for index in &mut indexes {
        index.build(&rel).unwrap();
    }
    let _ = &mut rel;
    for probe in (0..2 * N).step_by(131) {
        let outcomes: Vec<(usize, bool)> = indexes
            .iter()
            .map(|i| {
                let p = i.probe(probe, &rel, &io).unwrap();
                (p.matches.len(), p.found())
            })
            .collect();
        assert!(
            outcomes.windows(2).all(|w| w[0] == w[1]),
            "probe({probe}): outcomes diverge: {outcomes:?}"
        );
    }
}

/// One storage backend under test: the pure simulator, or file-backed
/// page stores in a scratch directory. Each device-creating call gets
/// a fresh subdirectory so every context is cold on disk and no two
/// open stores alias one file.
struct BackendLab {
    scratch: Option<ScratchDir>,
    created: std::cell::Cell<u64>,
}

impl BackendLab {
    fn both() -> Vec<BackendLab> {
        vec![
            BackendLab {
                scratch: None,
                created: std::cell::Cell::new(0),
            },
            BackendLab {
                scratch: Some(ScratchDir::new("conformance").expect("scratch dir")),
                created: std::cell::Cell::new(0),
            },
        ]
    }

    fn label(&self) -> &'static str {
        if self.scratch.is_some() {
            "file"
        } else {
            "sim"
        }
    }

    fn backend(&self) -> Backend {
        match &self.scratch {
            None => Backend::Sim,
            Some(s) => {
                let n = self.created.get();
                self.created.set(n + 1);
                Backend::file(s.path().join(format!("c{n}")))
            }
        }
    }

    fn io_cold(&self) -> IoContext {
        IoContext::cold_on(&self.backend(), StorageConfig::SsdSsd).expect("backend devices")
    }
}

/// Backend conformance: the same probe/scan/insert/delete workload,
/// driven per index on cold devices, produces **identical** I/O
/// counters — reads, writes, fsyncs, simulated clock, snapshot for
/// snapshot — whether the devices are pure simulation or file-backed
/// page stores. This is the contract that makes the file backend a
/// calibration instrument rather than a second cost model.
#[test]
fn battery_io_counts_are_backend_invariant() {
    /// Per-backend evidence: (label, per-index named snapshots, file reads).
    type BackendRun = (&'static str, Vec<(String, IoSnapshot)>, u64);
    let base = relation(Duplicates::Unique);
    let mut per_backend: Vec<BackendRun> = Vec::new();
    for lab in BackendLab::both() {
        let (indexes, log) = all_indexes_on(&base, &lab.backend());
        let mut rows = Vec::new();
        let mut file_reads = 0u64;
        for mut index in indexes {
            let mut rel = base.clone();
            let name = index.name().to_string();
            index
                .build(&rel)
                .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
            let io = lab.io_cold();
            // Probes over hits and misses, point and first-match.
            for key in (0..2 * N).step_by(97) {
                let _ = index.probe(key, &rel, &io).unwrap();
            }
            let _ = index.probe_first(3, &rel, &io).unwrap();
            // Range scans: small, large, and empty.
            for (lo, hi) in [(0u64, 80u64), (1_000, 1_500), (N * 3, N * 4)] {
                let _ = index.range_scan(lo, hi, &rel, &io).unwrap();
            }
            // Writes: appended tuples registered in the index (the
            // durable implementation logs and fsyncs these), then a
            // delete.
            for i in 0..20 {
                let key = N * CARD + 10 + i;
                let loc = rel.append_tuple(key, key, &io);
                index.insert(key, loc, &rel).unwrap();
            }
            index.delete(N * CARD + 10, &rel).unwrap();
            rows.push((name, io.snapshot_total()));
            for dev in [&io.index, &io.data] {
                if let Some(w) = dev.wall() {
                    file_reads += w.reads;
                }
            }
        }
        rows.push(("wal-log".to_string(), log.snapshot()));
        per_backend.push((lab.label(), rows, file_reads));
    }

    let (_, sim_rows, sim_file_reads) = &per_backend[0];
    let (_, file_rows, file_file_reads) = &per_backend[1];
    assert_eq!(sim_rows.len(), file_rows.len());
    for (s, f) in sim_rows.iter().zip(file_rows) {
        assert_eq!(s.0, f.0, "index order diverged between backends");
        assert_eq!(
            s.1, f.1,
            "{}: cold-device I/O counters must be identical on sim and file backends",
            s.0
        );
    }
    assert_eq!(
        *sim_file_reads, 0u64,
        "the sim backend must not touch files"
    );
    assert!(
        *file_file_reads > 0,
        "the file backend must actually read its page stores"
    );
}
