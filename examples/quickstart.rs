//! Quickstart: index an ordered relation with a BF-Tree through the
//! unified `AccessMethod` surface, probe it, and compare its footprint
//! with a B+-Tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bftree::{AccessMethod, BfTree};
use bftree_access::{DurableConfig, DurableIndex, RangeCursor, RangeCursorExt};
use bftree_btree::{BPlusTree, BTreeConfig};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    DeviceKind, Duplicates, HeapFile, IoContext, Relation, SimDevice, TupleLayout,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A relation of 256-byte tuples, ordered on its primary key —
    //    the "implicit clustering" the BF-Tree exploits. The Relation
    //    handle bundles the heap file, the indexed attribute, and the
    //    duplicate layout.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..200_000u64 {
        heap.append_record(pk, pk / 11);
    }
    let relation = Relation::new(heap, PK_OFFSET, Duplicates::Unique)?;
    println!(
        "relation: {} tuples in {} pages ({} MB)",
        relation.heap().tuple_count(),
        relation.heap().page_count(),
        relation.heap().byte_size() >> 20
    );

    // 2. Bulk-load a BF-Tree at a chosen accuracy. fpp is the knob:
    //    looser = smaller index + more false reads.
    let tree = BfTree::builder().fpp(1e-3).build(&relation)?;

    // 3. Probe it (Algorithm 1) through the AccessMethod trait — the
    //    same interface the B+-Tree, hash-index, and FD-Tree baselines
    //    implement. An unmetered IoContext means "just correctness".
    let index: &dyn AccessMethod = &tree;
    let io = IoContext::unmetered();
    let probe = index.probe_first(123_456, &relation, &io)?;
    let (pid, slot) = probe.matches[0];
    assert_eq!(relation.heap().attr(pid, slot, PK_OFFSET), 123_456);
    println!(
        "probe(123456): found on page {pid} slot {slot} — {} page read(s)",
        probe.pages_read
    );

    // 4. A miss costs (almost) nothing: the filters reject it.
    let miss = index.probe_first(999_999_999, &relation, &io)?;
    assert!(!miss.found());
    println!(
        "probe(999999999): not found — {} page read(s)",
        miss.pages_read
    );

    // 5. Size comparison with an exact B+-Tree over the same key,
    //    built through the same trait.
    let mut bp = BPlusTree::new(BTreeConfig::paper_default());
    AccessMethod::build(&mut bp, &relation)?;
    println!(
        "index size: BF-Tree {} pages vs B+-Tree {} pages -> {:.1}x smaller",
        tree.total_pages(),
        bp.total_pages(),
        bp.total_pages() as f64 / tree.total_pages() as f64
    );

    // 6. Range scans work too (§7): partitions overlapping the range
    //    are scanned, with the boundary partitions' overhead reported.
    let scan = index.range_scan(1_000, 2_000, &relation, &io)?;
    println!(
        "range [1000, 2000]: {} matches from {} page reads ({} overhead)",
        scan.matches.len(),
        scan.pages_read,
        scan.overhead_pages
    );

    // 7. Or stream the same range as pages of 10: a limit(10) cursor
    //    reads only the data pages behind the rows it delivers, and
    //    the continuation token re-enters the scan exactly where the
    //    previous request stopped.
    let mut cursor = index.range_cursor(1_000, 2_000, &relation, &io)?.limit(10);
    let mut first_page = Vec::new();
    while let Some(rows) = cursor.next_page_matches() {
        first_page.extend_from_slice(rows);
        cursor.advance();
    }
    assert_eq!(first_page.len(), 10);
    let token = cursor.continuation().expect("991 matches still pending");
    println!(
        "paginated range [1000, 2000]: first {} rows from {} page read(s); resume token {:?}",
        first_page.len(),
        cursor.io().pages_read,
        token
    );
    let next_request = index.resume_range_cursor(&token, &relation, &io)?;
    drop((cursor, next_request)); // release the borrows on `tree`

    // 8. Make the write path durable: wrap any index in a WAL + ingest
    //    memtable. Writes hit the log first (group-committed), are
    //    served from the memtable immediately, and bulk-flush into the
    //    base index; `DurableIndex::recover` replays a crashed log
    //    back to identical answers (see tests/write_path_recovery.rs).
    let mut relation = relation;
    let mut durable = DurableIndex::new(
        tree,
        &relation,
        SimDevice::cold(DeviceKind::Ssd),
        DurableConfig::default(),
    );
    let key = 1_000_000u64;
    let loc = relation.append_tuple(key, key, &io);
    durable.insert(key, loc, &relation)?;
    assert!(durable.probe_first(key, &relation, &io)?.found());
    println!(
        "durable insert({key}): logged {} bytes ({}), served from the memtable",
        durable.wal().len(),
        durable.wal().mode().label(),
    );
    Ok(())
}
