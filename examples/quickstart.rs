//! Quickstart: index an ordered relation with a BF-Tree, probe it, and
//! compare its footprint with a B+-Tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bftree::{BfTree, BfTreeConfig};
use bftree_btree::{BPlusTree, BTreeConfig, TupleRef};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{HeapFile, TupleLayout};

fn main() {
    // 1. A relation of 256-byte tuples, ordered on its primary key —
    //    the "implicit clustering" the BF-Tree exploits.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..200_000u64 {
        heap.append_record(pk, pk / 11);
    }
    println!(
        "relation: {} tuples in {} pages ({} MB)",
        heap.tuple_count(),
        heap.page_count(),
        heap.byte_size() >> 20
    );

    // 2. Bulk-load a BF-Tree at a chosen accuracy. fpp is the knob:
    //    looser = smaller index + more false reads.
    let config = BfTreeConfig { fpp: 1e-3, ..BfTreeConfig::ordered_default() };
    let bf = BfTree::bulk_build(config, &heap, PK_OFFSET);

    // 3. Probe it (Algorithm 1). The result lists matching (page, slot)
    //    pairs plus the probe's cost profile.
    let probe = bf.probe_first(123_456, &heap, PK_OFFSET, None, None);
    let (pid, slot) = probe.matches[0];
    assert_eq!(heap.attr(pid, slot, PK_OFFSET), 123_456);
    println!(
        "probe(123456): found on page {pid} slot {slot} — {} page read(s), {} filters probed",
        probe.pages_read, probe.bfs_probed
    );

    // 4. A miss costs (almost) nothing: the filters reject it.
    let miss = bf.probe_first(999_999_999, &heap, PK_OFFSET, None, None);
    assert!(!miss.found());
    println!("probe(999999999): not found — {} page read(s)", miss.pages_read);

    // 5. Size comparison with an exact B+-Tree over the same key.
    let bp = BPlusTree::bulk_build(
        BTreeConfig::paper_default(),
        heap.iter_attr(PK_OFFSET).map(|(pid, slot, k)| (k, TupleRef::new(pid, slot))),
    );
    println!(
        "index size: BF-Tree {} pages vs B+-Tree {} pages -> {:.1}x smaller",
        bf.total_pages(),
        bp.total_pages(),
        bp.total_pages() as f64 / bf.total_pages() as f64
    );

    // 6. Range scans work too (§7): partitions overlapping the range
    //    are scanned, with the boundary partitions probed per value.
    let scan = bf.range_scan(1_000, 2_000, &heap, PK_OFFSET, None, None);
    println!(
        "range [1000, 2000]: {} matches from {} page reads ({} overhead)",
        scan.matches.len(),
        scan.pages_read,
        scan.overhead_pages
    );
}
