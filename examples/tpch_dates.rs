//! Data-warehouse scenario (paper §1.1, §6.4): the TPCH lineitem table
//! physically ordered on `shipdate`, indexed by a BF-Tree.
//!
//! Shows the implicit clustering of the three date columns, builds a
//! BF-Tree and a B+-Tree on shipdate, and compares probe cost on a
//! simulated SSD under different hit rates.
//!
//! ```text
//! cargo run --release --example tpch_dates
//! ```

use bftree::{BfTree, BfTreeConfig};
use bftree_btree::{BPlusTree, BTreeConfig, DuplicateMode, TupleRef};
use bftree_storage::{DeviceKind, SimDevice};
use bftree_workloads::tpch::{self, TpchConfig};

fn main() {
    let config = TpchConfig::scaled(0.02); // 120k lineitems
    let rows = tpch::generate_lineitem_dates(&config);

    // Implicit clustering: the three dates of any lineitem are close.
    let spread: f64 = rows
        .iter()
        .map(|r| {
            let hi = r.shipdate.max(r.commitdate).max(r.receiptdate);
            let lo = r.shipdate.min(r.commitdate).min(r.receiptdate);
            (hi - lo) as f64
        })
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "{} lineitems; mean spread between ship/commit/receipt dates: {spread:.1} days",
        rows.len()
    );

    // Physical design: order the file on shipdate, index shipdate.
    let heap = tpch::build_heap_by_shipdate(&config);
    let bf = BfTree::bulk_build(
        BfTreeConfig { fpp: 1e-4, ..BfTreeConfig::ordered_default() },
        &heap,
        tpch::SHIPDATE,
    );
    let bp = BPlusTree::bulk_build(
        BTreeConfig { duplicates: DuplicateMode::FirstRef, ..BTreeConfig::paper_default() },
        {
            let mut entries: Vec<(u64, TupleRef)> = heap
                .iter_attr(tpch::SHIPDATE)
                .map(|(pid, slot, k)| (k, TupleRef::new(pid, slot)))
                .collect();
            entries.dedup_by_key(|e| e.0);
            entries
        },
    );
    println!(
        "index on shipdate: BF-Tree {} pages, B+-Tree {} pages ({:.1}x smaller)",
        bf.total_pages(),
        bp.total_pages(),
        bp.total_pages() as f64 / bf.total_pages() as f64
    );

    // Probe cost on a simulated SSD, existing vs absent dates.
    let domain = tpch::shipdate_domain(&rows);
    for (label, keys) in [
        ("existing dates (hit)", domain.iter().copied().step_by(97).collect::<Vec<_>>()),
        ("future dates (miss)", (0..50).map(|i| domain.last().unwrap() + 10 + i).collect()),
    ] {
        let idx_dev = SimDevice::cold(DeviceKind::Ssd);
        let data_dev = SimDevice::cold(DeviceKind::Ssd);
        let mut pages = 0u64;
        for &d in &keys {
            pages += bf.probe(d, &heap, tpch::SHIPDATE, Some(&idx_dev), Some(&data_dev)).pages_read;
        }
        let us = (idx_dev.snapshot().sim_us() + data_dev.snapshot().sim_us()) / keys.len() as f64;
        println!(
            "{label}: mean {us:.1} us/probe, {:.1} data pages/probe (avg cardinality {:.0})",
            pages as f64 / keys.len() as f64,
            rows.len() as f64 / domain.len() as f64,
        );
    }
}
