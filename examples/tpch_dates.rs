//! Data-warehouse scenario (paper §1.1, §6.4): the TPCH lineitem table
//! physically ordered on `shipdate`, indexed by a BF-Tree.
//!
//! Shows the implicit clustering of the three date columns, builds a
//! BF-Tree and a B+-Tree on shipdate through the same `AccessMethod`
//! interface, compares probe cost on a simulated SSD under different
//! hit rates, and serves a month of lineitems as a **paginated range
//! scan**: cursor + continuation token, 40 rows per request, each
//! request charging only the pages behind its rows.
//!
//! ```text
//! cargo run --release --example tpch_dates
//! ```

use bftree::{AccessMethod, BfTree};
use bftree_access::{Continuation, RangeCursor, RangeCursorExt};
use bftree_btree::{BPlusTree, BTreeConfig};
use bftree_storage::{Duplicates, IoContext, Relation, StorageConfig};
use bftree_workloads::tpch::{self, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TpchConfig::scaled(0.02); // 120k lineitems
    let rows = tpch::generate_lineitem_dates(&config);

    // Implicit clustering: the three dates of any lineitem are close.
    let spread: f64 = rows
        .iter()
        .map(|r| {
            let hi = r.shipdate.max(r.commitdate).max(r.receiptdate);
            let lo = r.shipdate.min(r.commitdate).min(r.receiptdate);
            (hi - lo) as f64
        })
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "{} lineitems; mean spread between ship/commit/receipt dates: {spread:.1} days",
        rows.len()
    );

    // Physical design: order the file on shipdate, index shipdate.
    // Duplicates (≈24 lineitems per date at this scale) are contiguous,
    // so the B+-Tree's build derives its one-entry-per-distinct-key
    // mode and the BF-Tree its first-page-only filter loading.
    let relation = Relation::new(
        tpch::build_heap_by_shipdate(&config),
        tpch::SHIPDATE,
        Duplicates::Contiguous,
    )?;
    let bf = BfTree::builder().fpp(1e-4).build(&relation)?;
    let mut bp = BPlusTree::new(BTreeConfig::paper_default());
    AccessMethod::build(&mut bp, &relation)?;
    println!(
        "index on shipdate: BF-Tree {} pages, B+-Tree {} pages ({:.1}x smaller)",
        bf.total_pages(),
        bp.total_pages(),
        bp.total_pages() as f64 / bf.total_pages() as f64
    );

    // Probe cost on a simulated SSD, existing vs absent dates.
    let domain = tpch::shipdate_domain(&rows);
    for (label, keys) in [
        (
            "existing dates (hit)",
            domain.iter().copied().step_by(97).collect::<Vec<_>>(),
        ),
        (
            "future dates (miss)",
            (0..50).map(|i| domain.last().unwrap() + 10 + i).collect(),
        ),
    ] {
        let io = IoContext::cold(StorageConfig::SsdSsd);
        let mut pages = 0u64;
        for &d in &keys {
            pages += AccessMethod::probe(&bf, d, &relation, &io)?.pages_read;
        }
        let us = io.sim_us() / keys.len() as f64;
        println!(
            "{label}: mean {us:.1} us/probe, {:.1} data pages/probe (avg cardinality {:.0})",
            pages as f64 / keys.len() as f64,
            rows.len() as f64 / domain.len() as f64,
        );
    }

    // A reporting query — "lineitems shipped this month" — served the
    // way an application pages through results: a cursor capped at 40
    // rows per request, with an opaque continuation token carrying the
    // frontier between requests. The first request pays the partition
    // entry (the §7 boundary overhead: the walk starts at the first
    // overlapping partition's first page); every request after resumes
    // at the exact page frontier and pays only for the pages behind
    // its own rows, where the old materializing scan paid the whole
    // month up front.
    let lo = domain[domain.len() / 3];
    let hi = lo + 30;
    let io_full = IoContext::cold(StorageConfig::SsdSsd);
    let full = AccessMethod::range_scan(&bf, lo, hi, &relation, &io_full)?;
    println!(
        "\npaginated scan of shipdate [{lo}, {hi}]: {} lineitems on {} pages",
        full.matches.len(),
        full.pages_read
    );

    let mut token: Option<Continuation> = None;
    let mut request = 0u32;
    let mut served = 0usize;
    loop {
        let io = IoContext::cold(StorageConfig::SsdSsd);
        let mut cursor = match &token {
            None => bf.range_cursor(lo, hi, &relation, &io)?,
            Some(t) => bf.resume_range_cursor(t, &relation, &io)?,
        }
        .limit(40);
        let mut rows_this_request = 0usize;
        while let Some(page) = cursor.next_page_matches() {
            rows_this_request += page.len();
            cursor.advance();
        }
        served += rows_this_request;
        request += 1;
        token = cursor.continuation();
        println!(
            "  request #{request}: {rows_this_request:>3} rows from {} data page(s){}",
            cursor.io().pages_read,
            if token.is_none() && rows_this_request < 40 {
                " (final drain: walks the trailing boundary partition, §7's overhead)"
            } else {
                ""
            },
        );
        if request > 3 && token.is_some() {
            println!("  ... ({} rows remain behind the token)", {
                full.matches.len() - served
            });
            break;
        }
        if token.is_none() {
            assert_eq!(served, full.matches.len(), "pagination loses nothing");
            break;
        }
    }
    Ok(())
}
