//! Cold-storage scenario (paper §1.1): immutable, time-ordered data
//! parked on cheap flash, where index *capacity* is the scarce
//! resource. Shows the capacity/performance trade-off end to end:
//! pick a capacity budget, find the tightest fpp that fits, and watch
//! what trickling in extra inserts does to accuracy (Equation 14) —
//! plus the leaf-rebuild remedy.
//!
//! ```text
//! cargo run --release --example cold_storage
//! ```

use bftree::{AccessMethod, BfTree};
use bftree_model::fpp_after_inserts;
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{Duplicates, HeapFile, IoContext, Relation, StorageConfig, TupleLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An immutable archive file: 100k tuples, ordered by creation time.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..100_000u64 {
        heap.append_record(pk, pk);
    }
    let mut relation = Relation::new(heap, PK_OFFSET, Duplicates::Unique)?;
    println!(
        "archive: {} pages ({} MB)\n",
        relation.heap().page_count(),
        relation.heap().byte_size() >> 20
    );

    // The capacity sweep: what does each accuracy level cost?
    println!(
        "{:>8}  {:>11}  {:>13}  {:>14}",
        "fpp", "index pages", "% of data", "us/probe (SSD)"
    );
    let mut chosen: Option<(f64, BfTree)> = None;
    // Spend <=1% of data size on the index.
    let budget_pages = relation.heap().page_count() / 100;
    for fpp in [0.2, 1e-2, 1e-4, 1e-8, 1e-12] {
        let tree = BfTree::builder().fpp(fpp).build(&relation)?;
        let io = IoContext::cold(StorageConfig::SsdSsd);
        for key in (0..100_000u64).step_by(257) {
            let _ = AccessMethod::probe_first(&tree, key, &relation, &io)?;
        }
        let n = (100_000u64).div_ceil(257);
        let us = io.sim_us() / n as f64;
        println!(
            "{fpp:>8.0e}  {:>11}  {:>12.2}%  {us:>14.1}",
            tree.total_pages(),
            100.0 * tree.total_pages() as f64 / relation.heap().page_count() as f64
        );
        if tree.total_pages() <= budget_pages && chosen.is_none() {
            chosen = Some((fpp, tree));
        }
    }
    let (fpp, mut tree) = chosen.expect("some fpp fits the budget");
    println!(
        "\nbudget {} pages (1% of data) -> tightest fitting fpp = {fpp:.0e} ({} pages)\n",
        budget_pages,
        tree.total_pages()
    );

    // The archive later receives a trickle of late arrivals (5%).
    let n0 = relation.heap().tuple_count();
    let extra = n0 / 20;
    for pk in n0..n0 + extra {
        let loc = relation.heap_mut().append_record(pk, pk);
        AccessMethod::insert(&mut tree, pk, loc, &relation)?;
    }
    tree.check_invariants();
    println!(
        "after {extra} late inserts (5%): Equation 14 predicts fpp {:.2e} (target was {fpp:.0e})",
        fpp_after_inserts(fpp, 0.05)
    );

    // Remedy: rebuild the affected leaves from the data (cheap, §4.2 /
    // §7 — the small index size "enables fast rebuilds if needed").
    for idx in 0..tree.leaf_pages() as u32 {
        tree.rebuild_leaf(idx, relation.heap(), PK_OFFSET);
    }
    tree.check_invariants();
    let io = IoContext::unmetered();
    let r = AccessMethod::probe_first(&tree, n0 + extra / 2, &relation, &io)?;
    assert!(r.found(), "late arrival must be indexed after rebuild");
    println!(
        "rebuilt {} leaves; late arrivals probe correctly",
        tree.leaf_pages()
    );
    Ok(())
}
