//! Cold-storage scenario (paper §1.1): immutable, time-ordered data
//! parked on cheap flash, where index *capacity* is the scarce
//! resource. Shows the capacity/performance trade-off end to end:
//! pick a capacity budget, find the tightest fpp that fits, and watch
//! what trickling in extra inserts does to accuracy (Equation 14) —
//! plus the leaf-rebuild remedy.
//!
//! ```text
//! cargo run --release --example cold_storage
//! ```

use bftree::{BfTree, BfTreeConfig};
use bftree_model::fpp_after_inserts;
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{DeviceKind, HeapFile, SimDevice, TupleLayout};

fn main() {
    // An immutable archive file: 100k tuples, ordered by creation time.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..100_000u64 {
        heap.append_record(pk, pk);
    }
    println!("archive: {} pages ({} MB)\n", heap.page_count(), heap.byte_size() >> 20);

    // The capacity sweep: what does each accuracy level cost?
    println!("{:>8}  {:>11}  {:>13}  {:>14}", "fpp", "index pages", "% of data", "us/probe (SSD)");
    let mut chosen: Option<(f64, BfTree)> = None;
    let budget_pages = heap.page_count() / 100; // spend <=1% of data size on the index
    for fpp in [0.2, 1e-2, 1e-4, 1e-8, 1e-12] {
        let tree = BfTree::bulk_build(
            BfTreeConfig { fpp, ..BfTreeConfig::ordered_default() },
            &heap,
            PK_OFFSET,
        );
        let idx = SimDevice::cold(DeviceKind::Ssd);
        let data = SimDevice::cold(DeviceKind::Ssd);
        for key in (0..100_000u64).step_by(257) {
            tree.probe_first(key, &heap, PK_OFFSET, Some(&idx), Some(&data));
        }
        let n = (100_000u64).div_ceil(257);
        let us = (idx.snapshot().sim_us() + data.snapshot().sim_us()) / n as f64;
        println!(
            "{fpp:>8.0e}  {:>11}  {:>12.2}%  {us:>14.1}",
            tree.total_pages(),
            100.0 * tree.total_pages() as f64 / heap.page_count() as f64
        );
        if tree.total_pages() <= budget_pages && chosen.is_none() {
            chosen = Some((fpp, tree));
        }
    }
    let (fpp, mut tree) = chosen.expect("some fpp fits the budget");
    println!(
        "\nbudget {} pages (1% of data) -> tightest fitting fpp = {fpp:.0e} ({} pages)\n",
        budget_pages,
        tree.total_pages()
    );

    // The archive later receives a trickle of late arrivals (5%).
    let n0 = heap.tuple_count();
    let extra = n0 / 20;
    for pk in n0..n0 + extra {
        let (pid, _) = heap.append_record(pk, pk);
        tree.insert(pk, pid, Some(&heap), PK_OFFSET);
    }
    tree.check_invariants();
    println!(
        "after {extra} late inserts (5%): Equation 14 predicts fpp {:.2e} (target was {fpp:.0e})",
        fpp_after_inserts(fpp, 0.05)
    );

    // Remedy: rebuild the affected leaves from the data (cheap, §4.2 /
    // §7 — the small index size "enables fast rebuilds if needed").
    for idx in 0..tree.leaf_pages() as u32 {
        tree.rebuild_leaf(idx, &heap, PK_OFFSET);
    }
    tree.check_invariants();
    let r = tree.probe_first(n0 + extra / 2, &heap, PK_OFFSET, None, None);
    assert!(r.found(), "late arrival must be indexed after rebuild");
    println!("rebuilt {} leaves; late arrivals probe correctly", tree.leaf_pages());
}
