//! Concurrency quickstart: serve one BF-Tree from many threads.
//!
//! Shows the three layers of the concurrent serving path:
//! 1. lock-free parallel probing of a shared `&dyn AccessMethod`
//!    (the trait is `Send + Sync`; cold devices use sharded counters),
//! 2. per-thread skewed workloads (Zipfian, YCSB's default θ = 0.99),
//! 3. mixed read/insert service through a `ConcurrentIndex`.
//!
//! ```text
//! cargo run --release --example concurrent_probes
//! ```

use std::collections::HashMap;

use bftree::{AccessMethod, BfTree};
use bftree_access::ConcurrentIndex;
use bftree_bench::{run_mixed_parallel, run_probes_parallel};
use bftree_storage::tuple::PK_OFFSET;
use bftree_storage::{
    Duplicates, HeapFile, IoContext, PageId, Relation, StorageConfig, TupleLayout,
};
use bftree_workloads::{mixed_streams, popular_probe_streams, KeyPopularity, OpMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A relation ordered on its primary key, and a BF-Tree over it.
    let mut heap = HeapFile::new(TupleLayout::new(256));
    for pk in 0..200_000u64 {
        heap.append_record(pk, pk / 11);
    }
    let mut relation = Relation::new(heap, PK_OFFSET, Duplicates::Unique)?;
    let tree = BfTree::builder().fpp(1e-4).build(&relation)?;
    let index: &dyn AccessMethod = &tree;

    // 1+2. Eight workers probe the shared index, each with its own
    // Zipfian-skewed key stream, all charging one shared IoContext.
    let domain: Vec<u64> = (0..relation.heap().tuple_count()).collect();
    let streams = popular_probe_streams(
        &domain,
        KeyPopularity::Zipfian { theta: 0.99 },
        5_000,
        8,
        42,
    );
    let io = IoContext::cold(StorageConfig::SsdSsd);
    let r = run_probes_parallel(index, &relation, &streams, &io);
    println!(
        "parallel probes: {} ops on {} threads, {:.0} ops/s (simulated), \
         p50 {:.1} us, p99 {:.1} us, hit rate {:.2}",
        r.total_ops,
        r.threads,
        r.throughput_ops_per_sec(),
        r.latencies.quantile_ns(0.5) as f64 / 1e3,
        r.latencies.quantile_ns(0.99) as f64 / 1e3,
        r.hit_rate(),
    );

    // 3. Mixed read/insert (YCSB-B: 95 % reads): the load phase
    // appends the new tuples to the heap, the run phase registers them
    // in the index (write lock) while probes share the read lock.
    let insert_keys: Vec<u64> = (1_000_000..1_000_400u64).collect();
    let locs: HashMap<u64, (PageId, usize)> = insert_keys
        .iter()
        .map(|&k| (k, relation.heap_mut().append_record(k, k)))
        .collect();
    let shared = ConcurrentIndex::new(tree);
    let streams = mixed_streams(
        &domain,
        KeyPopularity::Zipfian { theta: 0.99 },
        OpMix::YCSB_B,
        &insert_keys,
        &[],
        2_000,
        4,
        7,
    );
    let io = IoContext::cold(StorageConfig::SsdSsd);
    let r = run_mixed_parallel(&shared, &relation, &streams, &io, &|k| locs[&k]);
    let inserted: u64 = r.per_thread.iter().map(|t| t.inserts).sum();
    println!(
        "mixed YCSB-B: {} ops ({} inserts) on {} threads, {:.0} ops/s (simulated)",
        r.total_ops,
        inserted,
        r.threads,
        r.throughput_ops_per_sec(),
    );

    // Every concurrently inserted key is now visible.
    let io = IoContext::unmetered();
    for &k in &insert_keys {
        assert!(shared.probe(k, &relation, &io)?.found(), "key {k} lost");
    }
    println!(
        "all {} inserted keys visible after the run",
        insert_keys.len()
    );
    Ok(())
}
