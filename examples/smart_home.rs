//! Monitoring scenario (paper §1.1, §6.5): a smart-home electricity
//! dataset — timestamped meter readings with highly variable
//! per-timestamp cardinality — indexed by a BF-Tree on the timestamp.
//!
//! Demonstrates picking the *optimal* fpp for a storage configuration
//! by sweeping, the way the paper's Figure 12 reports "the optimal
//! BF-Tree", and answering a dashboard's "latest 50 readings of the
//! last hour" with a `limit(50)` range cursor that reads a bounded
//! prefix of the hour instead of materializing all of it.
//!
//! ```text
//! cargo run --release --example smart_home
//! ```

use bftree::{AccessMethod, BfTree};
use bftree_access::{RangeCursor, RangeCursorExt};
use bftree_storage::{Duplicates, IoContext, Relation, StorageConfig};
use bftree_workloads::probes_from_domain;
use bftree_workloads::shd::{self, ShdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ShdConfig::paper_like(3_000);
    let rows = shd::generate_readings(&config);
    let domain = shd::timestamp_domain(&rows);
    let relation = Relation::new(
        shd::build_heap(&config),
        shd::TIMESTAMP,
        Duplicates::Contiguous,
    )?;
    println!(
        "SHD: {} readings, {} timestamps, cardinality mean {:.1} (min {}, max {})",
        rows.len(),
        domain.len(),
        rows.len() as f64 / domain.len() as f64,
        cardinality_stats(&rows).0,
        cardinality_stats(&rows).1,
    );

    // Sweep fpp and pick the fastest BF-Tree for an all-SSD box.
    let probes = probes_from_domain(&domain, 400, 7);
    let mut best: Option<(f64, f64, u64)> = None;
    for fpp in [0.1, 1e-2, 1e-3, 1e-4, 1e-6, 1e-9] {
        let tree = BfTree::builder().fpp(fpp).build(&relation)?;
        let io = IoContext::cold(StorageConfig::SsdSsd);
        for &ts in &probes {
            let _ = AccessMethod::probe(&tree, ts, &relation, &io)?;
        }
        let us = io.sim_us() / probes.len() as f64;
        println!(
            "fpp {fpp:>6.0e}: {:>6} index pages, {us:>8.1} us/probe",
            tree.total_pages()
        );
        if best.is_none_or(|(_, b_us, _)| us < b_us) {
            best = Some((fpp, us, tree.total_pages()));
        }
    }
    let (fpp, us, pages) = best.expect("non-empty sweep");
    println!("\noptimal for SSD/SSD: fpp {fpp:.0e} ({pages} pages, {us:.1} us/probe)");

    // Point lookups return every reading of the timestamp.
    let tree = BfTree::builder().fpp(fpp).build(&relation)?;
    let ts = domain[domain.len() / 2];
    let r = AccessMethod::probe(&tree, ts, &relation, &IoContext::unmetered())?;
    println!(
        "probe(ts={ts}): {} readings from {} page(s), {} false read(s)",
        r.matches.len(),
        r.pages_read,
        r.false_reads
    );

    // A monitoring dashboard asks for *some* recent readings, not the
    // whole hour: a limit(50) cursor early-terminates the range scan
    // the moment 50 readings are delivered, reading a bounded prefix
    // of the hour's pages.
    let (lo, hi) = (ts, ts.min(u64::MAX - 3600) + 3600);
    let io_full = IoContext::cold(StorageConfig::SsdSsd);
    let full = AccessMethod::range_scan(&tree, lo, hi, &relation, &io_full)?;
    let io_page = IoContext::cold(StorageConfig::SsdSsd);
    let mut cursor = tree.range_cursor(lo, hi, &relation, &io_page)?.limit(50);
    let mut shown = 0usize;
    while let Some(page) = cursor.next_page_matches() {
        shown += page.len();
        cursor.advance();
    }
    println!(
        "range [{lo}, {hi}]: full scan = {} readings / {} pages; first {shown} via cursor = {} page(s)",
        full.matches.len(),
        full.pages_read,
        cursor.io().pages_read
    );
    assert!(cursor.io().pages_read <= full.pages_read);
    Ok(())
}

fn cardinality_stats(rows: &[shd::Reading]) -> (u64, u64) {
    let mut counts = std::collections::HashMap::new();
    for r in rows {
        *counts.entry(r.timestamp).or_insert(0u64) += 1;
    }
    (
        counts.values().copied().min().unwrap_or(0),
        counts.values().copied().max().unwrap_or(0),
    )
}
